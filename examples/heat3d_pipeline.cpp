// End-to-end Heat3d workflow, mirroring the paper's §IV case study:
//
//  1. run the full 3D heat model in parallel over the message-passing
//     runtime (slab decomposition + halo exchange, like the MPI code),
//  2. precondition with one-base / multi-base / DuoModel,
//  3. write the container to disk, read it back, reconstruct,
//  4. report compression ratios and reconstruction quality per method.
//
//   $ ./heat3d_pipeline [grid=32] [steps=300] [ranks=4]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "compress/factory.hpp"
#include "core/one_base_parallel.hpp"
#include "core/pipeline.hpp"
#include "core/projection.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace rmp;

  sim::HeatConfig config;
  config.n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  config.steps = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 300;
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;

  std::printf("running Heat3d %zu^3 for %zu steps on a 2x2x1 rank grid...\n",
              config.n, config.steps);
  const sim::Field field = sim::heat3d_run_parallel_3d(config, {2, 2, 1});

  const auto characteristics = stats::byte_characteristics(field.flat());
  std::printf("full model: ent %.4f mean %.4f corr %.4f\n",
              characteristics.entropy, characteristics.mean,
              characteristics.correlation);

  const auto reduced_codec = compress::make_zfp_original();
  const auto delta_codec = compress::make_zfp_delta();
  const core::CodecPair codecs{reduced_codec.get(), delta_codec.get()};

  const auto dir = std::filesystem::temp_directory_path();
  for (const char* method : {"identity", "one-base", "multi-base"}) {
    const auto preconditioner = core::make_preconditioner(method);
    core::EncodeStats stats;
    const auto container = preconditioner->encode(field, codecs, &stats);

    // Persist, reload, reconstruct: the full storage round trip.
    const auto path = dir / (std::string("heat3d_") + method + ".rmp");
    io::write_container(path, container);
    const auto loaded = io::read_container(path);
    const sim::Field decoded = core::reconstruct(loaded, codecs);
    std::filesystem::remove(path);

    std::printf("%-10s ratio %6.2fx  rmse %.3e  max err %.3e\n", method,
                stats.compression_ratio,
                stats::rmse(field.flat(), decoded.flat()),
                stats::max_abs_error(field.flat(), decoded.flat()));
  }

  // Algorithm 1 run for real: `ranks` ranks broadcast the mid-plane over
  // the message-passing runtime and compress their slabs independently.
  {
    const auto encoded = core::one_base_encode_parallel(field, codecs, ranks);
    const sim::Field decoded =
        core::one_base_decode_parallel(encoded, codecs, ranks);
    std::printf("%-10s ratio %6.2fx  rmse %.3e  (%d ranks, Algorithm 1)\n",
                "one-base*",
                static_cast<double>(field.size() * sizeof(double)) /
                    static_cast<double>(encoded.total_bytes()),
                stats::rmse(field.flat(), decoded.flat()), ranks);
  }

  // DuoModel with an unstored reduced model: decode re-computes the
  // "light" model (here: the downsampled field) exactly as the prior work
  // re-runs its cheap simulation.
  core::DuoModelPreconditioner duo(4, /*store_reduced=*/false);
  core::EncodeStats stats;
  const auto container = duo.encode(field, codecs, &stats);
  const sim::Field recomputed = duo.make_reduced(field);
  const sim::Field decoded = duo.decode(container, codecs, &recomputed);
  std::printf("%-10s ratio %6.2fx  rmse %.3e  (reduced model re-computed)\n",
              "duomodel", stats.compression_ratio,
              stats::rmse(field.flat(), decoded.flat()));
  return 0;
}
