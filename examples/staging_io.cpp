// End-to-end I/O planning with the storage model (Table IV workflow):
// measure this machine's real compression throughput per method on a
// Heat3d field, then project the paper-scale scenario (64 writers x
// 16.7 GB) through the analytic Lustre/staging model to decide whether
// synchronous compression pays off or staging is needed.
//
//   $ ./staging_io [grid=32]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"
#include "io/storage_model.hpp"
#include "sim/heat.hpp"

int main(int argc, char** argv) {
  using namespace rmp;

  sim::HeatConfig config;
  config.n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  config.steps = 200;
  const sim::Field field = sim::heat3d_run(config);
  const double field_bytes = static_cast<double>(field.size()) * 8.0;

  const auto zfp = compress::make_zfp_original();
  const auto zfp_delta = compress::make_zfp_delta();
  const core::CodecPair codecs{zfp.get(), zfp_delta.get()};

  io::EndToEndScenario scenario;  // 64 writers x 16.7 GB, Titan-like model

  auto project = [&](const char* label, const std::string& method) {
    const auto preconditioner = core::make_preconditioner(method);
    const auto result = core::run_pipeline(*preconditioner, field, codecs);
    // Scale the measured per-byte compression cost up to the scenario.
    const double seconds_per_byte = result.encode_seconds / field_bytes;
    const double compression_time =
        seconds_per_byte * scenario.bytes_per_writer;
    const auto row = io::make_row(scenario, label, compression_time,
                                  result.stats.compression_ratio);
    std::printf("%-18s comp %8.2fs  io %7.2fs  total %8.2fs\n",
                row.method.c_str(), row.compression_time, row.io_time,
                row.total_time);
  };

  const auto baseline = io::make_baseline_row(scenario);
  std::printf("%-18s comp %8s  io %7.2fs  total %8.2fs\n",
              baseline.method.c_str(), "-", baseline.io_time,
              baseline.total_time);
  project("ZFP+I/O", "identity");
  project("PCA(ZFP)+I/O", "pca");
  const auto staging = io::make_staging_row(scenario, "Staging+PCA+I/O");
  std::printf("%-18s comp %8s  io %7.2fs  total %8.2fs\n",
              staging.method.c_str(), "-", staging.io_time,
              staging.total_time);
  return 0;
}
