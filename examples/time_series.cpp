// Time-series compression of a simulation lifetime: store one keyframe
// plus per-step temporal deltas (the time-axis analogue of one-base),
// compare against compressing every snapshot independently, and persist
// the sequence to a single random-access archive file.
//
//   $ ./time_series [snapshots=10] [grid=24]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "compress/factory.hpp"
#include "core/identity.hpp"
#include "core/temporal.hpp"
#include "io/sequence_file.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace rmp;

  const std::size_t count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  sim::HeatConfig config;
  config.n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;
  config.steps = 400;

  std::printf("generating %zu Heat3d snapshots (%zu^3)...\n", count, config.n);
  const auto snapshots = sim::heat3d_snapshots(config, count);
  const std::size_t raw_bytes =
      snapshots.size() * snapshots.front().size() * sizeof(double);

  const auto reduced_codec = compress::make_zfp_original();
  const auto delta_codec = compress::make_zfp_delta();
  const core::CodecPair codecs{reduced_codec.get(), delta_codec.get()};

  // Baseline: each snapshot compressed independently at original grade.
  std::size_t independent = 0;
  core::IdentityPreconditioner identity;
  for (const auto& snapshot : snapshots) {
    core::EncodeStats stats;
    identity.encode(snapshot, codecs, &stats);
    independent += stats.total_bytes;
  }

  std::printf("%-28s %12s %10s\n", "scheme", "bytes", "ratio");
  std::printf("%-28s %12zu %9.2fx\n", "independent (per snapshot)",
              independent,
              static_cast<double>(raw_bytes) /
                  static_cast<double>(independent));

  for (std::size_t interval : {std::size_t{0}, std::size_t{5}}) {
    core::TemporalOptions options;
    options.keyframe_interval = interval;
    const auto sequence = core::temporal_encode(snapshots, codecs, options);
    const auto decoded = core::temporal_decode(sequence, codecs);
    double worst = 0.0;
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
      worst = std::max(worst,
                       stats::rmse(snapshots[s].flat(), decoded[s].flat()));
    }
    char label[64];
    std::snprintf(label, sizeof label, "temporal (keyframe every %zu)",
                  interval == 0 ? count : interval);
    std::printf("%-28s %12zu %9.2fx  (worst rmse %.3e)\n", label,
                sequence.total_bytes(),
                static_cast<double>(raw_bytes) /
                    static_cast<double>(sequence.total_bytes()),
                worst);
  }

  // Persist the default sequence to a random-access archive, reload only
  // the final step's container, and show the file layout.
  const auto sequence = core::temporal_encode(snapshots, codecs);
  const auto path =
      std::filesystem::temp_directory_path() / "heat3d_timeseries.rmps";
  {
    io::SequenceWriter writer(path);
    for (const auto& step : sequence.steps) writer.append(step);
    writer.finish();
  }
  io::SequenceReader reader(path);
  std::printf("archive %s: %zu steps, %ju bytes on disk\n",
              path.filename().string().c_str(), reader.step_count(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(path)));
  const auto last = reader.read_step(reader.step_count() - 1);
  std::printf("random-access read of step %zu: method %s, %zu payload B\n",
              reader.step_count() - 1, last.method.c_str(),
              last.payload_bytes());
  std::filesystem::remove(path);
  return 0;
}
