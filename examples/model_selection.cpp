// Model selection across the nine paper datasets (§VII future work):
// evaluate every preconditioner on each dataset and report the winner --
// demonstrating the paper's closing observation that no single reduced
// model is best everywhere.
//
//   $ ./model_selection [scale=0.5]
#include <cstdio>
#include <cstdlib>

#include "compress/factory.hpp"
#include "core/model_select.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  const auto reduced_codec = compress::make_sz_original();
  const auto delta_codec = compress::make_sz_delta();
  const core::CodecPair codecs{reduced_codec.get(), delta_codec.get()};

  std::printf("%-14s %-10s %10s %12s\n", "dataset", "best", "ratio", "rmse");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    const auto selection = core::select_best_model(pair.full, codecs);
    std::printf("%-14s %-10s %9.2fx %12.3e\n", pair.name.c_str(),
                selection.best.c_str(),
                selection.best_result.stats.compression_ratio,
                selection.best_result.rmse);
  }
  return 0;
}
