// Quickstart: precondition a 3D field with PCA and compress it with the
// SZ-like codec, then reconstruct and report sizes and error.
//
//   $ ./quickstart
//
// This is the five-minute tour of the public API: build a field, pick a
// preconditioner and a codec pair, run the pipeline, inspect the result.
#include <cstdio>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"
#include "sim/heat.hpp"

int main() {
  using namespace rmp;

  // 1. Some scientific data: a small Heat3d run (48^3 grid).
  sim::HeatConfig config;
  config.n = 32;
  config.steps = 300;
  const sim::Field field = sim::heat3d_run(config);
  std::printf("input: %zu x %zu x %zu (%zu doubles, %.1f KiB)\n", field.nx(),
              field.ny(), field.nz(), field.size(),
              field.size() * sizeof(double) / 1024.0);

  // 2. Codec pair: original-grade for the reduced representation,
  //    delta-grade (looser bound) for the residual.
  const auto reduced_codec = compress::make_sz_original();
  const auto delta_codec = compress::make_sz_delta();
  const core::CodecPair codecs{reduced_codec.get(), delta_codec.get()};

  // 3. Run precondition -> compress -> decompress -> reconstruct for the
  //    direct baseline and the PCA preconditioner.
  for (const char* method : {"identity", "one-base", "pca"}) {
    const auto preconditioner = core::make_preconditioner(method);
    const core::PipelineResult result =
        core::run_pipeline(*preconditioner, field, codecs);
    std::printf(
        "%-9s ratio %6.2fx  (reduced %6zu B + delta %7zu B)  rmse %.3e  "
        "encode %.3fs decode %.3fs\n",
        method, result.stats.compression_ratio, result.stats.reduced_bytes,
        result.stats.delta_bytes, result.rmse, result.encode_seconds,
        result.decode_seconds);
  }
  return 0;
}
