file(REMOVE_RECURSE
  "CMakeFiles/rmp_stats.dir/metrics.cpp.o"
  "CMakeFiles/rmp_stats.dir/metrics.cpp.o.d"
  "librmp_stats.a"
  "librmp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
