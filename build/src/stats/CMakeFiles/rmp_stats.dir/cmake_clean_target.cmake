file(REMOVE_RECURSE
  "librmp_stats.a"
)
