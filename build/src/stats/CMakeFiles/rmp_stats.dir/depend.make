# Empty dependencies file for rmp_stats.
# This may be replaced when dependencies are built.
