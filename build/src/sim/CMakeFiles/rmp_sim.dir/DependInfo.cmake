
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/datasets.cpp" "src/sim/CMakeFiles/rmp_sim.dir/datasets.cpp.o" "gcc" "src/sim/CMakeFiles/rmp_sim.dir/datasets.cpp.o.d"
  "/root/repo/src/sim/field.cpp" "src/sim/CMakeFiles/rmp_sim.dir/field.cpp.o" "gcc" "src/sim/CMakeFiles/rmp_sim.dir/field.cpp.o.d"
  "/root/repo/src/sim/heat.cpp" "src/sim/CMakeFiles/rmp_sim.dir/heat.cpp.o" "gcc" "src/sim/CMakeFiles/rmp_sim.dir/heat.cpp.o.d"
  "/root/repo/src/sim/laplace.cpp" "src/sim/CMakeFiles/rmp_sim.dir/laplace.cpp.o" "gcc" "src/sim/CMakeFiles/rmp_sim.dir/laplace.cpp.o.d"
  "/root/repo/src/sim/md.cpp" "src/sim/CMakeFiles/rmp_sim.dir/md.cpp.o" "gcc" "src/sim/CMakeFiles/rmp_sim.dir/md.cpp.o.d"
  "/root/repo/src/sim/sedov.cpp" "src/sim/CMakeFiles/rmp_sim.dir/sedov.cpp.o" "gcc" "src/sim/CMakeFiles/rmp_sim.dir/sedov.cpp.o.d"
  "/root/repo/src/sim/synthetic.cpp" "src/sim/CMakeFiles/rmp_sim.dir/synthetic.cpp.o" "gcc" "src/sim/CMakeFiles/rmp_sim.dir/synthetic.cpp.o.d"
  "/root/repo/src/sim/wave.cpp" "src/sim/CMakeFiles/rmp_sim.dir/wave.cpp.o" "gcc" "src/sim/CMakeFiles/rmp_sim.dir/wave.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/rmp_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
