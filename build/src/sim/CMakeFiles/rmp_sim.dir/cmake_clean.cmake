file(REMOVE_RECURSE
  "CMakeFiles/rmp_sim.dir/datasets.cpp.o"
  "CMakeFiles/rmp_sim.dir/datasets.cpp.o.d"
  "CMakeFiles/rmp_sim.dir/field.cpp.o"
  "CMakeFiles/rmp_sim.dir/field.cpp.o.d"
  "CMakeFiles/rmp_sim.dir/heat.cpp.o"
  "CMakeFiles/rmp_sim.dir/heat.cpp.o.d"
  "CMakeFiles/rmp_sim.dir/laplace.cpp.o"
  "CMakeFiles/rmp_sim.dir/laplace.cpp.o.d"
  "CMakeFiles/rmp_sim.dir/md.cpp.o"
  "CMakeFiles/rmp_sim.dir/md.cpp.o.d"
  "CMakeFiles/rmp_sim.dir/sedov.cpp.o"
  "CMakeFiles/rmp_sim.dir/sedov.cpp.o.d"
  "CMakeFiles/rmp_sim.dir/synthetic.cpp.o"
  "CMakeFiles/rmp_sim.dir/synthetic.cpp.o.d"
  "CMakeFiles/rmp_sim.dir/wave.cpp.o"
  "CMakeFiles/rmp_sim.dir/wave.cpp.o.d"
  "librmp_sim.a"
  "librmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
