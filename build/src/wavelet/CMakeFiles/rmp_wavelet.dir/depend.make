# Empty dependencies file for rmp_wavelet.
# This may be replaced when dependencies are built.
