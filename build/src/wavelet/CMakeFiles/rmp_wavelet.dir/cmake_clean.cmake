file(REMOVE_RECURSE
  "CMakeFiles/rmp_wavelet.dir/haar.cpp.o"
  "CMakeFiles/rmp_wavelet.dir/haar.cpp.o.d"
  "librmp_wavelet.a"
  "librmp_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmp_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
