file(REMOVE_RECURSE
  "librmp_wavelet.a"
)
