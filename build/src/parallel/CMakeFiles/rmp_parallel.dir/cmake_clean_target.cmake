file(REMOVE_RECURSE
  "librmp_parallel.a"
)
