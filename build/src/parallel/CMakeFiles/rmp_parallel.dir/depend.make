# Empty dependencies file for rmp_parallel.
# This may be replaced when dependencies are built.
