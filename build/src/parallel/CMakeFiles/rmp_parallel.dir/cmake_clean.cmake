file(REMOVE_RECURSE
  "CMakeFiles/rmp_parallel.dir/decomposition.cpp.o"
  "CMakeFiles/rmp_parallel.dir/decomposition.cpp.o.d"
  "CMakeFiles/rmp_parallel.dir/msgpass.cpp.o"
  "CMakeFiles/rmp_parallel.dir/msgpass.cpp.o.d"
  "CMakeFiles/rmp_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/rmp_parallel.dir/thread_pool.cpp.o.d"
  "librmp_parallel.a"
  "librmp_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmp_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
