
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitstream.cpp" "src/compress/CMakeFiles/rmp_compress.dir/bitstream.cpp.o" "gcc" "src/compress/CMakeFiles/rmp_compress.dir/bitstream.cpp.o.d"
  "/root/repo/src/compress/factory.cpp" "src/compress/CMakeFiles/rmp_compress.dir/factory.cpp.o" "gcc" "src/compress/CMakeFiles/rmp_compress.dir/factory.cpp.o.d"
  "/root/repo/src/compress/fpc.cpp" "src/compress/CMakeFiles/rmp_compress.dir/fpc.cpp.o" "gcc" "src/compress/CMakeFiles/rmp_compress.dir/fpc.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/rmp_compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/rmp_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/lossless.cpp" "src/compress/CMakeFiles/rmp_compress.dir/lossless.cpp.o" "gcc" "src/compress/CMakeFiles/rmp_compress.dir/lossless.cpp.o.d"
  "/root/repo/src/compress/sz.cpp" "src/compress/CMakeFiles/rmp_compress.dir/sz.cpp.o" "gcc" "src/compress/CMakeFiles/rmp_compress.dir/sz.cpp.o.d"
  "/root/repo/src/compress/zfp_like.cpp" "src/compress/CMakeFiles/rmp_compress.dir/zfp_like.cpp.o" "gcc" "src/compress/CMakeFiles/rmp_compress.dir/zfp_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
