# Empty compiler generated dependencies file for rmp_compress.
# This may be replaced when dependencies are built.
