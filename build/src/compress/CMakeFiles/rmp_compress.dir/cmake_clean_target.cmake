file(REMOVE_RECURSE
  "librmp_compress.a"
)
