file(REMOVE_RECURSE
  "CMakeFiles/rmp_compress.dir/bitstream.cpp.o"
  "CMakeFiles/rmp_compress.dir/bitstream.cpp.o.d"
  "CMakeFiles/rmp_compress.dir/factory.cpp.o"
  "CMakeFiles/rmp_compress.dir/factory.cpp.o.d"
  "CMakeFiles/rmp_compress.dir/fpc.cpp.o"
  "CMakeFiles/rmp_compress.dir/fpc.cpp.o.d"
  "CMakeFiles/rmp_compress.dir/huffman.cpp.o"
  "CMakeFiles/rmp_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/rmp_compress.dir/lossless.cpp.o"
  "CMakeFiles/rmp_compress.dir/lossless.cpp.o.d"
  "CMakeFiles/rmp_compress.dir/sz.cpp.o"
  "CMakeFiles/rmp_compress.dir/sz.cpp.o.d"
  "CMakeFiles/rmp_compress.dir/zfp_like.cpp.o"
  "CMakeFiles/rmp_compress.dir/zfp_like.cpp.o.d"
  "librmp_compress.a"
  "librmp_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmp_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
