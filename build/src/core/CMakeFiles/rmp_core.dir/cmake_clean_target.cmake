file(REMOVE_RECURSE
  "librmp_core.a"
)
