# Empty compiler generated dependencies file for rmp_core.
# This may be replaced when dependencies are built.
