
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/blocked.cpp" "src/core/CMakeFiles/rmp_core.dir/blocked.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/blocked.cpp.o.d"
  "/root/repo/src/core/cascade.cpp" "src/core/CMakeFiles/rmp_core.dir/cascade.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/cascade.cpp.o.d"
  "/root/repo/src/core/identity.cpp" "src/core/CMakeFiles/rmp_core.dir/identity.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/identity.cpp.o.d"
  "/root/repo/src/core/model_predict.cpp" "src/core/CMakeFiles/rmp_core.dir/model_predict.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/model_predict.cpp.o.d"
  "/root/repo/src/core/model_select.cpp" "src/core/CMakeFiles/rmp_core.dir/model_select.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/model_select.cpp.o.d"
  "/root/repo/src/core/one_base_parallel.cpp" "src/core/CMakeFiles/rmp_core.dir/one_base_parallel.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/one_base_parallel.cpp.o.d"
  "/root/repo/src/core/parallel_compress.cpp" "src/core/CMakeFiles/rmp_core.dir/parallel_compress.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/parallel_compress.cpp.o.d"
  "/root/repo/src/core/partitioned.cpp" "src/core/CMakeFiles/rmp_core.dir/partitioned.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/partitioned.cpp.o.d"
  "/root/repo/src/core/pca.cpp" "src/core/CMakeFiles/rmp_core.dir/pca.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/pca.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/rmp_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/preconditioner.cpp" "src/core/CMakeFiles/rmp_core.dir/preconditioner.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/preconditioner.cpp.o.d"
  "/root/repo/src/core/projection.cpp" "src/core/CMakeFiles/rmp_core.dir/projection.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/projection.cpp.o.d"
  "/root/repo/src/core/quality.cpp" "src/core/CMakeFiles/rmp_core.dir/quality.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/quality.cpp.o.d"
  "/root/repo/src/core/reshape.cpp" "src/core/CMakeFiles/rmp_core.dir/reshape.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/reshape.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/rmp_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/staging.cpp" "src/core/CMakeFiles/rmp_core.dir/staging.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/staging.cpp.o.d"
  "/root/repo/src/core/svd_precond.cpp" "src/core/CMakeFiles/rmp_core.dir/svd_precond.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/svd_precond.cpp.o.d"
  "/root/repo/src/core/temporal.cpp" "src/core/CMakeFiles/rmp_core.dir/temporal.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/temporal.cpp.o.d"
  "/root/repo/src/core/tucker.cpp" "src/core/CMakeFiles/rmp_core.dir/tucker.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/tucker.cpp.o.d"
  "/root/repo/src/core/wavelet_precond.cpp" "src/core/CMakeFiles/rmp_core.dir/wavelet_precond.cpp.o" "gcc" "src/core/CMakeFiles/rmp_core.dir/wavelet_precond.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/rmp_la.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/rmp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/rmp_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rmp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rmp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rmp_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
