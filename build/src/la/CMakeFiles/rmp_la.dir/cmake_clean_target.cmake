file(REMOVE_RECURSE
  "librmp_la.a"
)
