
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/covariance.cpp" "src/la/CMakeFiles/rmp_la.dir/covariance.cpp.o" "gcc" "src/la/CMakeFiles/rmp_la.dir/covariance.cpp.o.d"
  "/root/repo/src/la/eigen.cpp" "src/la/CMakeFiles/rmp_la.dir/eigen.cpp.o" "gcc" "src/la/CMakeFiles/rmp_la.dir/eigen.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "src/la/CMakeFiles/rmp_la.dir/matrix.cpp.o" "gcc" "src/la/CMakeFiles/rmp_la.dir/matrix.cpp.o.d"
  "/root/repo/src/la/sparse.cpp" "src/la/CMakeFiles/rmp_la.dir/sparse.cpp.o" "gcc" "src/la/CMakeFiles/rmp_la.dir/sparse.cpp.o.d"
  "/root/repo/src/la/svd.cpp" "src/la/CMakeFiles/rmp_la.dir/svd.cpp.o" "gcc" "src/la/CMakeFiles/rmp_la.dir/svd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
