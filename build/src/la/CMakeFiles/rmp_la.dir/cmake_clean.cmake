file(REMOVE_RECURSE
  "CMakeFiles/rmp_la.dir/covariance.cpp.o"
  "CMakeFiles/rmp_la.dir/covariance.cpp.o.d"
  "CMakeFiles/rmp_la.dir/eigen.cpp.o"
  "CMakeFiles/rmp_la.dir/eigen.cpp.o.d"
  "CMakeFiles/rmp_la.dir/matrix.cpp.o"
  "CMakeFiles/rmp_la.dir/matrix.cpp.o.d"
  "CMakeFiles/rmp_la.dir/sparse.cpp.o"
  "CMakeFiles/rmp_la.dir/sparse.cpp.o.d"
  "CMakeFiles/rmp_la.dir/svd.cpp.o"
  "CMakeFiles/rmp_la.dir/svd.cpp.o.d"
  "librmp_la.a"
  "librmp_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmp_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
