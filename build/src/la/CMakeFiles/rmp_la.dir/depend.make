# Empty dependencies file for rmp_la.
# This may be replaced when dependencies are built.
