file(REMOVE_RECURSE
  "librmp_io.a"
)
