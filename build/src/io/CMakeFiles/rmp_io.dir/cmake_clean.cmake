file(REMOVE_RECURSE
  "CMakeFiles/rmp_io.dir/checksum.cpp.o"
  "CMakeFiles/rmp_io.dir/checksum.cpp.o.d"
  "CMakeFiles/rmp_io.dir/container.cpp.o"
  "CMakeFiles/rmp_io.dir/container.cpp.o.d"
  "CMakeFiles/rmp_io.dir/sequence_file.cpp.o"
  "CMakeFiles/rmp_io.dir/sequence_file.cpp.o.d"
  "CMakeFiles/rmp_io.dir/storage_model.cpp.o"
  "CMakeFiles/rmp_io.dir/storage_model.cpp.o.d"
  "librmp_io.a"
  "librmp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
