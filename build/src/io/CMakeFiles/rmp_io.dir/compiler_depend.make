# Empty compiler generated dependencies file for rmp_io.
# This may be replaced when dependencies are built.
