
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/checksum.cpp" "src/io/CMakeFiles/rmp_io.dir/checksum.cpp.o" "gcc" "src/io/CMakeFiles/rmp_io.dir/checksum.cpp.o.d"
  "/root/repo/src/io/container.cpp" "src/io/CMakeFiles/rmp_io.dir/container.cpp.o" "gcc" "src/io/CMakeFiles/rmp_io.dir/container.cpp.o.d"
  "/root/repo/src/io/sequence_file.cpp" "src/io/CMakeFiles/rmp_io.dir/sequence_file.cpp.o" "gcc" "src/io/CMakeFiles/rmp_io.dir/sequence_file.cpp.o.d"
  "/root/repo/src/io/storage_model.cpp" "src/io/CMakeFiles/rmp_io.dir/storage_model.cpp.o" "gcc" "src/io/CMakeFiles/rmp_io.dir/storage_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
