file(REMOVE_RECURSE
  "CMakeFiles/fig01_characteristics.dir/fig01_characteristics.cpp.o"
  "CMakeFiles/fig01_characteristics.dir/fig01_characteristics.cpp.o.d"
  "fig01_characteristics"
  "fig01_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
