# Empty compiler generated dependencies file for fig01_characteristics.
# This may be replaced when dependencies are built.
