# Empty dependencies file for ext_parallel_scaling.
# This may be replaced when dependencies are built.
