file(REMOVE_RECURSE
  "CMakeFiles/ext_parallel_scaling.dir/ext_parallel_scaling.cpp.o"
  "CMakeFiles/ext_parallel_scaling.dir/ext_parallel_scaling.cpp.o.d"
  "ext_parallel_scaling"
  "ext_parallel_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_parallel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
