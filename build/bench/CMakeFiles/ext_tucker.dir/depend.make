# Empty dependencies file for ext_tucker.
# This may be replaced when dependencies are built.
