file(REMOVE_RECURSE
  "CMakeFiles/ext_tucker.dir/ext_tucker.cpp.o"
  "CMakeFiles/ext_tucker.dir/ext_tucker.cpp.o.d"
  "ext_tucker"
  "ext_tucker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tucker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
