# Empty compiler generated dependencies file for fig11_ratio_vs_rmse.
# This may be replaced when dependencies are built.
