file(REMOVE_RECURSE
  "CMakeFiles/fig11_ratio_vs_rmse.dir/fig11_ratio_vs_rmse.cpp.o"
  "CMakeFiles/fig11_ratio_vs_rmse.dir/fig11_ratio_vs_rmse.cpp.o.d"
  "fig11_ratio_vs_rmse"
  "fig11_ratio_vs_rmse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ratio_vs_rmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
