# Empty compiler generated dependencies file for fig03_projection_ratios.
# This may be replaced when dependencies are built.
