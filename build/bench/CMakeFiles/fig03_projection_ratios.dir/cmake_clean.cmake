file(REMOVE_RECURSE
  "CMakeFiles/fig03_projection_ratios.dir/fig03_projection_ratios.cpp.o"
  "CMakeFiles/fig03_projection_ratios.dir/fig03_projection_ratios.cpp.o.d"
  "fig03_projection_ratios"
  "fig03_projection_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_projection_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
