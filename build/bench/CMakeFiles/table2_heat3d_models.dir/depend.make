# Empty dependencies file for table2_heat3d_models.
# This may be replaced when dependencies are built.
