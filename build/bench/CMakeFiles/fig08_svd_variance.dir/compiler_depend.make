# Empty compiler generated dependencies file for fig08_svd_variance.
# This may be replaced when dependencies are built.
