file(REMOVE_RECURSE
  "CMakeFiles/fig08_svd_variance.dir/fig08_svd_variance.cpp.o"
  "CMakeFiles/fig08_svd_variance.dir/fig08_svd_variance.cpp.o.d"
  "fig08_svd_variance"
  "fig08_svd_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_svd_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
