file(REMOVE_RECURSE
  "CMakeFiles/fig09_reduced_sizes.dir/fig09_reduced_sizes.cpp.o"
  "CMakeFiles/fig09_reduced_sizes.dir/fig09_reduced_sizes.cpp.o.d"
  "fig09_reduced_sizes"
  "fig09_reduced_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_reduced_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
