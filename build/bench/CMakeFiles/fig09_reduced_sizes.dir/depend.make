# Empty dependencies file for fig09_reduced_sizes.
# This may be replaced when dependencies are built.
