# Empty compiler generated dependencies file for fig10_rmse.
# This may be replaced when dependencies are built.
