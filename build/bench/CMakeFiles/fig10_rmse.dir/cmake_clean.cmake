file(REMOVE_RECURSE
  "CMakeFiles/fig10_rmse.dir/fig10_rmse.cpp.o"
  "CMakeFiles/fig10_rmse.dir/fig10_rmse.cpp.o.d"
  "fig10_rmse"
  "fig10_rmse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
