# Empty dependencies file for ablation_sz_modes.
# This may be replaced when dependencies are built.
