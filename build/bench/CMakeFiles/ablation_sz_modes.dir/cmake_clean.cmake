file(REMOVE_RECURSE
  "CMakeFiles/ablation_sz_modes.dir/ablation_sz_modes.cpp.o"
  "CMakeFiles/ablation_sz_modes.dir/ablation_sz_modes.cpp.o.d"
  "ablation_sz_modes"
  "ablation_sz_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sz_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
