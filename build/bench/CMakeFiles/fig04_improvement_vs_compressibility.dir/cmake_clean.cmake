file(REMOVE_RECURSE
  "CMakeFiles/fig04_improvement_vs_compressibility.dir/fig04_improvement_vs_compressibility.cpp.o"
  "CMakeFiles/fig04_improvement_vs_compressibility.dir/fig04_improvement_vs_compressibility.cpp.o.d"
  "fig04_improvement_vs_compressibility"
  "fig04_improvement_vs_compressibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_improvement_vs_compressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
