# Empty compiler generated dependencies file for fig04_improvement_vs_compressibility.
# This may be replaced when dependencies are built.
