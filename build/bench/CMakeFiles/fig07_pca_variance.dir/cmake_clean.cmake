file(REMOVE_RECURSE
  "CMakeFiles/fig07_pca_variance.dir/fig07_pca_variance.cpp.o"
  "CMakeFiles/fig07_pca_variance.dir/fig07_pca_variance.cpp.o.d"
  "fig07_pca_variance"
  "fig07_pca_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_pca_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
