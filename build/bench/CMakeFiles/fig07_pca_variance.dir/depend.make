# Empty dependencies file for fig07_pca_variance.
# This may be replaced when dependencies are built.
