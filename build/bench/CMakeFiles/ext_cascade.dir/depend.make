# Empty dependencies file for ext_cascade.
# This may be replaced when dependencies are built.
