file(REMOVE_RECURSE
  "CMakeFiles/ext_cascade.dir/ext_cascade.cpp.o"
  "CMakeFiles/ext_cascade.dir/ext_cascade.cpp.o.d"
  "ext_cascade"
  "ext_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
