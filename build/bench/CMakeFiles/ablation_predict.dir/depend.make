# Empty dependencies file for ablation_predict.
# This may be replaced when dependencies are built.
