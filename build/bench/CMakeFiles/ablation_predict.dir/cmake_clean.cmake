file(REMOVE_RECURSE
  "CMakeFiles/ablation_predict.dir/ablation_predict.cpp.o"
  "CMakeFiles/ablation_predict.dir/ablation_predict.cpp.o.d"
  "ablation_predict"
  "ablation_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
