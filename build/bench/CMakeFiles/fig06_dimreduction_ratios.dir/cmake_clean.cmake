file(REMOVE_RECURSE
  "CMakeFiles/fig06_dimreduction_ratios.dir/fig06_dimreduction_ratios.cpp.o"
  "CMakeFiles/fig06_dimreduction_ratios.dir/fig06_dimreduction_ratios.cpp.o.d"
  "fig06_dimreduction_ratios"
  "fig06_dimreduction_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_dimreduction_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
