# Empty compiler generated dependencies file for fig06_dimreduction_ratios.
# This may be replaced when dependencies are built.
