file(REMOVE_RECURSE
  "CMakeFiles/table4_end_to_end.dir/table4_end_to_end.cpp.o"
  "CMakeFiles/table4_end_to_end.dir/table4_end_to_end.cpp.o.d"
  "table4_end_to_end"
  "table4_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
