file(REMOVE_RECURSE
  "CMakeFiles/ablation_partitioned.dir/ablation_partitioned.cpp.o"
  "CMakeFiles/ablation_partitioned.dir/ablation_partitioned.cpp.o.d"
  "ablation_partitioned"
  "ablation_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
