# Empty compiler generated dependencies file for ablation_partitioned.
# This may be replaced when dependencies are built.
