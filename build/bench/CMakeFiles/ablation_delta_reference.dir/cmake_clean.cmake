file(REMOVE_RECURSE
  "CMakeFiles/ablation_delta_reference.dir/ablation_delta_reference.cpp.o"
  "CMakeFiles/ablation_delta_reference.dir/ablation_delta_reference.cpp.o.d"
  "ablation_delta_reference"
  "ablation_delta_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delta_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
