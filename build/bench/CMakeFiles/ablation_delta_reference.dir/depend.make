# Empty dependencies file for ablation_delta_reference.
# This may be replaced when dependencies are built.
