# Empty compiler generated dependencies file for heat3d_pipeline.
# This may be replaced when dependencies are built.
