file(REMOVE_RECURSE
  "CMakeFiles/heat3d_pipeline.dir/heat3d_pipeline.cpp.o"
  "CMakeFiles/heat3d_pipeline.dir/heat3d_pipeline.cpp.o.d"
  "heat3d_pipeline"
  "heat3d_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat3d_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
