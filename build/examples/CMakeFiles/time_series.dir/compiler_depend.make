# Empty compiler generated dependencies file for time_series.
# This may be replaced when dependencies are built.
