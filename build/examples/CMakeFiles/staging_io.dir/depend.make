# Empty dependencies file for staging_io.
# This may be replaced when dependencies are built.
