file(REMOVE_RECURSE
  "CMakeFiles/staging_io.dir/staging_io.cpp.o"
  "CMakeFiles/staging_io.dir/staging_io.cpp.o.d"
  "staging_io"
  "staging_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staging_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
