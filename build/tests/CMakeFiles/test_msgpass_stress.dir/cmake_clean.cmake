file(REMOVE_RECURSE
  "CMakeFiles/test_msgpass_stress.dir/test_msgpass_stress.cpp.o"
  "CMakeFiles/test_msgpass_stress.dir/test_msgpass_stress.cpp.o.d"
  "test_msgpass_stress"
  "test_msgpass_stress.pdb"
  "test_msgpass_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msgpass_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
