file(REMOVE_RECURSE
  "CMakeFiles/test_blocked.dir/test_blocked.cpp.o"
  "CMakeFiles/test_blocked.dir/test_blocked.cpp.o.d"
  "test_blocked"
  "test_blocked.pdb"
  "test_blocked[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
