file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_compress.dir/test_parallel_compress.cpp.o"
  "CMakeFiles/test_parallel_compress.dir/test_parallel_compress.cpp.o.d"
  "test_parallel_compress"
  "test_parallel_compress.pdb"
  "test_parallel_compress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
