# Empty dependencies file for test_parallel_compress.
# This may be replaced when dependencies are built.
