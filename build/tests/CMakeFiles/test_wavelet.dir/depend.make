# Empty dependencies file for test_wavelet.
# This may be replaced when dependencies are built.
