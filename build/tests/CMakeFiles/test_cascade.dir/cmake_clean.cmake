file(REMOVE_RECURSE
  "CMakeFiles/test_cascade.dir/test_cascade.cpp.o"
  "CMakeFiles/test_cascade.dir/test_cascade.cpp.o.d"
  "test_cascade"
  "test_cascade.pdb"
  "test_cascade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
