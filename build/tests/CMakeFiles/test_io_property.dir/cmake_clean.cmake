file(REMOVE_RECURSE
  "CMakeFiles/test_io_property.dir/test_io_property.cpp.o"
  "CMakeFiles/test_io_property.dir/test_io_property.cpp.o.d"
  "test_io_property"
  "test_io_property.pdb"
  "test_io_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
