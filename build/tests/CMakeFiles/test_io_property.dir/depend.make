# Empty dependencies file for test_io_property.
# This may be replaced when dependencies are built.
