file(REMOVE_RECURSE
  "CMakeFiles/test_compress_property.dir/test_compress_property.cpp.o"
  "CMakeFiles/test_compress_property.dir/test_compress_property.cpp.o.d"
  "test_compress_property"
  "test_compress_property.pdb"
  "test_compress_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compress_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
