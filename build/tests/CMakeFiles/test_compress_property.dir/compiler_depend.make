# Empty compiler generated dependencies file for test_compress_property.
# This may be replaced when dependencies are built.
