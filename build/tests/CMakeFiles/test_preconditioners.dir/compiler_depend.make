# Empty compiler generated dependencies file for test_preconditioners.
# This may be replaced when dependencies are built.
