file(REMOVE_RECURSE
  "CMakeFiles/test_preconditioners.dir/test_preconditioners.cpp.o"
  "CMakeFiles/test_preconditioners.dir/test_preconditioners.cpp.o.d"
  "test_preconditioners"
  "test_preconditioners.pdb"
  "test_preconditioners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preconditioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
