file(REMOVE_RECURSE
  "CMakeFiles/test_model_predict.dir/test_model_predict.cpp.o"
  "CMakeFiles/test_model_predict.dir/test_model_predict.cpp.o.d"
  "test_model_predict"
  "test_model_predict.pdb"
  "test_model_predict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
