# Empty dependencies file for test_model_predict.
# This may be replaced when dependencies are built.
