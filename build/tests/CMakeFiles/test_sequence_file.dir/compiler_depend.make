# Empty compiler generated dependencies file for test_sequence_file.
# This may be replaced when dependencies are built.
