file(REMOVE_RECURSE
  "CMakeFiles/test_sequence_file.dir/test_sequence_file.cpp.o"
  "CMakeFiles/test_sequence_file.dir/test_sequence_file.cpp.o.d"
  "test_sequence_file"
  "test_sequence_file.pdb"
  "test_sequence_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequence_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
