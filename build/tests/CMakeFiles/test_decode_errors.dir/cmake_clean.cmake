file(REMOVE_RECURSE
  "CMakeFiles/test_decode_errors.dir/test_decode_errors.cpp.o"
  "CMakeFiles/test_decode_errors.dir/test_decode_errors.cpp.o.d"
  "test_decode_errors"
  "test_decode_errors.pdb"
  "test_decode_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decode_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
