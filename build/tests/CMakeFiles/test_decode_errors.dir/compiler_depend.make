# Empty compiler generated dependencies file for test_decode_errors.
# This may be replaced when dependencies are built.
