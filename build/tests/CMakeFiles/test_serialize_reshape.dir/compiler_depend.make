# Empty compiler generated dependencies file for test_serialize_reshape.
# This may be replaced when dependencies are built.
