file(REMOVE_RECURSE
  "CMakeFiles/test_serialize_reshape.dir/test_serialize_reshape.cpp.o"
  "CMakeFiles/test_serialize_reshape.dir/test_serialize_reshape.cpp.o.d"
  "test_serialize_reshape"
  "test_serialize_reshape.pdb"
  "test_serialize_reshape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialize_reshape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
