file(REMOVE_RECURSE
  "CMakeFiles/test_la_property.dir/test_la_property.cpp.o"
  "CMakeFiles/test_la_property.dir/test_la_property.cpp.o.d"
  "test_la_property"
  "test_la_property.pdb"
  "test_la_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
