# Empty dependencies file for test_la_property.
# This may be replaced when dependencies are built.
