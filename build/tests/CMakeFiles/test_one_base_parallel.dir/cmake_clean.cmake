file(REMOVE_RECURSE
  "CMakeFiles/test_one_base_parallel.dir/test_one_base_parallel.cpp.o"
  "CMakeFiles/test_one_base_parallel.dir/test_one_base_parallel.cpp.o.d"
  "test_one_base_parallel"
  "test_one_base_parallel.pdb"
  "test_one_base_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_one_base_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
