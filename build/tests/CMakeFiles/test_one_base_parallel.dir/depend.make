# Empty dependencies file for test_one_base_parallel.
# This may be replaced when dependencies are built.
