file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_matrix.dir/test_pipeline_matrix.cpp.o"
  "CMakeFiles/test_pipeline_matrix.dir/test_pipeline_matrix.cpp.o.d"
  "test_pipeline_matrix"
  "test_pipeline_matrix.pdb"
  "test_pipeline_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
