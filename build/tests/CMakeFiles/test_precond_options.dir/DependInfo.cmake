
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_precond_options.cpp" "tests/CMakeFiles/test_precond_options.dir/test_precond_options.cpp.o" "gcc" "tests/CMakeFiles/test_precond_options.dir/test_precond_options.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rmp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/rmp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/rmp_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/rmp_la.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rmp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rmp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
