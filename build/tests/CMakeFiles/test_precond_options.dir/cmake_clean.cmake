file(REMOVE_RECURSE
  "CMakeFiles/test_precond_options.dir/test_precond_options.cpp.o"
  "CMakeFiles/test_precond_options.dir/test_precond_options.cpp.o.d"
  "test_precond_options"
  "test_precond_options.pdb"
  "test_precond_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_precond_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
