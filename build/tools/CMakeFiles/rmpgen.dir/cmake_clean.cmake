file(REMOVE_RECURSE
  "CMakeFiles/rmpgen.dir/rmpgen.cpp.o"
  "CMakeFiles/rmpgen.dir/rmpgen.cpp.o.d"
  "rmpgen"
  "rmpgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmpgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
