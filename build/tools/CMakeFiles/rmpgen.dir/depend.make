# Empty dependencies file for rmpgen.
# This may be replaced when dependencies are built.
