# Empty compiler generated dependencies file for rmpgen.
# This may be replaced when dependencies are built.
