# Empty dependencies file for rmpc.
# This may be replaced when dependencies are built.
