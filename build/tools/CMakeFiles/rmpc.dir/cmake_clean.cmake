file(REMOVE_RECURSE
  "CMakeFiles/rmpc.dir/rmpc.cpp.o"
  "CMakeFiles/rmpc.dir/rmpc.cpp.o.d"
  "rmpc"
  "rmpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
