// Fig. 11: compression ratio at matched RMSE -- sweep the ZFP precision
// from 8 to 32 bits for direct compression and for PCA/SVD
// preconditioning, printing (rmse, ratio) series per dataset.
//
// Paper shape to match: at the same information loss, PCA/SVD beat direct
// ZFP on some datasets (the strongly reducible ones) and not on others.
#include "bench_common.hpp"

#include "compress/zfp_like.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Fig. 11", "ratio vs RMSE under ZFP precision sweep");

  const unsigned precisions[] = {8, 12, 16, 20, 24, 28, 32};
  const char* methods[] = {"identity", "pca", "svd"};

  std::printf("%-14s %-9s %5s %12s %10s\n", "dataset", "method", "prec",
              "rmse", "ratio");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    for (const char* method : methods) {
      for (unsigned precision : precisions) {
        // Reduced representation and delta both at this precision: the
        // sweep trades ratio against loss uniformly.
        compress::ZfpCompressor reduced(
            {compress::ZfpMode::kFixedPrecision, precision, 0.0});
        compress::ZfpCompressor delta(
            {compress::ZfpMode::kFixedPrecision,
             precision > 8 ? precision - 8 : 4, 0.0});
        const core::CodecPair codecs{&reduced, &delta};
        const auto preconditioner = core::make_preconditioner(method);
        const auto result =
            core::run_pipeline(*preconditioner, pair.full, codecs);
        std::printf("%-14s %-9s %5u %12.3e %9.2fx\n", pair.name.c_str(),
                    method, precision, result.rmse,
                    result.stats.compression_ratio);
      }
    }
  }
  return 0;
}
