// Shared helpers for the per-figure/table bench binaries.
//
// Every binary accepts an optional scale argument (argv[1], default from
// RMP_BENCH_SCALE or 0.5).  Scale 1.0 is laptop-sized; ~4.0 approaches the
// paper's dataset sizes.  Output is aligned text with a CSV-ish structure
// so the series can be diffed against the paper's figures.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"

namespace rmp::bench {

inline double parse_scale(int argc, char** argv, double fallback = 0.5) {
  if (argc > 1) return std::atof(argv[1]);
  if (const char* env = std::getenv("RMP_BENCH_SCALE")) return std::atof(env);
  return fallback;
}

/// Paper-configured codec pairs (§IV-B, §V-B).
struct ZfpCodecs {
  std::unique_ptr<compress::Compressor> reduced =
      compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  core::CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

struct SzCodecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_sz_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_sz_delta();
  core::CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

struct FpcCodecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_fpc();
  std::unique_ptr<compress::Compressor> delta = compress::make_fpc();
  core::CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

inline void print_header(const char* figure, const char* what) {
  std::printf("# %s -- %s\n", figure, what);
}

}  // namespace rmp::bench
