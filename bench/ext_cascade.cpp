// Extension: cascade preconditioning -- does stripping the dominant
// structure with one method and then preconditioning the residual with
// another beat either alone?  (The paper's "no single best model"
// observation, taken one step further.)
#include "bench_common.hpp"

#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Extension", "cascade preconditioning");

  bench::ZfpCodecs zfp;
  const char* methods[] = {"one-base",      "pca",          "one-base>pca",
                           "one-base>svd",  "pca>wavelet",  "multi-base>pca"};

  std::printf("%-14s %-16s %10s %12s\n", "dataset", "method", "ratio",
              "rmse");
  for (sim::DatasetId id :
       {sim::DatasetId::kHeat3d, sim::DatasetId::kLaplace,
        sim::DatasetId::kAstro}) {
    const auto pair = sim::make_dataset(id, scale);
    for (const char* method : methods) {
      const auto preconditioner = core::make_preconditioner(method);
      const auto result =
          core::run_pipeline(*preconditioner, pair.full, zfp.pair());
      std::printf("%-14s %-16s %9.2fx %12.3e\n",
                  method == methods[0] ? pair.name.c_str() : "", method,
                  result.stats.compression_ratio, result.rmse);
    }
  }
  return 0;
}
