// Fig. 3: compression ratios of the projection-based reduced models
// (one-base, multi-base, DuoModel) vs direct compression ("original") on
// Heat3d and Laplace, under SZ, ZFP and FPC.  Each number is the average
// over 20 outputs spanning the application lifetime, as in the paper.
//
// DuoModel is run the way the prior work defines it: a *separately
// computed* coarse simulation (grid/4, matched physical time) supplies
// the reduced model, only the delta is stored, and decompression would
// re-run the coarse model.
//
// Paper shape to match: one-base ~ multi-base > DuoModel > original for
// the lossy codecs; one/multi-base lift FPC more than DuoModel does.
#include "bench_common.hpp"

#include "core/identity.hpp"
#include "core/projection.hpp"
#include "sim/datasets.hpp"
#include "sim/heat.hpp"
#include "sim/laplace.hpp"

namespace {

using namespace rmp;

double average_ratio(const std::vector<sim::Field>& outputs,
                     const core::Preconditioner& preconditioner,
                     const core::CodecPair& codecs) {
  double sum = 0.0;
  for (const auto& field : outputs) {
    core::EncodeStats stats;
    preconditioner.encode(field, codecs, &stats);
    sum += stats.compression_ratio;
  }
  return sum / static_cast<double>(outputs.size());
}

double average_duomodel_ratio(const std::vector<sim::Field>& outputs,
                              const std::vector<sim::Field>& coarse,
                              const core::DuoModelPreconditioner& duomodel,
                              const core::CodecPair& codecs) {
  double sum = 0.0;
  for (std::size_t s = 0; s < outputs.size(); ++s) {
    core::EncodeStats stats;
    duomodel.encode_with_reduced(outputs[s], coarse[s], codecs, &stats);
    sum += stats.compression_ratio;
  }
  return sum / static_cast<double>(outputs.size());
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv);
  const std::size_t outputs_per_app = 20;
  const std::size_t duo_factor = 4;
  bench::print_header(
      "Fig. 3", "projection-based reduced models, avg of 20 outputs");

  bench::SzCodecs sz;
  bench::ZfpCodecs zfp;
  bench::FpcCodecs fpc;
  struct CodecRow {
    const char* label;
    core::CodecPair pair;
  };
  const CodecRow codecs[] = {
      {"SZ", sz.pair()}, {"ZFP", zfp.pair()}, {"FPC", fpc.pair()}};

  core::IdentityPreconditioner original;
  core::OneBasePreconditioner one_base;
  core::MultiBasePreconditioner multi_base(4);
  // DuoModel does not store its reduced model: decompression re-runs the
  // coarse simulation, so only the delta counts against the ratio.
  core::DuoModelPreconditioner duomodel(duo_factor, /*store_reduced=*/false);

  std::printf("%-10s %-6s %10s %10s %10s %10s\n", "dataset", "codec",
              "original", "one-base", "multi-base", "duomodel");
  for (sim::DatasetId id : {sim::DatasetId::kHeat3d, sim::DatasetId::kLaplace}) {
    const auto snapshots = sim::make_snapshots(id, outputs_per_app, scale);
    std::vector<sim::Field> coarse;
    if (id == sim::DatasetId::kHeat3d) {
      coarse = sim::heat3d_coarse_snapshots(
          sim::registry_heat_config(scale), duo_factor, outputs_per_app);
    } else {
      coarse = sim::laplace3d_coarse_snapshots(
          sim::registry_laplace_config(scale), duo_factor, outputs_per_app);
    }

    for (const auto& codec : codecs) {
      std::printf("%-10s %-6s", sim::dataset_name(id).c_str(), codec.label);
      std::printf(" %9.2fx", average_ratio(snapshots, original, codec.pair));
      std::printf(" %9.2fx", average_ratio(snapshots, one_base, codec.pair));
      std::printf(" %9.2fx",
                  average_ratio(snapshots, multi_base, codec.pair));
      std::printf(" %9.2fx",
                  average_duomodel_ratio(snapshots, coarse, duomodel,
                                         codec.pair));
      std::printf("\n");
    }
  }
  return 0;
}
