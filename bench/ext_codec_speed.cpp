// ext_codec_speed -- SZ-hot-path microbenchmarks, emitted as
// machine-readable JSON (schema rmp-bench-codec-v1).  Times the layers
// the DESIGN.md §13 overhaul targets in isolation:
//
//   * Huffman encode/decode MB/s over a quantization-shaped symbol stream
//     (MB measured on the 4-byte-per-symbol input side);
//   * Lorenzo quantize/dequantize Melem/s, read from the codec/sz obs
//     spans of a full SzCompressor round trip;
//   * SZ end-to-end encode/decode MB/s (the bench-gate aggregate).
//
// Every number is best-of-N wall time, which suppresses scheduler noise
// far better than single-shot timing on shared machines.
//
//   ext_codec_speed [scale] [out.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "compress/huffman.hpp"
#include "compress/sz.hpp"
#include "obs/obs.hpp"

namespace {

using namespace rmp;

constexpr int kReps = 7;

void append_number(std::string& out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", std::isfinite(v) ? v : 0.0);
  out += buffer;
}

// Sum of total_seconds over registry spans whose path ends in `suffix`
// (span paths nest under the caller, so the tail is the stable part).
double span_seconds(std::string_view suffix) {
  double total = 0.0;
  for (const auto& span : obs::Registry::global().spans()) {
    const std::string& path = span.name;
    if (path.size() >= suffix.size() &&
        std::string_view(path).substr(path.size() - suffix.size()) == suffix) {
      total += span.total_seconds;
    }
  }
  return total;
}

// Quantization-code-shaped stream: mostly the zero-residual bin with a
// skewed tail, like a smooth field quantizes to.
std::vector<std::uint32_t> make_symbol_stream(std::size_t count) {
  std::mt19937 rng(4242);
  std::vector<std::uint32_t> symbols(count);
  const std::uint32_t center = 1u << 15;
  for (auto& s : symbols) {
    const std::uint32_t r = rng();
    if (r % 100 < 90) {
      s = center + (r % 7) - 3;
    } else {
      s = r % (1u << 16);
    }
  }
  return symbols;
}

// Smooth synthetic 3D field with mild noise -- quantizes mostly to hits.
std::vector<double> make_field(std::size_t nx, std::size_t ny, std::size_t nz) {
  std::mt19937_64 rng(991);
  std::uniform_real_distribution<double> noise(-0.5, 0.5);
  std::vector<double> data(nx * ny * nz);
  std::size_t n = 0;
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t k = 0; k < nz; ++k, ++n) {
        data[n] = 100.0 * std::sin(0.05 * static_cast<double>(i)) *
                      std::cos(0.07 * static_cast<double>(j)) +
                  0.5 * static_cast<double>(k) + 0.01 * noise(rng);
      }
    }
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 1.0);
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_codec_speed.json";

  bench::print_header("ext_codec_speed",
                      "SZ hot-path microbenchmarks (best-of-N)");

  // --- Huffman over a 2M-symbol quantization-shaped stream ------------
  const auto symbols = make_symbol_stream(
      static_cast<std::size_t>(2'000'000 * std::max(scale, 0.05)));
  const double symbol_mb =
      static_cast<double>(symbols.size() * sizeof(std::uint32_t)) / 1e6;

  std::vector<std::uint8_t> encoded;
  double huff_encode_s = 1e300, huff_decode_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const obs::ScopedSpan timer("bench/huffman-encode");
    encoded = compress::huffman_encode(symbols);
    huff_encode_s = std::min(huff_encode_s, timer.elapsed_seconds());
  }
  std::vector<std::uint32_t> decoded_symbols;
  for (int rep = 0; rep < kReps; ++rep) {
    const obs::ScopedSpan timer("bench/huffman-decode");
    decoded_symbols = compress::huffman_decode(encoded);
    huff_decode_s = std::min(huff_decode_s, timer.elapsed_seconds());
  }
  if (decoded_symbols != symbols) {
    std::fprintf(stderr, "ext_codec_speed: huffman round trip mismatch\n");
    return 1;
  }

  // --- SZ round trip; Lorenzo kernel rates come from the obs spans ----
  const auto edge = static_cast<std::size_t>(
      std::max(16.0, 80.0 * std::cbrt(std::max(scale, 0.05))));
  const auto field = make_field(edge, edge, edge);
  const compress::Dims dims{edge, edge, edge};
  const double field_mb = static_cast<double>(field.size() * sizeof(double)) / 1e6;
  const double field_melem = static_cast<double>(field.size()) / 1e6;
  const compress::SzCompressor sz{compress::SzOptions{}};  // block-relative Lorenzo

  std::vector<std::uint8_t> archive;
  std::vector<double> restored;
  double sz_encode_s = 1e300, sz_decode_s = 1e300;
  double quantize_s = 1e300, dequantize_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::Registry::global().reset();
    {
      const obs::ScopedSpan timer("bench/sz-encode");
      archive = sz.compress(field, dims);
      sz_encode_s = std::min(sz_encode_s, timer.elapsed_seconds());
    }
    {
      const obs::ScopedSpan timer("bench/sz-decode");
      restored = sz.decompress(archive);
      sz_decode_s = std::min(sz_decode_s, timer.elapsed_seconds());
    }
    quantize_s = std::min(quantize_s, span_seconds("codec/sz/quantize"));
    dequantize_s = std::min(dequantize_s, span_seconds("codec/sz/dequantize"));
  }
  if (restored.size() != field.size()) {
    std::fprintf(stderr, "ext_codec_speed: sz round trip size mismatch\n");
    return 1;
  }

  const double huffman_encode_mb_s = symbol_mb / huff_encode_s;
  const double huffman_decode_mb_s = symbol_mb / huff_decode_s;
  const double lorenzo_quantize_melem_s = field_melem / quantize_s;
  const double lorenzo_dequantize_melem_s = field_melem / dequantize_s;
  const double sz_encode_mb_s = field_mb / sz_encode_s;
  const double sz_decode_mb_s = field_mb / sz_decode_s;

  std::printf("huffman  encode %8.1f MB/s   decode %8.1f MB/s  (%zu symbols)\n",
              huffman_encode_mb_s, huffman_decode_mb_s, symbols.size());
  std::printf("lorenzo  quantize %6.1f Melem/s   dequantize %6.1f Melem/s "
              "(%zu^3 grid)\n",
              lorenzo_quantize_melem_s, lorenzo_dequantize_melem_s, edge);
  std::printf("sz       encode %8.1f MB/s   decode %8.1f MB/s\n",
              sz_encode_mb_s, sz_decode_mb_s);

  std::string json = "{\n  \"schema\": \"rmp-bench-codec-v1\",\n  \"scale\": ";
  append_number(json, scale);
  json += ",\n  \"reps\": ";
  append_number(json, kReps);
  json += ",\n  \"huffman_encode_mb_s\": ";
  append_number(json, huffman_encode_mb_s);
  json += ",\n  \"huffman_decode_mb_s\": ";
  append_number(json, huffman_decode_mb_s);
  json += ",\n  \"lorenzo_quantize_melem_s\": ";
  append_number(json, lorenzo_quantize_melem_s);
  json += ",\n  \"lorenzo_dequantize_melem_s\": ";
  append_number(json, lorenzo_dequantize_melem_s);
  json += ",\n  \"sz_encode_mb_s\": ";
  append_number(json, sz_encode_mb_s);
  json += ",\n  \"sz_decode_mb_s\": ";
  append_number(json, sz_decode_mb_s);
  json += ",\n  \"obs\": ";
  json += obs::Registry::global().to_json();
  json += "\n}\n";

  std::FILE* file = std::fopen(out_path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "ext_codec_speed: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out_path.c_str());

  const auto validation = obs::validate_stats_json(json);
  if (!validation.ok) {
    std::fprintf(stderr, "ext_codec_speed: self-validation failed: %s\n",
                 validation.error.c_str());
    return 1;
  }
  return 0;
}
