// Fig. 8: proportion of the singular-value mass carried by the leading
// singular values, per dataset (the SVD analogue of Fig. 7).
#include "bench_common.hpp"

#include "core/pca.hpp"  // components_for_target
#include "core/svd_precond.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Fig. 8", "SVD proportion of singular values");

  std::printf("%-14s %8s %8s %8s %8s %8s %10s\n", "dataset", "SV1", "SV2",
              "SV3", "SV4", "SV5", "k(95%)");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    const auto proportions = core::svd_singular_proportions(pair.full);
    std::printf("%-14s", pair.name.c_str());
    for (std::size_t c = 0; c < 5; ++c) {
      if (c < proportions.size()) {
        std::printf(" %8.4f", proportions[c]);
      } else {
        std::printf(" %8s", "-");
      }
    }
    std::printf(" %10zu\n",
                core::components_for_target(proportions, 0.95));
  }
  return 0;
}
