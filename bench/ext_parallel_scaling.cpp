// Extension: scaling behavior of the parallel substrates on this host --
// the 3D-decomposed Heat3d solver (Algorithm 1's substrate) across rank
// grids, and thread-parallel N-to-N compression across worker counts.
// On a single-core container the times mostly show the runtime overhead;
// on a real multicore they show the speedup.
#include "bench_common.hpp"

#include <array>
#include <chrono>
#include <functional>

#include "core/parallel_compress.hpp"
#include "sim/heat.hpp"

namespace {

double timed(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Extension", "parallel substrate scaling");

  sim::HeatConfig config;
  config.n = std::max<std::size_t>(16, static_cast<std::size_t>(32 * scale));
  config.steps = 100;

  std::printf("# Heat3d %zu^3, %zu steps, 3D rank grids\n", config.n,
              config.steps);
  std::printf("%-10s %10s\n", "grid", "seconds");
  const std::array<std::array<int, 3>, 4> grids = {
      {{1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2}}};
  for (const auto& procs : grids) {
    sim::Field result;
    const double seconds = timed(
        [&] { result = sim::heat3d_run_parallel_3d(config, procs); });
    std::printf("%dx%dx%d      %10.4f\n", procs[0], procs[1], procs[2],
                seconds);
  }

  std::printf("\n# N-to-N compression of one field, worker sweep\n");
  std::printf("%-10s %10s %12s\n", "threads", "seconds", "bytes");
  const sim::Field field = sim::heat3d_run(config);
  bench::ZfpCodecs zfp;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    io::Container container;
    const double seconds = timed([&] {
      container = core::compress_field_parallel(field, *zfp.reduced,
                                                {8, threads});
    });
    std::printf("%-10zu %10.4f %12zu\n", threads, seconds,
                container.payload_bytes());
  }
  return 0;
}
