// Extension: scaling behavior of the parallel substrates on this host --
// the 3D-decomposed Heat3d solver (Algorithm 1's substrate) across rank
// grids, and the shared-thread-pool numeric pipelines across worker
// counts.  Each pipeline (parallel-slabs N-to-N compression, blocked /
// partitioned PCA, SVD, wavelet) is timed encode+decode with a
// ScopedPoolOverride installing a pool of 1/2/4/8 workers; threads == 1
// runs the inline serial path, so it doubles as the serial baseline.
//
// Besides the aligned-text table, results are written to
// BENCH_parallel_scaling.json (machine-readable, first entry of the perf
// trajectory).  On a single-core container the times mostly show runtime
// overhead; on a real multicore they show the speedup.
#include "bench_common.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/parallel_compress.hpp"
#include "core/preconditioner.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/heat.hpp"

namespace {

double timed(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Best of `reps` runs: robust against scheduler noise without needing a
// full statistics pass.
double timed_best(const std::function<void()>& body, int reps = 3) {
  double best = timed(body);
  for (int r = 1; r < reps; ++r) best = std::min(best, timed(body));
  return best;
}

struct SweepPoint {
  std::size_t threads;
  double encode_s;
  double decode_s;
};

struct PipelineResult {
  std::string name;
  std::vector<SweepPoint> sweep;

  double speedup(std::size_t threads, double SweepPoint::*member) const {
    const SweepPoint* base = nullptr;
    const SweepPoint* at = nullptr;
    for (const auto& p : sweep) {
      if (p.threads == 1) base = &p;
      if (p.threads == threads) at = &p;
    }
    if (base == nullptr || at == nullptr || at->*member <= 0.0) return 0.0;
    return base->*member / (at->*member);
  }
};

const std::array<std::size_t, 4> kThreadSweep = {1, 2, 4, 8};

// Sweep one pipeline: encode_fn/decode_fn run under a pool of `threads`
// workers installed as the process-wide override, so every internal hot
// path (matrix products, covariance, Haar lines, per-block stages) uses
// exactly that many workers.
PipelineResult sweep_pipeline(
    const std::string& name,
    const std::function<void(std::size_t)>& encode_fn,
    const std::function<void(std::size_t)>& decode_fn) {
  PipelineResult result{name, {}};
  for (const std::size_t threads : kThreadSweep) {
    rmp::parallel::ThreadPool pool(threads);
    rmp::parallel::ScopedPoolOverride guard(pool);
    SweepPoint point{threads, 0.0, 0.0};
    point.encode_s = timed_best([&] { encode_fn(threads); });
    point.decode_s = timed_best([&] { decode_fn(threads); });
    result.sweep.push_back(point);
    std::printf("%-14s %-8zu %10.4f %10.4f\n", name.c_str(), threads,
                point.encode_s, point.decode_s);
  }
  std::printf("%-14s speedup@4t   enc %.2fx   dec %.2fx\n", name.c_str(),
              result.speedup(4, &SweepPoint::encode_s),
              result.speedup(4, &SweepPoint::decode_s));
  return result;
}

void write_json(const std::vector<PipelineResult>& pipelines, double scale,
                std::size_t field_n) {
  FILE* out = std::fopen("BENCH_parallel_scaling.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel_scaling.json\n");
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(out, "  \"scale\": %g,\n", scale);
  std::fprintf(out, "  \"field_n\": %zu,\n", field_n);
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"pipelines\": [\n");
  for (std::size_t p = 0; p < pipelines.size(); ++p) {
    const auto& pipe = pipelines[p];
    std::fprintf(out, "    {\"name\": \"%s\", \"sweep\": [",
                 pipe.name.c_str());
    for (std::size_t i = 0; i < pipe.sweep.size(); ++i) {
      const auto& pt = pipe.sweep[i];
      std::fprintf(out,
                   "%s{\"threads\": %zu, \"encode_s\": %.6f, "
                   "\"decode_s\": %.6f}",
                   i == 0 ? "" : ", ", pt.threads, pt.encode_s, pt.decode_s);
    }
    std::fprintf(out,
                 "], \"speedup_4t_encode\": %.3f, \"speedup_4t_decode\": "
                 "%.3f}%s\n",
                 pipe.speedup(4, &SweepPoint::encode_s),
                 pipe.speedup(4, &SweepPoint::decode_s),
                 p + 1 < pipelines.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_parallel_scaling.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Extension", "parallel substrate scaling");

  sim::HeatConfig config;
  config.n = std::max<std::size_t>(16, static_cast<std::size_t>(32 * scale));
  config.steps = 100;

  std::printf("# Heat3d %zu^3, %zu steps, 3D rank grids\n", config.n,
              config.steps);
  std::printf("%-10s %10s\n", "grid", "seconds");
  const std::array<std::array<int, 3>, 4> grids = {
      {{1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2}}};
  for (const auto& procs : grids) {
    sim::Field result;
    const double seconds = timed(
        [&] { result = sim::heat3d_run_parallel_3d(config, procs); });
    std::printf("%dx%dx%d      %10.4f\n", procs[0], procs[1], procs[2],
                seconds);
  }

  // A larger field for the thread sweep so the hot paths clear their
  // serial cutoffs (the solver field above is sized for the rank-grid
  // part, which pays per-step latency).
  sim::HeatConfig sweep_config;
  sweep_config.n =
      std::max<std::size_t>(48, static_cast<std::size_t>(64 * scale));
  sweep_config.steps = 20;
  const sim::Field field = sim::heat3d_run(sweep_config);

  std::printf("\n# Encode/decode pipelines, worker sweep (best of 3)\n");
  std::printf("%-14s %-8s %10s %10s\n", "pipeline", "threads", "encode_s",
              "decode_s");

  bench::ZfpCodecs zfp;
  std::vector<PipelineResult> results;

  {  // N-to-N parallel-slabs compression (Table IV pattern).
    io::Container container;
    results.push_back(sweep_pipeline(
        "parallel-slabs",
        [&](std::size_t threads) {
          container = core::compress_field_parallel(field, *zfp.reduced,
                                                    {8, threads});
        },
        [&](std::size_t threads) {
          core::decompress_field_parallel(container, *zfp.reduced, threads);
        }));
  }

  const auto precond_sweep = [&](const std::string& spec) {
    const auto preconditioner = core::make_preconditioner(spec);
    io::Container container;
    results.push_back(sweep_pipeline(
        spec,
        [&](std::size_t) {
          container = preconditioner->encode(field, zfp.pair(), nullptr);
        },
        [&](std::size_t) {
          preconditioner->decode(container, zfp.pair(), nullptr);
        }));
  };
  precond_sweep("blocked-pca");
  precond_sweep("pca");
  precond_sweep("svd");
  precond_sweep("wavelet");

  write_json(results, scale, sweep_config.n);
  return 0;
}
