// Fig. 6: compression ratios of PCA/SVD/Wavelet preconditioning (x ZFP
// and SZ) vs compressing each of the nine datasets directly.
//
// Paper shape to match: PCA and SVD lift Heat3d, Laplace, Wave, Astro and
// Sedov_pres substantially; Fish *loses* under all three preconditioners
// (its exact zeros become less-compressible near-zero deltas); Wavelet's
// improvement is marginal because its reduced representation is large.
#include "bench_common.hpp"

#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Fig. 6",
                      "dimension-reduction preconditioning, 9 datasets");

  bench::ZfpCodecs zfp;
  bench::SzCodecs sz;
  struct CodecRow {
    const char* label;
    core::CodecPair pair;
  };
  const CodecRow codecs[] = {{"ZFP", zfp.pair()}, {"SZ", sz.pair()}};
  const char* methods[] = {"identity", "pca", "svd", "wavelet"};

  std::printf("%-14s %-5s %10s %10s %10s %10s\n", "dataset", "codec",
              "direct", "pca", "svd", "wavelet");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    for (const auto& codec : codecs) {
      std::printf("%-14s %-5s", pair.name.c_str(), codec.label);
      for (const char* method : methods) {
        const auto preconditioner = core::make_preconditioner(method);
        core::EncodeStats stats;
        preconditioner->encode(pair.full, codec.pair, &stats);
        std::printf(" %9.2fx", stats.compression_ratio);
      }
      std::printf("\n");
    }
  }
  return 0;
}
