// Fig. 10: RMSE introduced by each method -- direct ZFP/SZ vs the six
// preconditioner x codec conjunctions -- on every dataset.
//
// Paper shape to match: preconditioning yields *higher* RMSE than direct
// compression at the same bounds, because the reduced representation is
// itself lossy and the loss is amplified through the inverse transform;
// Wavelet is worst.
#include "bench_common.hpp"

#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Fig. 10", "RMSE of direct vs preconditioned");

  bench::ZfpCodecs zfp;
  bench::SzCodecs sz;
  struct CodecRow {
    const char* label;
    core::CodecPair pair;
  };
  const CodecRow codecs[] = {{"ZFP", zfp.pair()}, {"SZ", sz.pair()}};
  const char* methods[] = {"identity", "pca", "svd", "wavelet"};

  std::printf("%-14s %-5s %12s %12s %12s %12s\n", "dataset", "codec",
              "direct", "pca", "svd", "wavelet");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    for (const auto& codec : codecs) {
      std::printf("%-14s %-5s", pair.name.c_str(), codec.label);
      for (const char* method : methods) {
        const auto preconditioner = core::make_preconditioner(method);
        const auto result =
            core::run_pipeline(*preconditioner, pair.full, codec.pair);
        std::printf(" %12.3e", result.rmse);
      }
      std::printf("\n");
    }
  }
  return 0;
}
