// Fig. 4: compression-ratio improvement from the one-base reduced model
// vs the compressibility of the original data (captured by the ZFP ratio
// of direct compression), over 20 outputs each of Heat3d and Laplace.
//
// Paper shape to match: improvement grows with compressibility -- the
// more compressible the original, the more one-base helps.
#include "bench_common.hpp"

#include "core/identity.hpp"
#include "core/projection.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Fig. 4",
                      "one-base improvement vs original compressibility");

  bench::ZfpCodecs zfp;
  core::IdentityPreconditioner original;
  core::OneBasePreconditioner one_base;

  std::printf("%-10s %6s %14s %14s %12s\n", "dataset", "output",
              "zfp-direct", "zfp+one-base", "improvement");
  for (sim::DatasetId id : {sim::DatasetId::kHeat3d, sim::DatasetId::kLaplace}) {
    const auto snapshots = sim::make_snapshots(id, 20, scale);
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
      core::EncodeStats direct, preconditioned;
      original.encode(snapshots[s], zfp.pair(), &direct);
      one_base.encode(snapshots[s], zfp.pair(), &preconditioned);
      std::printf("%-10s %6zu %13.2fx %13.2fx %11.2fx\n",
                  sim::dataset_name(id).c_str(), s + 1,
                  direct.compression_ratio, preconditioned.compression_ratio,
                  preconditioned.compression_ratio /
                      direct.compression_ratio);
    }
  }
  return 0;
}
