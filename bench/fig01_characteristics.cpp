// Fig. 1: data characteristics of full model vs reduced model for all
// nine datasets -- CDF curves plus byte entropy / byte mean / serial
// correlation.  The paper's claim: the two models share nearly identical
// CDF trends and scalar characteristics.
#include "bench_common.hpp"

#include "sim/datasets.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Fig. 1",
                      "full vs reduced model data characteristics");

  std::printf("%-14s %-8s %8s %10s %8s %8s\n", "dataset", "model", "ent",
              "mean", "corr", "KS-dist");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    const auto full = stats::byte_characteristics(pair.full.flat());
    const auto reduced = stats::byte_characteristics(pair.reduced.flat());
    const double ks = stats::ks_distance(pair.full.flat(),
                                         pair.reduced.flat());
    std::printf("%-14s %-8s %8.4f %10.4f %8.4f %8.4f\n", pair.name.c_str(),
                "full", full.entropy, full.mean, full.correlation, ks);
    std::printf("%-14s %-8s %8.4f %10.4f %8.4f %8s\n", "", "reduced",
                reduced.entropy, reduced.mean, reduced.correlation, "");

    // CDF curves (8 sample points per model, value:probability pairs).
    for (const char* which : {"full", "reduced"}) {
      const auto& field =
          std::string(which) == "full" ? pair.full : pair.reduced;
      const auto cdf = stats::empirical_cdf(field.flat(), 8);
      std::printf("  cdf[%-7s]", which);
      for (const auto& point : cdf) {
        std::printf(" %.3g:%.2f", point.value, point.probability);
      }
      std::printf("\n");
    }
  }
  return 0;
}
