// Ablation: predictive model selection (paper future work #2) vs brute
// force.  For every dataset, run the cheap feature-based predictor and
// the exhaustive search, and report the agreement and the ratio regret
// (best ratio / predicted method's ratio).
#include "bench_common.hpp"

#include "core/model_predict.hpp"
#include "core/model_select.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Ablation", "predicted vs brute-force model choice");

  bench::SzCodecs sz;
  std::printf("%-14s %-10s %-10s %10s %8s\n", "dataset", "predicted",
              "best", "regret", "agree");
  std::size_t agreements = 0;
  double worst_regret = 1.0;
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    const auto prediction = core::predict_best_model(pair.full);

    core::SelectionOptions options;
    options.candidates = {"identity", "one-base", "pca"};
    const auto selection =
        core::select_best_model(pair.full, sz.pair(), options);

    double predicted_ratio = 0.0;
    for (const auto& result : selection.all) {
      if (result.method == prediction.method) {
        predicted_ratio = result.stats.compression_ratio;
      }
    }
    const double best_ratio = selection.best_result.stats.compression_ratio;
    const double regret =
        predicted_ratio > 0.0 ? best_ratio / predicted_ratio : 0.0;
    const bool agree = prediction.method == selection.best;
    agreements += agree ? 1 : 0;
    worst_regret = std::max(worst_regret, regret);
    std::printf("%-14s %-10s %-10s %9.2fx %8s\n", pair.name.c_str(),
                prediction.method.c_str(), selection.best.c_str(), regret,
                agree ? "yes" : "no");
  }
  std::printf("agreement: %zu/9, worst regret %.2fx\n", agreements,
              worst_regret);
  return 0;
}
