// ext_seek_decode -- seekable-archive decode bench (DESIGN.md §12),
// emitted as machine-readable JSON (schema rmp-bench-seek-v1).
//
// Builds a v4 sequence archive (per-section chunk index + CRC'd
// sequence trailer) of N encoded steps, then measures
//   1. whole-sequence parallel chunked decode across a thread sweep
//      (ChunkFetcher + fetch_all on a ScopedPoolOverride pool), with the
//      decoded fields verified identical to the single-thread run, and
//   2. random access to one step, reporting the bytes actually read --
//      the O(step K) seek property the chunk index buys.
//
//   ext_seek_decode [scale] [out.json]
//
// Default scale comes from RMP_BENCH_SCALE or 0.4; default output is
// BENCH_seek_decode.json in the working directory.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/chunk_fetch.hpp"
#include "io/sequence_file.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/datasets.hpp"

namespace {

using namespace rmp;

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

void append_number(std::string& out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", finite_or_zero(v));
  out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.4);
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_seek_decode.json";
  constexpr std::size_t kSteps = 12;

  obs::set_enabled(true);
  bench::print_header("ext_seek_decode",
                      "seekable v4 archive: parallel chunked decode sweep");

  const auto dataset = sim::make_dataset(sim::DatasetId::kHeat3d, scale);
  bench::SzCodecs sz;
  const core::CodecPair pair = sz.pair();
  const auto preconditioner = core::make_preconditioner("pca");

  // Encode kSteps drifted copies of the field into a seekable archive.
  const std::filesystem::path archive =
      std::filesystem::temp_directory_path() / "ext_seek_decode.rmps";
  std::filesystem::remove(archive);
  std::filesystem::remove(io::sequence_journal_path(archive));
  io::SerializeOptions options;
  options.with_chunk_index = true;
  std::size_t original_bytes_per_step = 0;
  {
    io::SequenceWriter writer(archive, options);
    for (std::size_t step = 0; step < kSteps; ++step) {
      std::vector<double> drifted(dataset.full.flat().begin(),
                                  dataset.full.flat().end());
      const double factor = 1.0 + 0.01 * static_cast<double>(step);
      for (double& v : drifted) v *= factor;
      original_bytes_per_step = drifted.size() * sizeof(double);
      const sim::Field field = sim::Field::from_data(
          dataset.full.nx(), dataset.full.ny(), dataset.full.nz(),
          std::move(drifted));
      writer.append(preconditioner->encode(field, pair));
    }
    writer.finish();
  }
  const double total_bytes =
      static_cast<double>(original_bytes_per_step * kSteps);

  // Thread sweep: decode all steps through the chunk fetcher, verifying
  // each run reproduces the single-thread fields exactly.
  struct SweepRun {
    std::size_t threads = 0;
    double seconds = 0;
  };
  std::vector<SweepRun> runs;
  std::vector<std::vector<double>> reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    parallel::ThreadPool pool(threads);
    parallel::ScopedPoolOverride override_pool(pool);
    const io::SequenceReader reader(archive);
    core::ChunkFetcher fetcher = core::make_sequence_fetcher(reader);

    const auto start = obs::now();
    const auto chunks = core::fetch_all(fetcher);
    std::vector<std::vector<double>> fields(chunks.size());
    for (std::size_t step = 0; step < chunks.size(); ++step) {
      fields[step] = core::reconstruct(*chunks[step], pair).storage();
    }
    const double seconds = obs::seconds_since(start);

    if (reference.empty()) {
      reference = std::move(fields);
    } else if (fields != reference) {
      std::fprintf(stderr,
                   "ext_seek_decode: %zu-thread decode diverged from the "
                   "single-thread result\n",
                   threads);
      return 1;
    }
    runs.push_back({threads, seconds});
    std::printf("threads %2zu  decode %8.4fs  %8.2f MB/s\n", threads, seconds,
                total_bytes / seconds / 1e6);
  }

  // Random access: one step, counting the bytes the reader touches.
  const std::size_t probe_step = kSteps / 2;
  const io::SequenceReader reader(archive);
  const std::uint64_t bytes_before =
      obs::Registry::global().counter_value("io.sequence.bytes_read");
  const auto seek_start = obs::now();
  const io::Container step_container = reader.read_step(probe_step);
  const sim::Field step_field = core::reconstruct(step_container, pair);
  const double seek_seconds = obs::seconds_since(seek_start);
  const std::uint64_t bytes_read =
      obs::Registry::global().counter_value("io.sequence.bytes_read") -
      bytes_before;
  std::printf("step %zu alone: %8.4fs, %llu archive bytes read "
              "(%.1f%% of the file)\n",
              probe_step, seek_seconds,
              static_cast<unsigned long long>(bytes_read),
              100.0 * static_cast<double>(bytes_read) /
                  static_cast<double>(std::filesystem::file_size(archive)));
  if (step_field.storage() != reference[probe_step]) {
    std::fprintf(stderr,
                 "ext_seek_decode: seek decode diverged from the sweep\n");
    return 1;
  }

  std::string json = "{\n  \"schema\": \"rmp-bench-seek-v1\",\n  \"scale\": ";
  append_number(json, scale);
  json += ",\n  \"steps\": ";
  append_number(json, static_cast<double>(kSteps));
  json += ",\n  \"step_bytes\": ";
  append_number(json, static_cast<double>(original_bytes_per_step));
  json += ",\n  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    json += "    {\"threads\": ";
    append_number(json, static_cast<double>(runs[r].threads));
    json += ", \"seconds\": ";
    append_number(json, runs[r].seconds);
    json += ", \"throughput_bytes_per_second\": ";
    append_number(json, runs[r].seconds > 0 ? total_bytes / runs[r].seconds
                                            : 0.0);
    json += "}";
    json += r + 1 < runs.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"single_step\": {\"step\": ";
  append_number(json, static_cast<double>(probe_step));
  json += ", \"seconds\": ";
  append_number(json, seek_seconds);
  json += ", \"bytes_read\": ";
  append_number(json, static_cast<double>(bytes_read));
  json += "},\n  \"obs\": ";
  json += obs::Registry::global().to_json();
  json += "\n}\n";

  std::FILE* file = std::fopen(out_path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "ext_seek_decode: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::filesystem::remove(archive);
  std::printf("wrote %s (%zu sweep runs)\n", out_path.c_str(), runs.size());

  const auto validation = obs::validate_stats_json(json);
  if (!validation.ok) {
    std::fprintf(stderr, "ext_seek_decode: self-validation failed: %s\n",
                 validation.error.c_str());
    return 1;
  }
  return 0;
}
