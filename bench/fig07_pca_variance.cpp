// Fig. 7: proportion of variance captured by the leading principal
// components, per dataset.  The paper correlates a dominant first
// component with a large preconditioning win.
#include "bench_common.hpp"

#include "core/pca.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Fig. 7", "PCA proportion of variance");

  std::printf("%-14s %8s %8s %8s %8s %8s %10s\n", "dataset", "PC1", "PC2",
              "PC3", "PC4", "PC5", "k(95%)");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    const auto proportions = core::pca_variance_proportions(pair.full);
    std::printf("%-14s", pair.name.c_str());
    for (std::size_t c = 0; c < 5; ++c) {
      if (c < proportions.size()) {
        std::printf(" %8.4f", proportions[c]);
      } else {
        std::printf(" %8s", "-");
      }
    }
    std::printf(" %10zu\n",
                core::components_for_target(proportions, 0.95));
  }
  return 0;
}
