// Table III: complexity and storage comparison of PCA, SVD and Wavelet.
// The analytic rows are printed as stated in the paper; the empirical
// part measures encode time while doubling the matrix size to verify the
// scaling ordering (SVD >= PCA > Wavelet) -- and doubles as the ablation
// for the partitioned-PCA design choice (DESIGN.md §5).
#include "bench_common.hpp"

#include <chrono>
#include <cmath>

#include "sim/field.hpp"

namespace {

using namespace rmp;

sim::Field synthetic_field(std::size_t n) {
  sim::Field f(n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        f.at(i, j, k) =
            std::sin(0.2 * static_cast<double>(i)) *
                std::cos(0.15 * static_cast<double>(j)) +
            0.05 * static_cast<double>(k);
      }
    }
  }
  return f;
}

double time_encode(const core::Preconditioner& preconditioner,
                   const sim::Field& field, const core::CodecPair& codecs) {
  const auto start = std::chrono::steady_clock::now();
  preconditioner.encode(field, codecs, nullptr);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Table III", "complexity and storage comparison");

  std::printf("%-8s %-22s %-22s %s\n", "method", "approach", "complexity",
              "storage");
  std::printf("%-8s %-22s %-22s %s\n", "PCA", "column correlation",
              "O(mn^2 + n^3)", "scores + eigenvectors (+ delta)");
  std::printf("%-8s %-22s %-22s %s\n", "SVD", "column/row correlation",
              "O(m^2n + mn^2 + n^3)", "three refactored matrices (+ delta)");
  std::printf("%-8s %-22s %-22s %s\n", "Wavelet", "Haar wavelet",
              "O(4mn^2 log n)", "sparse matrix (+ delta)");

  std::printf("\n# empirical scaling check (encode seconds)\n");
  std::printf("%-8s", "n^3");
  for (const char* method : {"pca", "svd", "wavelet", "pca-part"}) {
    std::printf(" %10s", method);
  }
  std::printf("\n");

  bench::ZfpCodecs zfp;
  const std::size_t base = std::max<std::size_t>(
      12, static_cast<std::size_t>(24 * scale));
  for (std::size_t n : {base, base * 2}) {
    const sim::Field field = synthetic_field(n);
    std::printf("%-8zu", n);
    for (const char* method : {"pca", "svd", "wavelet", "pca-part"}) {
      const auto preconditioner = core::make_preconditioner(method);
      std::printf(" %10.4f", time_encode(*preconditioner, field, zfp.pair()));
    }
    std::printf("\n");
  }
  return 0;
}
