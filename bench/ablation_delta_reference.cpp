// Ablation: what the delta is computed against.
//
// The paper computes the delta against the *clean* rank-k reconstruction
// and then lossily compresses both parts -- which is why Fig. 10 shows
// preconditioning amplifying RMSE.  Computing the delta against the
// *decoded* reduced representation instead cancels that loss at decode
// time.  This bench quantifies the trade on every dataset.
#include "bench_common.hpp"

#include "core/pca.hpp"
#include "core/svd_precond.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Ablation", "delta vs clean / decoded reduced rep");

  bench::ZfpCodecs zfp;
  std::printf("%-14s %-6s %12s %10s %12s %10s\n", "dataset", "method",
              "rmse(clean)", "ratio", "rmse(dec)", "ratio");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);

    core::PcaPreconditioner pca_clean({0.95, false});
    core::PcaPreconditioner pca_decoded({0.95, true});
    const auto rc = core::run_pipeline(pca_clean, pair.full, zfp.pair());
    const auto rd = core::run_pipeline(pca_decoded, pair.full, zfp.pair());
    std::printf("%-14s %-6s %12.3e %9.2fx %12.3e %9.2fx\n",
                pair.name.c_str(), "pca", rc.rmse,
                rc.stats.compression_ratio, rd.rmse,
                rd.stats.compression_ratio);

    core::SvdPreconditioner svd_clean({0.95, false});
    core::SvdPreconditioner svd_decoded({0.95, true});
    const auto sc = core::run_pipeline(svd_clean, pair.full, zfp.pair());
    const auto sd = core::run_pipeline(svd_decoded, pair.full, zfp.pair());
    std::printf("%-14s %-6s %12.3e %9.2fx %12.3e %9.2fx\n", "", "svd",
                sc.rmse, sc.stats.compression_ratio, sd.rmse,
                sd.stats.compression_ratio);
  }
  return 0;
}
