// ext_obs_baseline -- unified bench baseline over dataset x preconditioner
// x codec, emitted as machine-readable JSON (schema rmp-bench-core-v1)
// with the full observability registry embedded.  CI runs this, validates
// the result with `rmpc stats <file>`, and uploads it as the BENCH_core
// artifact; a checked-in snapshot lives at the repo root.
//
//   ext_obs_baseline [scale] [out.json]
//
// Default scale comes from RMP_BENCH_SCALE or 0.4; default output is
// BENCH_core.json in the working directory.  Each combo runs
// RMP_BENCH_REPS times (default 3) and reports the fastest
// encode/decode pair, so the gated throughput numbers are not hostage
// to one scheduler hiccup; ratio/rmse are identical across reps.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "sim/datasets.hpp"

namespace {

using namespace rmp;

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

void append_number(std::string& out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", finite_or_zero(v));
  out += buffer;
}

struct Run {
  std::string dataset, method, codec;
  core::PipelineResult result;
};

void append_run(std::string& out, const Run& run) {
  out += "    {\"dataset\": \"" + run.dataset + "\", \"method\": \"" +
         run.method + "\", \"codec\": \"" + run.codec + "\", ";
  out += "\"ratio\": ";
  append_number(out, run.result.stats.compression_ratio);
  out += ", \"rmse\": ";
  append_number(out, run.result.rmse);
  out += ", \"max_error\": ";
  append_number(out, run.result.max_error);
  out += ", \"encode_seconds\": ";
  append_number(out, run.result.encode_seconds);
  out += ", \"decode_seconds\": ";
  append_number(out, run.result.decode_seconds);
  out += ", \"original_bytes\": ";
  append_number(out, static_cast<double>(run.result.stats.original_bytes));
  out += ", \"compressed_bytes\": ";
  append_number(out, static_cast<double>(run.result.stats.total_bytes));
  out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.4);
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_core.json";

  const std::vector<sim::DatasetId> datasets = {
      sim::DatasetId::kHeat3d, sim::DatasetId::kSedovPres,
      sim::DatasetId::kYf17Temp};
  const std::vector<std::string> methods = {"identity", "one-base", "pca",
                                            "wavelet"};

  bench::SzCodecs sz;
  bench::ZfpCodecs zfp;
  const std::vector<std::pair<std::string, core::CodecPair>> codecs = {
      {"sz", sz.pair()}, {"zfp", zfp.pair()}};

  bench::print_header("ext_obs_baseline",
                      "dataset x method x codec sweep with obs stats");
  std::vector<Run> runs;
  for (const auto id : datasets) {
    const auto dataset = sim::make_dataset(id, scale);
    for (const auto& method : methods) {
      const auto preconditioner = core::make_preconditioner(method);
      for (const auto& [codec_name, pair] : codecs) {
        Run run;
        run.dataset = dataset.name;
        run.method = method;
        run.codec = codec_name;
        run.result = core::run_pipeline(*preconditioner, dataset.full, pair);
        int reps = 3;
        if (const char* env = std::getenv("RMP_BENCH_REPS")) {
          reps = std::max(1, std::atoi(env));
        }
        for (int rep = 1; rep < reps; ++rep) {
          auto again = core::run_pipeline(*preconditioner, dataset.full, pair);
          run.result.encode_seconds =
              std::min(run.result.encode_seconds, again.encode_seconds);
          run.result.decode_seconds =
              std::min(run.result.decode_seconds, again.decode_seconds);
        }
        std::printf("%-12s %-10s %-4s ratio %8.2f  rmse %10.3e  enc %7.4fs  "
                    "dec %7.4fs\n",
                    run.dataset.c_str(), method.c_str(), codec_name.c_str(),
                    run.result.stats.compression_ratio, run.result.rmse,
                    run.result.encode_seconds, run.result.decode_seconds);
        runs.push_back(std::move(run));
      }
    }
  }

  std::string json = "{\n  \"schema\": \"rmp-bench-core-v1\",\n  \"scale\": ";
  append_number(json, scale);
  json += ",\n  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    append_run(json, runs[r]);
    json += r + 1 < runs.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"obs\": ";
  json += obs::Registry::global().to_json();
  json += "\n}\n";

  std::FILE* file = std::fopen(out_path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "ext_obs_baseline: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(), runs.size());

  const auto validation = obs::validate_stats_json(json);
  if (!validation.ok) {
    std::fprintf(stderr, "ext_obs_baseline: self-validation failed: %s\n",
                 validation.error.c_str());
    return 1;
  }
  return 0;
}
