// Ablation: SZ bound-mode choice for delta compression.
//
// DESIGN.md §5: the library's SZ implements three bound modes.  Strict
// pointwise-relative (log-transform, SZ 2.x style) destroys the
// smoothness of zero-crossing deltas; the SZ 1.4-style block-relative
// mode preserves it, which is why the factory uses it for the paper
// configs.  This bench measures all three on an original field and on a
// one-base delta.
#include "bench_common.hpp"

#include "compress/sz.hpp"
#include "sim/datasets.hpp"
#include "stats/metrics.hpp"

namespace {

using namespace rmp;

void report(const char* what, std::span<const double> data,
            const compress::Dims& dims) {
  struct ModeRow {
    const char* label;
    compress::SzOptions options;
  };
  const ModeRow modes[] = {
      {"abs(1e-4*rng)", {compress::SzMode::kAbsolute, 1.0, 16}},
      {"pw-rel(1e-3)", {compress::SzMode::kPointwiseRelative, 1e-3, 16}},
      {"block-rel(1e-3)", {compress::SzMode::kBlockRelative, 1e-3, 16}},
  };
  double lo = data[0], hi = data[0];
  for (double v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (const auto& mode : modes) {
    compress::SzOptions options = mode.options;
    if (options.mode == compress::SzMode::kAbsolute) {
      options.bound = std::max((hi - lo) * 1e-4, 1e-300);
    }
    compress::SzCompressor codec(options);
    const auto stream = codec.compress(data, dims);
    const auto decoded = codec.decompress(stream);
    std::printf("%-10s %-16s %9.2fx %12.3e\n", what, mode.label,
                compress::compression_ratio(data.size(), stream.size()),
                stats::rmse(data, decoded));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Ablation", "SZ bound modes on original vs delta");

  const auto pair = sim::make_dataset(sim::DatasetId::kHeat3d, scale);
  const auto& field = pair.full;

  // One-base delta: subtract the mid plane from every plane.
  sim::Field delta = field;
  const std::size_t mid = field.nz() / 2;
  for (std::size_t i = 0; i < field.nx(); ++i) {
    for (std::size_t j = 0; j < field.ny(); ++j) {
      const double base = field.at(i, j, mid);
      for (std::size_t k = 0; k < field.nz(); ++k) {
        delta.at(i, j, k) -= base;
      }
    }
  }

  std::printf("%-10s %-16s %10s %12s\n", "data", "mode", "ratio", "rmse");
  const compress::Dims dims{field.nx(), field.ny(), field.nz()};
  report("original", field.flat(), dims);
  report("delta", delta.flat(), dims);
  return 0;
}
