// Table II: Heat3d full model vs projected-2D reduced model -- problem
// setup plus the three byte characteristics.  The paper's claim: the
// scalar characteristics of the two models are nearly the same.
#include "bench_common.hpp"

#include "sim/heat.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Table II", "Heat3d full model vs reduced model");

  sim::HeatConfig config;
  config.n = static_cast<std::size_t>(48 * scale) < 16
                 ? 16
                 : static_cast<std::size_t>(48 * scale);
  config.steps = 600;

  const sim::Field full = sim::heat3d_run(config);
  const sim::Field reduced = sim::heat2d_run(config);

  const double h = 1.0 / static_cast<double>(config.n - 1);
  const double dt3 =
      config.cfl_safety * sim::heat_stable_dt(h, 3, config.kappa);
  const double dt2 =
      config.cfl_safety * sim::heat_stable_dt(h, 2, config.kappa);

  const auto cf = stats::byte_characteristics(full.flat());
  const auto cr = stats::byte_characteristics(reduced.flat());

  std::printf("%-22s %-22s %-22s\n", "", "Full model", "Reduced model");
  std::printf("%-22s %zux%zux%zu %13s %zux%zu\n", "Problem size", config.n,
              config.n, config.n, "", config.n, config.n);
  std::printf("%-22s %-22zu %-22zu\n", "# of steps", config.steps,
              static_cast<std::size_t>(static_cast<double>(config.steps) *
                                       dt3 / dt2));
  std::printf("%-22s %-22.3e %-22.3e\n", "Time step", dt3, dt2);
  std::printf("%-22s %-22.6f %-22.6f\n", "Byte entropy", cf.entropy,
              cr.entropy);
  std::printf("%-22s %-22.6f %-22.6f\n", "Byte mean", cf.mean, cr.mean);
  std::printf("%-22s %-22.6f %-22.6f\n", "Serial correlation", cf.correlation,
              cr.correlation);
  return 0;
}
