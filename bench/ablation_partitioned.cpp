// Ablation: partitioned PCA (paper future work #1) -- partition count vs
// encode time, ratio and error.  More partitions cut the per-block score
// computation and adapt k locally, at the cost of storing more bases.
#include "bench_common.hpp"

#include <chrono>

#include "core/partitioned.hpp"
#include "core/pca.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Ablation", "partitioned PCA partition sweep");

  bench::ZfpCodecs zfp;
  const auto pair = sim::make_dataset(sim::DatasetId::kHeat3d, scale);

  std::printf("%-12s %10s %12s %10s %12s\n", "partitions", "encode(s)",
              "reduced(B)", "ratio", "rmse");

  // Whole-matrix PCA is the partitions = 1 reference point.
  {
    core::PcaPreconditioner pca;
    const auto result = core::run_pipeline(pca, pair.full, zfp.pair());
    std::printf("%-12s %10.4f %12zu %9.2fx %12.3e\n", "pca(whole)",
                result.encode_seconds, result.stats.reduced_bytes,
                result.stats.compression_ratio, result.rmse);
  }
  for (std::size_t partitions : {1u, 2u, 4u, 8u, 16u}) {
    core::PartitionedPcaPreconditioner preconditioner({partitions, 0.95});
    const auto result =
        core::run_pipeline(preconditioner, pair.full, zfp.pair());
    std::printf("%-12zu %10.4f %12zu %9.2fx %12.3e\n", partitions,
                result.encode_seconds, result.stats.reduced_bytes,
                result.stats.compression_ratio, result.rmse);
  }

  // The generic blocked wrapper extends partitioning to the other
  // reduced methods ("implement the proposed reduced methods in
  // partitioned matrix", §VII).
  std::printf("\n%-16s %10s %12s %10s %12s\n", "blocked method",
              "encode(s)", "reduced(B)", "ratio", "rmse");
  for (const char* method : {"blocked-pca", "blocked-svd",
                             "blocked-wavelet", "blocked-tucker"}) {
    const auto preconditioner = core::make_preconditioner(method);
    const auto result =
        core::run_pipeline(*preconditioner, pair.full, zfp.pair());
    std::printf("%-16s %10.4f %12zu %9.2fx %12.3e\n", method,
                result.encode_seconds, result.stats.reduced_bytes,
                result.stats.compression_ratio, result.rmse);
  }
  return 0;
}
