// Table IV: end-to-end compression + I/O time.  Compression throughput
// and ratios are *measured* on this machine's codecs (Heat3d field), then
// projected onto the paper's scenario (64 writers x 16.7 GB) through the
// storage/staging model.
//
// Calibration (documented in DESIGN.md): a single core here is far slower
// than a Titan node, so running the model at Titan's absolute file-system
// bandwidth would make every synchronous pipeline lose to the baseline.
// What Table IV is really about is the *balance* between compression
// throughput and I/O bandwidth; we preserve that balance by scaling the
// modeled bandwidths by the measured-vs-paper ZFP slowdown.  Per-method
// compression times and ratios remain this machine's measurements, so the
// crossovers (ZFP/SZ win, PCA ~ baseline, staging wins big) are
// reproduced, not hard-coded.
//
// Paper shape to match: ZFP/SZ+I/O beat the no-compression baseline;
// PCA's synchronous compression overhead cancels its I/O win (total ~
// baseline); staging collapses the total to the interconnect transfer.
#include "bench_common.hpp"

#include "io/storage_model.hpp"
#include "sim/heat.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Table IV", "compression and I/O time (projected)");

  sim::HeatConfig config;
  config.n = std::max<std::size_t>(24, static_cast<std::size_t>(48 * scale));
  config.steps = 300;
  const sim::Field field = sim::heat3d_run(config);
  const double field_bytes = static_cast<double>(field.size()) * 8.0;

  bench::ZfpCodecs zfp;
  bench::SzCodecs sz;

  struct Measured {
    double seconds_per_byte;
    double ratio;
  };
  auto measure = [&](const char* method, const core::CodecPair& codecs) {
    const auto preconditioner = core::make_preconditioner(method);
    const auto result = core::run_pipeline(*preconditioner, field, codecs);
    return Measured{result.encode_seconds / field_bytes,
                    result.stats.compression_ratio};
  };

  const Measured zfp_direct = measure("identity", zfp.pair());
  const Measured sz_direct = measure("identity", sz.pair());
  const Measured pca_zfp = measure("pca", zfp.pair());
  const Measured pca_sz = measure("pca", sz.pair());

  // Calibrate: scale the modeled bandwidths by how much slower this
  // machine's ZFP is than the paper's (12.09 s for 16.7 GB per writer).
  io::EndToEndScenario scenario;
  const double projected_zfp_seconds =
      zfp_direct.seconds_per_byte * scenario.bytes_per_writer;
  const double slowdown = projected_zfp_seconds / 12.09;
  scenario.storage.filesystem_bandwidth =
      (static_cast<double>(scenario.writers) * scenario.bytes_per_writer /
       52.48) /
      slowdown;
  scenario.storage.interconnect_bandwidth =
      (static_cast<double>(scenario.writers) * scenario.bytes_per_writer /
       13.17) /
      slowdown;
  scenario.storage.write_latency = 0.05 * slowdown;
  std::printf("# calibration: measured ZFP %.1f MB/s per writer; times below"
              " are in Titan-balanced units (x%.1f wall seconds here)\n",
              1.0 / zfp_direct.seconds_per_byte / 1e6, slowdown);

  // Report in paper-equivalent seconds (divide the slowdown back out) so
  // the rows are directly comparable to Table IV.
  auto print_row = [&](const io::EndToEndRow& row, bool has_comp) {
    if (has_comp) {
      std::printf("%-38s %14.2f %10.2f %12.2f\n", row.method.c_str(),
                  row.compression_time / slowdown, row.io_time / slowdown,
                  row.total_time / slowdown);
    } else {
      std::printf("%-38s %14s %10.2f %12.2f\n", row.method.c_str(), "N/A",
                  row.io_time / slowdown, row.total_time / slowdown);
    }
  };

  std::printf("%-38s %14s %10s %12s\n", "Method", "Compression(s)",
              "I/O(s)", "Total(s)");
  print_row(io::make_baseline_row(scenario), false);
  print_row(io::make_row(scenario, "ZFP+I/O",
                         zfp_direct.seconds_per_byte * scenario.bytes_per_writer,
                         zfp_direct.ratio),
            true);
  print_row(io::make_row(scenario, "SZ+I/O",
                         sz_direct.seconds_per_byte * scenario.bytes_per_writer,
                         sz_direct.ratio),
            true);
  print_row(io::make_row(scenario, "PCA(ZFP)+I/O",
                         pca_zfp.seconds_per_byte * scenario.bytes_per_writer,
                         pca_zfp.ratio),
            true);
  print_row(io::make_row(scenario, "PCA(SZ)+I/O",
                         pca_sz.seconds_per_byte * scenario.bytes_per_writer,
                         pca_sz.ratio),
            true);
  print_row(io::make_staging_row(scenario, "Staging+PCA+I/O"), false);
  return 0;
}
