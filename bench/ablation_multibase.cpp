// Ablation: multi-base slab count.
//
// More slabs capture local structure (better delta) but store more
// reference planes -- §IV-B's explanation for why multi-base does not
// dominate one-base.  The sweep makes the trade-off explicit.
#include "bench_common.hpp"

#include "core/projection.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Ablation", "multi-base slab count sweep");

  bench::ZfpCodecs zfp;
  const auto pair = sim::make_dataset(sim::DatasetId::kHeat3d, scale);

  std::printf("%-8s %12s %12s %10s %12s\n", "slabs", "reduced(B)",
              "delta(B)", "ratio", "rmse");
  for (std::size_t slabs : {1u, 2u, 4u, 8u, 16u}) {
    core::MultiBasePreconditioner preconditioner(slabs);
    const auto result =
        core::run_pipeline(preconditioner, pair.full, zfp.pair());
    std::printf("%-8zu %12zu %12zu %9.2fx %12.3e\n", slabs,
                result.stats.reduced_bytes, result.stats.delta_bytes,
                result.stats.compression_ratio, result.rmse);
  }
  return 0;
}
