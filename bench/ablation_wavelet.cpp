// Ablation: wavelet threshold theta and 2D-matrix vs full-3D transform.
//
// The paper fixes theta = 5% of the max coefficient and uses the 2D
// standard decomposition; it notes (§V-B.1) that raising theta shrinks
// the sparse matrix but makes the delta less compressible.  This bench
// sweeps the threshold and compares the 3D-transform extension.
#include "bench_common.hpp"

#include "core/wavelet_precond.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Ablation", "wavelet threshold / transform rank");

  bench::ZfpCodecs zfp;
  const auto pair = sim::make_dataset(sim::DatasetId::kHeat3d, scale);

  std::printf("%-10s %-5s %12s %12s %10s %12s\n", "theta", "rank",
              "reduced(B)", "delta(B)", "ratio", "rmse");
  for (double theta : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    for (bool use_3d : {false, true}) {
      core::WaveletPreconditioner preconditioner({theta, use_3d});
      const auto result =
          core::run_pipeline(preconditioner, pair.full, zfp.pair());
      std::printf("%-10.2f %-5s %12zu %12zu %9.2fx %12.3e\n", theta,
                  use_3d ? "3d" : "2d", result.stats.reduced_bytes,
                  result.stats.delta_bytes, result.stats.compression_ratio,
                  result.rmse);
    }
  }
  return 0;
}
