// Fig. 9: size of the reduced representation produced by PCA, SVD and
// Wavelet on each dataset.
//
// Paper shape to match: Wavelet's reduced representation (the thresholded
// sparse coefficient matrix) is much larger than PCA's and SVD's, which
// is why its end-to-end improvement is marginal.
#include "bench_common.hpp"

#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Fig. 9", "reduced representation size (bytes)");

  bench::ZfpCodecs zfp;
  const char* methods[] = {"pca", "svd", "wavelet"};

  std::printf("%-14s %12s %12s %12s %12s\n", "dataset", "original", "pca",
              "svd", "wavelet");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    std::printf("%-14s %12zu", pair.name.c_str(),
                pair.full.size() * sizeof(double));
    for (const char* method : methods) {
      const auto preconditioner = core::make_preconditioner(method);
      core::EncodeStats stats;
      preconditioner->encode(pair.full, zfp.pair(), &stats);
      std::printf(" %12zu", stats.reduced_bytes);
    }
    std::printf("\n");
  }
  return 0;
}
