// Extension: Tucker (HOSVD) preconditioning vs the paper's PCA/SVD on
// all nine datasets -- the tensor-native direction the related work
// (Austin et al.) points at.  Reports ratio, reduced-representation size
// and RMSE under ZFP.
#include "bench_common.hpp"

#include "core/tucker.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Extension", "Tucker (HOSVD) vs PCA/SVD");

  bench::ZfpCodecs zfp;
  const char* methods[] = {"identity", "pca", "svd", "tucker"};

  std::printf("%-14s %-9s %10s %12s %12s\n", "dataset", "method", "ratio",
              "reduced(B)", "rmse");
  for (sim::DatasetId id : sim::all_datasets()) {
    const auto pair = sim::make_dataset(id, scale);
    for (const char* method : methods) {
      const auto preconditioner = core::make_preconditioner(method);
      const auto result =
          core::run_pipeline(*preconditioner, pair.full, zfp.pair());
      std::printf("%-14s %-9s %9.2fx %12zu %12.3e\n",
                  method == methods[0] ? pair.name.c_str() : "", method,
                  result.stats.compression_ratio, result.stats.reduced_bytes,
                  result.rmse);
    }
  }
  return 0;
}
