// Fig. 12: average compression and decompression wall time of direct ZFP
// vs PCA/SVD/Wavelet preconditioning, measured with google-benchmark on a
// representative mid-sized dataset (the paper averages across all nine;
// one dataset keeps single-core runtime sane and the ordering identical).
//
// Paper shape to match: compression overhead ordering
// SVD > PCA > wavelet > direct, with decompression much cheaper than
// compression for the matrix methods.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "sim/datasets.hpp"

namespace {

using namespace rmp;

const sim::Field& bench_field() {
  static const sim::Field field =
      sim::make_dataset(sim::DatasetId::kHeat3d, 0.5).full;
  return field;
}

void BM_Encode(benchmark::State& state, const std::string& method) {
  bench::ZfpCodecs zfp;
  const auto preconditioner = core::make_preconditioner(method);
  const auto& field = bench_field();
  for (auto _ : state) {
    core::EncodeStats stats;
    auto container = preconditioner->encode(field, zfp.pair(), &stats);
    benchmark::DoNotOptimize(container);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field.size() * 8));
}

void BM_Decode(benchmark::State& state, const std::string& method) {
  bench::ZfpCodecs zfp;
  const auto preconditioner = core::make_preconditioner(method);
  const auto& field = bench_field();
  const auto container = preconditioner->encode(field, zfp.pair(), nullptr);
  for (auto _ : state) {
    auto decoded = preconditioner->decode(container, zfp.pair(), nullptr);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field.size() * 8));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Encode, direct_zfp, "identity");
BENCHMARK_CAPTURE(BM_Encode, pca, "pca");
BENCHMARK_CAPTURE(BM_Encode, svd, "svd");
BENCHMARK_CAPTURE(BM_Encode, wavelet, "wavelet");
BENCHMARK_CAPTURE(BM_Encode, pca_partitioned, "pca-part");
BENCHMARK_CAPTURE(BM_Decode, direct_zfp, "identity");
BENCHMARK_CAPTURE(BM_Decode, pca, "pca");
BENCHMARK_CAPTURE(BM_Decode, svd, "svd");
BENCHMARK_CAPTURE(BM_Decode, wavelet, "wavelet");
BENCHMARK_CAPTURE(BM_Decode, pca_partitioned, "pca-part");

BENCHMARK_MAIN();
