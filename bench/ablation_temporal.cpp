// Ablation: temporal preconditioning (spatiotemporal extension) --
// keyframe interval vs total bytes and worst-case error, compared to
// independent per-snapshot compression.
#include "bench_common.hpp"

#include "core/identity.hpp"
#include "core/temporal.hpp"
#include "sim/datasets.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace rmp;
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Ablation", "temporal keyframe interval sweep");

  bench::ZfpCodecs zfp;
  const auto snapshots = sim::make_snapshots(sim::DatasetId::kHeat3d, 12, scale);
  const std::size_t raw_bytes =
      snapshots.size() * snapshots.front().size() * sizeof(double);

  std::size_t independent = 0;
  core::IdentityPreconditioner identity;
  for (const auto& snapshot : snapshots) {
    core::EncodeStats stats;
    identity.encode(snapshot, zfp.pair(), &stats);
    independent += stats.total_bytes;
  }
  std::printf("%-16s %12s %10s %12s\n", "scheme", "bytes", "ratio",
              "worst rmse");
  std::printf("%-16s %12zu %9.2fx %12s\n", "independent", independent,
              static_cast<double>(raw_bytes) /
                  static_cast<double>(independent),
              "-");

  for (std::size_t interval : {0u, 2u, 4u, 6u}) {
    core::TemporalOptions options;
    options.keyframe_interval = interval;
    const auto sequence =
        core::temporal_encode(snapshots, zfp.pair(), options);
    const auto decoded = core::temporal_decode(sequence, zfp.pair());
    double worst = 0.0;
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
      worst = std::max(worst,
                       stats::rmse(snapshots[s].flat(), decoded[s].flat()));
    }
    std::printf("key-every-%-6zu %12zu %9.2fx %12.3e\n",
                interval == 0 ? snapshots.size() : interval,
                sequence.total_bytes(),
                static_cast<double>(raw_bytes) /
                    static_cast<double>(sequence.total_bytes()),
                worst);
  }
  return 0;
}
