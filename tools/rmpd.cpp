// rmpd -- the fault-tolerant concurrent compression daemon (DESIGN.md
// §11).  Serves encode/decode/verify/stats requests over the
// length-prefixed binary protocol, with bounded-queue admission control,
// end-to-end deadlines and a graceful SIGTERM drain.
//
//   rmpd [--port N] [--bind ADDR] [--queue N] [--workers N]
//        [--max-sessions N] [--output-dir DIR] [--no-parity]
//        [--staging-queue N] [--port-file PATH] [--debug-stall-ms N]
//        [--max-bytes N] [--read-timeout-ms N] [--dedup-window N]
//        [--scrub-interval-ms N] [--no-recover]
//
// With --port 0 (the default) an ephemeral port is chosen; harnesses pass
// --port-file to learn it.  SIGTERM/SIGINT trigger the drain: stop
// accepting, finish every admitted request, publish journaled sequences
// durably, exit 0.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "exit_codes.hpp"
#include "net/server.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: rmpd [--port N] [--bind ADDR] [--queue N] "
               "[--workers N] [--max-sessions N] [--output-dir DIR] "
               "[--no-parity] [--staging-queue N] [--port-file PATH] "
               "[--debug-stall-ms N] [--max-bytes N] [--read-timeout-ms N] "
               "[--dedup-window N] [--scrub-interval-ms N] [--no-recover]\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 1 && (args[0] == "--help" || args[0] == "-h")) {
    usage(stdout);
    return rmp::tools::kExitOk;
  }
  rmp::net::ServerOptions options;
  std::optional<std::filesystem::path> port_file;
  if (const auto error =
          rmp::net::parse_server_flags(args, options, port_file)) {
    std::fprintf(stderr, "rmpd: %s\n", error->c_str());
    usage(stderr);
    return rmp::tools::kExitUsage;
  }
  try {
    return rmp::net::run_daemon(options, port_file);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rmpd: %s\n", e.what());
    return rmp::tools::exit_code_for(e);
  }
}
