// rmpc -- command-line front end for the reduced-model preconditioning
// pipeline.  Operates on raw little-endian float64 arrays, the common
// interchange format for scientific data dumps.
//
//   rmpc compress   <in.f64> <out.rmp> --dims NX[,NY[,NZ]]
//                   [--method identity|raw|one-base|multi-base|duomodel|pca|
//                             svd|wavelet|pca-part|tucker|auto|a>b]
//                   [--codec sz|zfp] [--no-parity]
//                   [--guard] [--verify-bound EPS]
//   rmpc decompress <in.rmp> <out.f64> [--codec sz|zfp] [--best-effort]
//                   [--step K]   (sequence archives; omitting --step decodes
//                                 every step in parallel and concatenates)
//   rmpc info       <in.rmp>
//   rmpc predict    <in.f64> --dims NX[,NY[,NZ]]
//   rmpc stats      <in.f64> --dims NX[,NY[,NZ]]
//   rmpc verify     <in.f64> --dims NX[,NY[,NZ]] [--method NAME]
//                   [--codec sz|zfp]
//   rmpc verify     <in.rmp>
//   rmpc repair     <in.rmp> <out.rmp>
//   rmpc sequence   <in1.f64> [<in2.f64> ...] <out.rmps> --dims NX[,NY[,NZ]]
//                   [--method NAME] [--codec sz|zfp] [--no-parity] [--seekable]
//   rmpc resume     <in1.f64> [<in2.f64> ...] <out.rmps> --dims NX[,NY[,NZ]]
//                   [--method NAME] [--codec sz|zfp] [--no-parity] [--seekable]
//   rmpc bench-gate <baseline.json> <candidate.json> [--threshold PCT]
//   rmpc serve      [--port N] [--bind ADDR] [--queue N] [--workers N]
//                   [--max-sessions N] [--output-dir DIR] [--no-parity]
//                   [--staging-queue N] [--port-file PATH]
//   rmpc client     ping|stats --port N [--host H] [--deadline-ms N]
//   rmpc client     encode <in.f64> [<out.rmp>] --dims NX[,NY[,NZ]] --port N
//                   [--method NAME] [--codec sz|zfp] [--guard]
//                   [--error-bound EPS] [--store NAME | --sequence NAME]
//                   [--deadline-ms N]
//   rmpc client     decode <in.rmp> <out.f64> --port N [--codec sz|zfp]
//                   [--best-effort]
//   rmpc client     decode <out.f64> --store NAME [--step K] --port N
//                   [--codec sz|zfp] [--best-effort]
//   rmpc client     verify <in.rmp> --port N
//
// Exit codes (shared with rmpd, locked down in tests/test_cli.cpp):
//   0 success        1 internal error   2 usage error       3 I/O error
//   4 integrity      5 model failure    6 deadline exceeded
//   7 busy/unavailable                  8 protocol error
//
// `sequence` compresses each input field as one step of a journaled
// multi-step archive (crash-durable: every completed step is fsync'd
// behind a commit marker before the next begins).  `resume` takes the
// same arguments after a crash or fault-aborted run: it validates the
// committed prefix in `<out.rmps>.part`, re-encodes only the missing
// steps, and publishes an archive byte-identical to an uninterrupted run.
// `--seekable` embeds the v4 per-section chunk index in every written
// container, so later readers can address any slab without loading the
// whole archive (DESIGN.md §12); `decompress` on a sequence archive
// decodes either one step (`--step K`, reading only that step's bytes)
// or every step concurrently through the chunk fetcher.  `bench-gate`
// compares two rmp-bench-core-v1 reports and fails (exit 1) when the
// candidate's aggregate encode or decode throughput regressed by more
// than the threshold (default 15%) -- the CI perf gate.
// `--method auto` runs the predictive selector (no trial compression).
// `--guard` routes the compression through the guard layer: pre-flight
// data audit, NaN/Inf masking into a losslessly stored nanmask section,
// post-encode verification, and graceful demotion down to lossless `raw`
// with the reasons recorded in the archive.  `--verify-bound EPS` (implies
// --guard) additionally demotes any model whose pointwise error on finite
// cells exceeds EPS.  `stats` prints the Fig. 1 data characteristics (byte
// entropy / mean / serial correlation) plus a coarse CDF.  `verify` with
// --dims runs the full compress + reconstruct round trip and prints a
// quality report; without --dims it checks an archive's integrity
// (checksums + parity), prints guard provenance when present, and exits
// non-zero when sections are unrecoverable.  `repair` rewrites a
// damaged-but-recoverable archive as a clean v3 file with parity.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "exit_codes.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"

#include "compress/factory.hpp"
#include "core/chunk_fetch.hpp"
#include "core/guard.hpp"
#include "core/model_predict.hpp"
#include "core/pipeline.hpp"
#include "core/quality.hpp"
#include "io/container.hpp"
#include "io/container_error.hpp"
#include "io/sequence_file.hpp"
#include "obs/obs.hpp"
#include "stats/metrics.hpp"

namespace {

using namespace rmp;

[[noreturn]] void usage_and_exit() {
  std::fprintf(stderr,
               "usage:\n"
               "  rmpc compress   <in.f64> <out.rmp> --dims NX[,NY[,NZ]] "
               "[--method NAME|auto] [--codec sz|zfp] [--no-parity] "
               "[--guard] [--verify-bound EPS] [--error-bound EPS]\n"
               "  rmpc decompress <in.rmp> <out.f64> [--codec sz|zfp] "
               "[--best-effort] [--step K]\n"
               "  rmpc info       <in.rmp>\n"
               "  rmpc predict    <in.f64> --dims NX[,NY[,NZ]]\n"
               "  rmpc stats      <in.f64> --dims NX[,NY[,NZ]]\n"
               "  rmpc stats      <report.json>   (schema validation)\n"
               "  rmpc verify     <in.f64> --dims NX[,NY[,NZ]] "
               "[--method NAME] [--codec sz|zfp]\n"
               "  rmpc verify     <in.rmp>\n"
               "  rmpc repair     <in.rmp> <out.rmp>\n"
               "  rmpc sequence   <in1.f64> [<in2.f64> ...] <out.rmps> "
               "--dims NX[,NY[,NZ]] [--method NAME] [--codec sz|zfp] "
               "[--no-parity] [--seekable]\n"
               "  rmpc resume     <in1.f64> [<in2.f64> ...] <out.rmps> "
               "--dims NX[,NY[,NZ]] [--method NAME] [--codec sz|zfp] "
               "[--no-parity] [--seekable]\n"
               "  rmpc bench-gate <baseline.json> <candidate.json> "
               "[--threshold PCT] [--codec NAME] [--min-speedup X]\n"
               "  rmpc serve      [--port N] [--bind ADDR] [--queue N] "
               "[--workers N] [--max-sessions N] [--output-dir DIR] "
               "[--no-parity] [--staging-queue N] [--port-file PATH]\n"
               "  rmpc client     ping|stats|scrub|encode|decode|verify ... "
               "--port N [--host H] [--deadline-ms N]\n"
               "                  [--retries N] [--retry-backoff-ms N] "
               "[--token T]\n"
               "\n"
               "  --stats[=FILE]  dump observability counters/spans as JSON\n"
               "                  (stdout, or FILE when given)\n"
               "  --retries N     retry BUSY / lost-connection failures up "
               "to N times\n"
               "                  (reconnecting; encodes get an idempotency "
               "token)\n"
               "  --token T       explicit nonzero request token for encode\n"
               "\n"
               "exit codes: 0 ok, 1 internal, 2 usage, 3 I/O, 4 integrity,\n"
               "            5 model, 6 deadline, 7 busy/unavailable, "
               "8 protocol,\n"
               "            9 server shutting down\n");
  std::exit(tools::kExitUsage);
}

/// Typed usage error for a malformed flag value: names the flag, echoes
/// the offending value, and exits with the usage status -- malformed
/// numeric input must never surface as an uncaught exception.
[[noreturn]] void flag_error(const std::string& flag, const std::string& value,
                             const char* expected) {
  std::fprintf(stderr, "rmpc: invalid value for %s: \"%s\" (expected %s)\n",
               flag.c_str(), value.c_str(), expected);
  std::exit(tools::kExitUsage);
}

/// Strict non-negative double: the whole string must parse and the result
/// must be finite and >= 0.
double parse_double_flag(const std::string& flag, const std::string& value,
                         const char* expected) {
  if (value.empty()) flag_error(flag, value, expected);
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      !(parsed >= 0.0) || parsed > std::numeric_limits<double>::max()) {
    flag_error(flag, value, expected);
  }
  return parsed;
}

/// Strict positive integer component (no sign, no trailing garbage).
std::size_t parse_size_component(const std::string& flag,
                                 const std::string& whole,
                                 const std::string& component,
                                 const char* expected) {
  if (component.empty() || component[0] == '-' || component[0] == '+') {
    flag_error(flag, whole, expected);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(component.c_str(), &end, 10);
  if (end == component.c_str() || *end != '\0' || errno == ERANGE ||
      parsed == 0) {
    flag_error(flag, whole, expected);
  }
  return static_cast<std::size_t>(parsed);
}

struct ParsedDims {
  std::size_t nx = 0, ny = 1, nz = 1;
};

/// "NX[,NY[,NZ]]" with every component a positive integer; anything else
/// (empty, negative, non-numeric, a fourth component) is a typed usage
/// error naming --dims.
ParsedDims parse_dims(const std::string& value) {
  constexpr const char* kExpected = "NX[,NY[,NZ]] with positive integers";
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = value.find(',', start);
    parts.push_back(value.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (parts.empty() || parts.size() > 3) {
    flag_error("--dims", value, kExpected);
  }
  ParsedDims dims;
  dims.nx = parse_size_component("--dims", value, parts[0], kExpected);
  if (parts.size() > 1) {
    dims.ny = parse_size_component("--dims", value, parts[1], kExpected);
  }
  if (parts.size() > 2) {
    dims.nz = parse_size_component("--dims", value, parts[2], kExpected);
  }
  return dims;
}

std::vector<double> read_doubles(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    std::fprintf(stderr, "rmpc: cannot open %s\n", path.c_str());
    std::exit(tools::kExitIo);
  }
  const auto bytes = static_cast<std::size_t>(file.tellg());
  if (bytes % sizeof(double) != 0) {
    std::fprintf(stderr, "rmpc: %s is not a float64 array\n", path.c_str());
    std::exit(tools::kExitIo);
  }
  std::vector<double> data(bytes / sizeof(double));
  file.seekg(0);
  file.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(bytes));
  return data;
}

void write_doubles(const std::string& path, const std::vector<double>& data) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "rmpc: cannot write %s\n", path.c_str());
    std::exit(tools::kExitIo);
  }
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size() * sizeof(double)));
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    std::fprintf(stderr, "rmpc: cannot open %s\n", path.c_str());
    std::exit(tools::kExitIo);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(file.tellg()));
  file.seekg(0);
  file.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) {
    std::fprintf(stderr, "rmpc: cannot write %s\n", path.c_str());
    std::exit(tools::kExitIo);
  }
}

struct Args {
  std::vector<std::string> positional;
  std::optional<ParsedDims> dims;
  std::string method = "pca";
  std::string codec = "sz";
  bool no_parity = false;
  bool best_effort = false;
  bool seekable = false;  ///< --seekable: embed the v4 chunk index
  std::optional<std::uint64_t> step;  ///< --step K: one sequence step
  double threshold = 15.0;  ///< --threshold PCT for bench-gate
  bool codec_given = false;  ///< --codec was passed explicitly
  /// --min-speedup X for bench-gate: require candidate aggregate
  /// encode+decode throughput >= X times the baseline's.
  std::optional<double> min_speedup;
  bool guard = false;
  std::optional<double> verify_bound;
  bool emit_stats = false;
  std::string stats_path;  ///< empty = stdout
  // Client-mode flags (`rmpc client ...`).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t deadline_ms = 0;
  std::string store_name;     ///< --store NAME: durable file on the server
  std::string sequence_name;  ///< --sequence NAME: journaled sequence step
  std::uint64_t retries = 0;  ///< --retries N: client-side retry budget
  std::uint64_t retry_backoff_ms = 50;  ///< --retry-backoff-ms N
  std::uint64_t request_token = 0;      ///< --token T: idempotency token
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    // Both "--flag value" and "--flag=value" spellings are accepted.
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      }
    }
    auto next = [&]() -> std::string {
      if (inline_value) return *inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rmpc: %s needs a value\n", arg.c_str());
        usage_and_exit();
      }
      return argv[++i];
    };
    auto no_value = [&]() {
      if (inline_value) {
        std::fprintf(stderr, "rmpc: %s does not take a value\n", arg.c_str());
        usage_and_exit();
      }
    };
    if (arg == "--dims") {
      args.dims = parse_dims(next());
    } else if (arg == "--method") {
      args.method = next();
    } else if (arg == "--codec") {
      args.codec = next();
      args.codec_given = true;
    } else if (arg == "--min-speedup") {
      const double factor = parse_double_flag(
          arg, next(), "a positive speedup factor");
      args.min_speedup = factor;
    } else if (arg == "--no-parity") {
      no_value();
      args.no_parity = true;
    } else if (arg == "--best-effort") {
      no_value();
      args.best_effort = true;
    } else if (arg == "--seekable") {
      no_value();
      args.seekable = true;
    } else if (arg == "--step") {
      // Step indices start at 0, unlike the size-shaped flags that share
      // parse_size_component (which rejects zero).
      const std::string value = next();
      if (value.empty() || value[0] == '-' || value[0] == '+') {
        flag_error("--step", value, "a non-negative step index");
      }
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        flag_error("--step", value, "a non-negative step index");
      }
      args.step = parsed;
    } else if (arg == "--threshold") {
      const double pct = parse_double_flag(
          arg, next(), "a non-negative regression percentage");
      args.threshold = pct;
    } else if (arg == "--guard") {
      no_value();
      args.guard = true;
    } else if (arg == "--verify-bound" || arg == "--error-bound") {
      args.verify_bound = parse_double_flag(
          arg, next(), "a non-negative finite error bound");
      args.guard = true;
    } else if (arg == "--stats") {
      args.emit_stats = true;
      if (inline_value) args.stats_path = *inline_value;
    } else if (arg == "--host") {
      args.host = next();
    } else if (arg == "--port") {
      const std::string value = next();
      const std::size_t port = parse_size_component(
          "--port", value, value, "a port number in [1, 65535]");
      if (port > 65535) {
        flag_error("--port", value, "a port number in [1, 65535]");
      }
      args.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--deadline-ms") {
      const std::string value = next();
      args.deadline_ms = parse_size_component(
          "--deadline-ms", value, value, "a positive millisecond budget");
    } else if (arg == "--store") {
      args.store_name = next();
    } else if (arg == "--sequence") {
      args.sequence_name = next();
    } else if (arg == "--retries") {
      // Zero is a legal spelling of "no retries", so parse it directly
      // instead of through parse_size_component (which rejects 0).
      const std::string value = next();
      if (value.empty() || value[0] == '-' || value[0] == '+') {
        flag_error("--retries", value, "a non-negative retry count");
      }
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
          parsed > 1000) {
        flag_error("--retries", value, "a retry count in [0, 1000]");
      }
      args.retries = parsed;
    } else if (arg == "--retry-backoff-ms") {
      const std::string value = next();
      args.retry_backoff_ms = parse_size_component(
          "--retry-backoff-ms", value, value,
          "a positive millisecond backoff base");
    } else if (arg == "--token") {
      const std::string value = next();
      args.request_token = parse_size_component(
          "--token", value, value, "a nonzero request token");
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "rmpc: unknown flag %s\n", arg.c_str());
      usage_and_exit();
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

sim::Field field_from_file(const std::string& path, const ParsedDims& dims) {
  auto data = read_doubles(path);
  if (data.size() != dims.nx * dims.ny * dims.nz) {
    std::fprintf(stderr,
                 "rmpc: %s holds %zu doubles but --dims says %zux%zux%zu\n",
                 path.c_str(), data.size(), dims.nx, dims.ny, dims.nz);
    std::exit(tools::kExitUsage);
  }
  return sim::Field::from_data(dims.nx, dims.ny, dims.nz, std::move(data));
}

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced;
  std::unique_ptr<compress::Compressor> delta;
};

Codecs make_codecs(const std::string& name) {
  if (name == "sz") {
    return {compress::make_sz_original(), compress::make_sz_delta()};
  }
  if (name == "zfp") {
    return {compress::make_zfp_original(), compress::make_zfp_delta()};
  }
  std::fprintf(stderr, "rmpc: unknown codec %s (want sz|zfp)\n", name.c_str());
  std::exit(tools::kExitUsage);
}

int cmd_compress(const Args& args) {
  if (args.positional.size() != 2 || !args.dims) usage_and_exit();
  const sim::Field field = field_from_file(args.positional[0], *args.dims);
  const Codecs codecs = make_codecs(args.codec);
  const core::CodecPair pair{codecs.reduced.get(), codecs.delta.get()};

  std::string method = args.method;
  if (method == "auto") {
    const auto prediction = core::predict_best_model(field);
    method = prediction.method;
    std::printf("auto-selected method: %s (zeros %.2f, affinity %.2f, "
                "pc1 %.2f)\n",
                method.c_str(), prediction.features.zero_fraction,
                prediction.features.mid_plane_affinity,
                prediction.features.pc1_proportion);
  }

  io::SerializeOptions options;
  options.with_parity = !args.no_parity;
  options.with_chunk_index = args.seekable;

  if (args.guard) {
    core::GuardOptions guard_options;
    guard_options.method = method;
    guard_options.error_bound = args.verify_bound;
    const auto result = core::guarded_encode(field, pair, guard_options);
    io::write_container(args.positional[1], result.container, options);
    std::printf("%s: %zu -> %zu bytes (%.2fx) via %s+%s%s (guarded)\n",
                args.positional[1].c_str(), result.stats.original_bytes,
                result.stats.total_bytes, result.stats.compression_ratio,
                result.provenance.actual.c_str(), args.codec.c_str(),
                args.no_parity ? "" : " (+parity)");
    std::fputs(core::format_provenance(result.provenance).c_str(), stdout);
    return 0;
  }

  const auto preconditioner = core::make_preconditioner(method);
  core::EncodeStats stats;
  const auto container = preconditioner->encode(field, pair, &stats);
  io::write_container(args.positional[1], container, options);
  std::printf("%s: %zu -> %zu bytes (%.2fx) via %s+%s%s\n",
              args.positional[1].c_str(), stats.original_bytes,
              stats.total_bytes, stats.compression_ratio, method.c_str(),
              args.codec.c_str(), args.no_parity ? "" : " (+parity)");
  return 0;
}

/// Sequence-archive decompress: `--step K` reads and decodes exactly one
/// step (touching only that step's bytes plus the trailer -- O(step K)
/// I/O); without `--step`, every step is decoded concurrently through
/// the chunk fetcher and the fields are concatenated into the output.
int cmd_decompress_sequence(const Args& args,
                            const io::SequenceReader& reader) {
  const Codecs codecs = make_codecs(args.codec);
  const core::CodecPair pair{codecs.reduced.get(), codecs.delta.get()};
  const std::string& out = args.positional[1];

  if (args.step) {
    if (*args.step >= reader.step_count()) {
      std::fprintf(stderr, "rmpc: %s has %zu step(s); --step %llu is out "
                   "of range\n",
                   args.positional[0].c_str(), reader.step_count(),
                   static_cast<unsigned long long>(*args.step));
      std::exit(tools::kExitUsage);
    }
    const auto step = static_cast<std::size_t>(*args.step);
    if (args.best_effort) {
      const auto bytes = reader.read_step_bytes(step);
      const auto result = core::reconstruct_best_effort(
          std::span<const std::uint8_t>(bytes), pair);
      write_doubles(out, {result.field.flat().begin(),
                          result.field.flat().end()});
      std::printf("%s: step %zu, %zux%zux%zu doubles (%s)\n", out.c_str(),
                  step, result.field.nx(), result.field.ny(),
                  result.field.nz(), result.detail.c_str());
      return 0;
    }
    const io::Container container = reader.read_step(step);
    const sim::Field field = core::reconstruct(container, pair);
    write_doubles(out, {field.flat().begin(), field.flat().end()});
    std::printf("%s: step %zu of %zu, %zux%zux%zu doubles via %s\n",
                out.c_str(), step, reader.step_count(), field.nx(),
                field.ny(), field.nz(), container.method.c_str());
    return 0;
  }

  // Whole-sequence decode: chunk fetcher + thread pool; the decoded
  // fields are concatenated in step order, bit-identical to reading each
  // step serially.
  core::ChunkFetcher fetcher = core::make_sequence_fetcher(reader);
  const auto chunks = core::fetch_all(fetcher);
  std::vector<double> all;
  for (std::size_t step = 0; step < chunks.size(); ++step) {
    const sim::Field field = core::reconstruct(*chunks[step], pair);
    if (step == 0) all.reserve(field.flat().size() * chunks.size());
    all.insert(all.end(), field.flat().begin(), field.flat().end());
  }
  write_doubles(out, all);
  std::printf("%s: %zu step(s), %zu doubles total\n", out.c_str(),
              chunks.size(), all.size());
  return 0;
}

int cmd_decompress(const Args& args) {
  if (args.positional.size() != 2) usage_and_exit();

  // Sequence archives are detected by their trailing index; anything
  // without one (including plain v2/v3/v4 containers) falls through to
  // the single-container path below.
  bool index_corrupt = false;
  {
    std::optional<io::SequenceReader> reader;
    try {
      reader.emplace(args.positional[0],
                     io::SequenceReadOptions{.allow_index_rebuild = false});
    } catch (const io::ContainerError& error) {
      if (error.code() != io::ContainerErrc::kIndexCorrupt) throw;
      index_corrupt = true;
    }
    if (reader) return cmd_decompress_sequence(args, *reader);
  }
  if (index_corrupt) {
    // An unusable trailer is either a plain container (no trailer at
    // all) or a sequence whose trailer is torn/corrupt.  Rebuild the
    // index and look for sequence evidence the rebuild alone cannot
    // fake on a plain container: more than one step, or a step located
    // via its CRC'd commit marker.  A lone magic-scan step is just the
    // container itself -- fall through so plain archives keep their
    // exact error/usage behavior.
    std::optional<io::SequenceReader> rebuilt;
    try {
      rebuilt.emplace(args.positional[0]);
    } catch (const io::ContainerError&) {
      // No recoverable steps either; let the container path produce its
      // typed error (bad-magic, truncated, ...).
    }
    if (rebuilt &&
        (rebuilt->step_count() > 1 || (rebuilt->step_count() == 1 &&
                                       rebuilt->step_info(0).has_crc))) {
      std::fprintf(stderr,
                   "rmpc: %s: trailing index unusable; rebuilt from step "
                   "markers (%zu step(s) recovered)\n",
                   args.positional[0].c_str(), rebuilt->step_count());
      return cmd_decompress_sequence(args, *rebuilt);
    }
  }
  if (args.step) {
    std::fprintf(stderr,
                 "rmpc: --step only applies to sequence archives\n");
    usage_and_exit();
  }
  const Codecs codecs = make_codecs(args.codec);
  const core::CodecPair pair{codecs.reduced.get(), codecs.delta.get()};

  if (args.best_effort) {
    io::ReadReport report;
    const auto container =
        io::read_container_salvage(args.positional[0], &report);
    const auto result = core::reconstruct_best_effort(container, report, pair);
    write_doubles(args.positional[1],
                  {result.field.flat().begin(), result.field.flat().end()});
    std::printf("%s: %zux%zux%zu doubles via %s (%s)\n",
                args.positional[1].c_str(), result.field.nx(),
                result.field.ny(), result.field.nz(),
                container.method.c_str(), result.detail.c_str());
    return 0;
  }

  const auto container = io::read_container(args.positional[0]);
  const sim::Field field = core::reconstruct(container, pair);
  write_doubles(args.positional[1],
                {field.flat().begin(), field.flat().end()});
  std::printf("%s: %zux%zux%zu doubles via %s\n", args.positional[1].c_str(),
              field.nx(), field.ny(), field.nz(),
              container.method.c_str());
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.size() != 1) usage_and_exit();
  const auto container = io::read_container(args.positional[0]);
  std::printf("method: %s\n", container.method.c_str());
  std::printf("shape:  %llu x %llu x %llu\n",
              static_cast<unsigned long long>(container.nx),
              static_cast<unsigned long long>(container.ny),
              static_cast<unsigned long long>(container.nz));
  std::printf("payload: %zu bytes in %zu sections\n",
              container.payload_bytes(), container.sections.size());
  for (const auto& section : container.sections) {
    std::printf("  %-12s %10zu bytes\n", section.name.c_str(),
                section.bytes.size());
  }
  if (const io::Section* mask = container.find(core::kNanMaskSection)) {
    const auto nanmask = core::nanmask_from_bytes(mask->bytes);
    std::printf("nanmask: %zu nonfinite cell(s) stored losslessly\n",
                nanmask.size());
  }
  if (const auto provenance = core::read_provenance(container)) {
    std::fputs(core::format_provenance(*provenance).c_str(), stdout);
  }
  return 0;
}

/// `rmpc stats <report.json>`: schema-validate an observability or bench
/// report (rmp-obs-v1 / rmp-bench-core-v1).  Used by CI to gate
/// BENCH_core.json.
int cmd_stats_validate(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "rmpc: cannot open %s\n", path.c_str());
    return tools::kExitIo;
  }
  std::ostringstream text;
  text << file.rdbuf();
  const auto result = obs::validate_stats_json(text.str());
  if (!result.ok) {
    std::printf("%s: INVALID (%s)\n", path.c_str(), result.error.c_str());
    return tools::kExitIntegrity;
  }
  std::printf("%s: valid %s\n", path.c_str(), result.schema.c_str());
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional.size() != 1) usage_and_exit();
  if (!args.dims) {
    // Without --dims the positional is a JSON report, not a raw field.
    return cmd_stats_validate(args.positional[0]);
  }
  const sim::Field field = field_from_file(args.positional[0], *args.dims);
  const auto c = stats::byte_characteristics(field.flat());
  std::printf("byte entropy:       %.6f\n", c.entropy);
  std::printf("byte mean:          %.6f\n", c.mean);
  std::printf("serial correlation: %.6f\n", c.correlation);
  std::printf("cdf:");
  for (const auto& point : stats::empirical_cdf(field.flat(), 10)) {
    std::printf(" %.4g:%.2f", point.value, point.probability);
  }
  std::printf("\n");
  return 0;
}

const char* section_state_name(io::SectionState state) {
  switch (state) {
    case io::SectionState::kOk:
      return "ok";
    case io::SectionState::kRepaired:
      return "repaired";
    case io::SectionState::kDamaged:
      return "DAMAGED";
  }
  return "?";
}

/// Archive-integrity verify (`rmpc verify <in.rmp>`, no --dims): checks
/// every checksum, attempts parity repair, and reports per-section state.
int cmd_verify_archive(const Args& args) {
  io::ReadReport report;
  io::Container container;
  try {
    container = io::read_container_salvage(args.positional[0], &report);
  } catch (const io::ContainerError& e) {
    std::printf("%s: UNREADABLE (%s)\n", args.positional[0].c_str(), e.what());
    return tools::kExitIntegrity;
  }
  std::printf("%s: container v%u, parity %s\n", args.positional[0].c_str(),
              report.version,
              !report.parity_present ? "absent"
              : report.parity_valid  ? "present"
                                     : "present (invalid)");
  for (const auto& section : report.sections) {
    std::printf("  %-12s %10llu bytes  %s\n", section.name.c_str(),
                static_cast<unsigned long long>(section.bytes),
                section_state_name(section.state));
  }
  if (const auto provenance = core::read_provenance(container)) {
    std::fputs(core::format_provenance(*provenance).c_str(), stdout);
  }
  if (report.complete()) {
    std::printf(report.repaired() ? "verify: OK (parity repair applied)\n"
                                  : "verify: OK\n");
    return 0;
  }
  std::printf("verify: FAILED (%zu unrecoverable section(s))\n",
              report.damaged().size());
  return tools::kExitIntegrity;
}

int cmd_verify(const Args& args) {
  if (args.positional.size() != 1) usage_and_exit();
  if (!args.dims) return cmd_verify_archive(args);
  const sim::Field field = field_from_file(args.positional[0], *args.dims);
  const Codecs codecs = make_codecs(args.codec);
  const core::CodecPair pair{codecs.reduced.get(), codecs.delta.get()};
  const auto preconditioner = core::make_preconditioner(args.method);
  const auto report = core::assess_quality(*preconditioner, field, pair);
  std::fputs(core::format_report(report).c_str(), stdout);
  return 0;
}

/// `rmpc repair <in.rmp> <out.rmp>`: re-write a damaged-but-recoverable
/// archive as a clean v3 container with fresh checksums and parity.
int cmd_repair(const Args& args) {
  if (args.positional.size() != 2) usage_and_exit();
  io::ReadReport report;
  const auto container =
      io::read_container_salvage(args.positional[0], &report);
  if (!report.complete()) {
    std::fprintf(stderr,
                 "rmpc: %s is not recoverable (%zu damaged section(s))\n",
                 args.positional[0].c_str(), report.damaged().size());
    for (const auto& name : report.damaged()) {
      std::fprintf(stderr, "  damaged: %s\n", name.c_str());
    }
    return tools::kExitIntegrity;
  }
  io::SerializeOptions options;
  options.with_parity = !args.no_parity;
  io::write_container(args.positional[1], container, options);
  std::printf("%s: %s -> clean v3 archive%s\n", args.positional[1].c_str(),
              report.repaired() ? "repaired via parity" : "already intact",
              args.no_parity ? "" : " (+parity)");
  return 0;
}

/// `rmpc sequence` (resume_mode=false) / `rmpc resume` (resume_mode=true):
/// one journaled multi-step archive from N raw fields.  Resume picks up a
/// crashed run's journal, validates the committed prefix, and re-encodes
/// only the missing steps; the published archive is byte-identical to an
/// uninterrupted run when invoked with the same inputs and flags.
int cmd_sequence(const Args& args, bool resume_mode) {
  namespace fs = std::filesystem;
  if (args.positional.size() < 2 || !args.dims) usage_and_exit();
  const std::string out = args.positional.back();
  const std::size_t total_steps = args.positional.size() - 1;
  const Codecs codecs = make_codecs(args.codec);
  const core::CodecPair pair{codecs.reduced.get(), codecs.delta.get()};
  io::SerializeOptions options;
  options.with_parity = !args.no_parity;
  options.with_chunk_index = args.seekable;

  std::optional<io::SequenceWriter> writer;
  std::size_t committed = 0;
  const fs::path journal = io::sequence_journal_path(out);
  if (resume_mode && fs::exists(journal)) {
    writer.emplace(io::SequenceWriter::resume(out, options));
    committed = writer->steps_written();
    if (committed > total_steps) {
      std::fprintf(stderr,
                   "rmpc: %s already holds %zu committed step(s) but only "
                   "%zu input(s) were given\n",
                   journal.string().c_str(), committed, total_steps);
      return tools::kExitIntegrity;
    }
    std::printf("resume %s: %zu of %zu step(s) already committed\n",
                out.c_str(), committed, total_steps);
  } else if (resume_mode && fs::exists(out)) {
    // No journal: the previous run either finished (archive is complete)
    // or never started.  Completed archives are left untouched.
    io::SequenceReader reader(out);
    if (reader.step_count() == total_steps) {
      std::printf("%s: already complete (%zu step(s)); nothing to resume\n",
                  out.c_str(), total_steps);
      return 0;
    }
    std::fprintf(stderr,
                 "rmpc: %s is a published archive with %zu step(s), not a "
                 "resumable journal for %zu input(s)\n",
                 out.c_str(), reader.step_count(), total_steps);
    return tools::kExitIntegrity;
  } else {
    writer.emplace(out, options);
    if (resume_mode) {
      std::printf("resume %s: no journal found, starting fresh\n",
                  out.c_str());
    }
  }

  std::string method = args.method;
  if (method == "auto") {
    // Pin the selector's choice from the first field so every step of the
    // sequence (and any later resume) uses the same model.
    const std::size_t probe = committed < total_steps ? committed : 0;
    const auto prediction = core::predict_best_model(
        field_from_file(args.positional[probe], *args.dims));
    method = prediction.method;
    std::printf("auto-selected method: %s\n", method.c_str());
  }
  const auto preconditioner = core::make_preconditioner(method);

  std::size_t appended_bytes = 0;
  for (std::size_t step = committed; step < total_steps; ++step) {
    const sim::Field field = field_from_file(args.positional[step], *args.dims);
    core::EncodeStats stats;
    const auto container = preconditioner->encode(field, pair, &stats);
    writer->append(container);
    appended_bytes += stats.total_bytes;
    std::printf("step %zu/%zu: %s -> %zu bytes\n", step + 1, total_steps,
                args.positional[step].c_str(), stats.total_bytes);
  }
  writer->finish();
  std::printf("%s: %zu step(s) via %s+%s%s (%zu resumed, %zu appended, "
              "%zu payload bytes this run)\n",
              out.c_str(), total_steps, method.c_str(), args.codec.c_str(),
              args.no_parity ? "" : " (+parity)", committed,
              total_steps - committed, appended_bytes);
  return 0;
}

/// One side of the bench-gate comparison: total bytes pushed through
/// encode/decode and the seconds they took, summed over every run in an
/// rmp-bench-core-v1 report.  Gating on the aggregate (not per-run)
/// throughput keeps the CI signal stable -- individual sub-millisecond
/// runs are too noisy for a percentage threshold.
struct BenchAggregate {
  double bytes = 0;
  double encode_seconds = 0;
  double decode_seconds = 0;
  std::size_t runs = 0;

  double encode_throughput() const {
    return encode_seconds > 0 ? bytes / encode_seconds : 0;
  }
  double decode_throughput() const {
    return decode_seconds > 0 ? bytes / decode_seconds : 0;
  }
  /// One number for the whole round trip: bytes over encode+decode wall
  /// time.  This is what --min-speedup gates.
  double combined_throughput() const {
    const double total = encode_seconds + decode_seconds;
    return total > 0 ? bytes / total : 0;
  }
};

BenchAggregate load_bench_report(const std::string& path,
                                 const std::string& codec_filter) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "rmpc: cannot open %s\n", path.c_str());
    std::exit(tools::kExitIo);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  const auto validation = obs::validate_stats_json(text);
  if (!validation.ok || validation.schema != "rmp-bench-core-v1") {
    std::fprintf(stderr, "rmpc: %s is not a valid rmp-bench-core-v1 "
                 "report: %s\n",
                 path.c_str(),
                 validation.ok ? ("schema is " + validation.schema).c_str()
                               : validation.error.c_str());
    std::exit(tools::kExitIntegrity);
  }
  const obs::JsonValue doc = obs::json_parse(text);
  BenchAggregate aggregate;
  const obs::JsonValue* runs = doc.find("runs");
  for (const auto& run : runs->array) {
    if (!codec_filter.empty()) {
      const obs::JsonValue* codec = run.find("codec");
      if (codec == nullptr || codec->string != codec_filter) continue;
    }
    aggregate.bytes += run.find("original_bytes")->number;
    aggregate.encode_seconds += run.find("encode_seconds")->number;
    aggregate.decode_seconds += run.find("decode_seconds")->number;
    ++aggregate.runs;
  }
  if (!codec_filter.empty() && aggregate.runs == 0) {
    std::fprintf(stderr, "rmpc: %s has no runs with codec \"%s\"\n",
                 path.c_str(), codec_filter.c_str());
    std::exit(tools::kExitIntegrity);
  }
  return aggregate;
}

/// `rmpc bench-gate <baseline.json> <candidate.json> [--threshold PCT]
/// [--codec NAME] [--min-speedup X]`: the CI perf gate.  Exit 0 when the
/// candidate's aggregate encode AND decode throughput are within PCT
/// percent of the baseline (default 15); exit 1 naming the regressed
/// direction otherwise.  `--codec` restricts both reports to runs of one
/// codec; `--min-speedup X` additionally requires the candidate's combined
/// encode+decode throughput to be at least X times the baseline's (the
/// SZ-hot-path criterion of DESIGN.md §13).
int cmd_bench_gate(const Args& args) {
  if (args.positional.size() != 2) usage_and_exit();
  const std::string filter = args.codec_given ? args.codec : std::string();
  const BenchAggregate base = load_bench_report(args.positional[0], filter);
  const BenchAggregate cand = load_bench_report(args.positional[1], filter);

  bool failed = false;
  const auto gate = [&](const char* what, double base_tp, double cand_tp) {
    const double drop =
        base_tp > 0 ? (base_tp - cand_tp) / base_tp * 100.0 : 0.0;
    std::printf("%s throughput: baseline %.3f MB/s, candidate %.3f MB/s "
                "(%+.1f%%)\n",
                what, base_tp / 1e6, cand_tp / 1e6, -drop);
    if (drop > args.threshold) {
      std::fprintf(stderr,
                   "rmpc: %s throughput regressed %.1f%% "
                   "(threshold %.1f%%)\n",
                   what, drop, args.threshold);
      failed = true;
    }
  };
  gate("encode", base.encode_throughput(), cand.encode_throughput());
  gate("decode", base.decode_throughput(), cand.decode_throughput());
  if (args.min_speedup) {
    const double base_tp = base.combined_throughput();
    const double cand_tp = cand.combined_throughput();
    const double speedup = base_tp > 0 ? cand_tp / base_tp : 0.0;
    std::printf("combined throughput: baseline %.3f MB/s, candidate "
                "%.3f MB/s (%.2fx, required >= %.2fx)\n",
                base_tp / 1e6, cand_tp / 1e6, speedup, *args.min_speedup);
    if (speedup < *args.min_speedup) {
      std::fprintf(stderr,
                   "rmpc: combined throughput speedup %.2fx is below the "
                   "required %.2fx\n",
                   speedup, *args.min_speedup);
      failed = true;
    }
  }
  if (failed) return tools::kExitInternal;
  std::printf("bench-gate: OK (%zu baseline runs vs %zu candidate runs, "
              "threshold %.1f%%%s)\n",
              base.runs, cand.runs, args.threshold,
              filter.empty() ? "" : (", codec " + filter).c_str());
  return tools::kExitOk;
}

int cmd_predict(const Args& args) {
  if (args.positional.size() != 1 || !args.dims) usage_and_exit();
  const sim::Field field = field_from_file(args.positional[0], *args.dims);
  const auto prediction = core::predict_best_model(field);
  std::printf("predicted method: %s\n", prediction.method.c_str());
  std::printf("  zero fraction:      %.4f\n",
              prediction.features.zero_fraction);
  std::printf("  mid-plane affinity: %.4f\n",
              prediction.features.mid_plane_affinity);
  std::printf("  PC1 proportion:     %.4f\n",
              prediction.features.pc1_proportion);
  return 0;
}

/// --stats[=FILE]: dump the process-wide observability registry as JSON
/// once the command has run (stdout, or FILE when given).
void emit_stats(const Args& args) {
  if (!args.emit_stats) return;
  const std::string json = obs::Registry::global().to_json();
  if (args.stats_path.empty()) {
    std::fputs(json.c_str(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::ofstream file(args.stats_path, std::ios::binary | std::ios::trunc);
  file << json << '\n';
  if (!file) {
    std::fprintf(stderr, "rmpc: cannot write stats to %s\n",
                 args.stats_path.c_str());
    std::exit(tools::kExitIo);
  }
}

// ---------------------------------------------------------------------------
// rmpd front end: `rmpc serve` and `rmpc client`

/// `rmpc serve [server flags]`: run the rmpd daemon in-process (same code
/// path as the rmpd binary), so a single installed tool covers both ends.
int cmd_serve(int argc, char** argv) {
  const std::vector<std::string> raw(argv + 2, argv + argc);
  net::ServerOptions options;
  std::optional<std::filesystem::path> port_file;
  if (const auto error =
          net::parse_server_flags(raw, options, port_file)) {
    std::fprintf(stderr, "rmpc: %s\n", error->c_str());
    usage_and_exit();
  }
  return net::run_daemon(options, port_file);
}

int cmd_client_encode(const Args& args, net::Client& client) {
  if (args.positional.size() < 2 || !args.dims) usage_and_exit();
  if (!args.store_name.empty() && !args.sequence_name.empty()) {
    std::fprintf(stderr, "rmpc: --store and --sequence are exclusive\n");
    usage_and_exit();
  }
  net::EncodeRequest request;
  request.method = args.method;
  request.codec = args.codec;
  request.guard = args.guard;
  request.request_token = args.request_token;
  request.error_bound = args.verify_bound;
  request.nx = args.dims->nx;
  request.ny = args.dims->ny;
  request.nz = args.dims->nz;
  request.data = read_doubles(args.positional[1]);
  if (request.data.size() != args.dims->nx * args.dims->ny * args.dims->nz) {
    std::fprintf(stderr,
                 "rmpc: %s holds %zu doubles but --dims says %zux%zux%zu\n",
                 args.positional[1].c_str(), request.data.size(),
                 args.dims->nx, args.dims->ny, args.dims->nz);
    std::exit(tools::kExitUsage);
  }
  if (!args.store_name.empty()) {
    request.store = net::StoreMode::kFile;
    request.store_name = args.store_name;
  } else if (!args.sequence_name.empty()) {
    request.store = net::StoreMode::kSequence;
    request.store_name = args.sequence_name;
  } else if (args.positional.size() != 3) {
    // Inline mode returns container bytes; an output path is required.
    usage_and_exit();
  }

  const auto response = client.encode(request);
  if (response.stored) {
    std::printf("%s: %llu -> %llu bytes via %s (stored on server)\n",
                response.stored_path.c_str(),
                static_cast<unsigned long long>(response.original_bytes),
                static_cast<unsigned long long>(response.stored_bytes),
                response.method.c_str());
    return tools::kExitOk;
  }
  write_bytes(args.positional[2], response.container);
  std::printf("%s: %llu -> %llu bytes via %s\n", args.positional[2].c_str(),
              static_cast<unsigned long long>(response.original_bytes),
              static_cast<unsigned long long>(response.stored_bytes),
              response.method.c_str());
  return tools::kExitOk;
}

int cmd_client_decode(const Args& args, net::Client& client) {
  net::DecodeRequest request;
  request.codec = args.codec;
  request.best_effort = args.best_effort;
  std::string out;
  if (!args.store_name.empty()) {
    // Server-side store read: the archive stays on the server; only the
    // decoded doubles travel.  `--step K` picks one step of a sequence.
    if (args.positional.size() != 2) usage_and_exit();
    request.store_name = args.store_name;
    request.step = args.step.value_or(0);
    out = args.positional[1];
  } else {
    if (args.positional.size() != 3) usage_and_exit();
    request.container = read_bytes(args.positional[1]);
    out = args.positional[2];
  }
  const auto response = client.decode(request);
  write_doubles(out, response.data);
  std::printf("%s: %llux%llux%llu doubles%s%s\n", out.c_str(),
              static_cast<unsigned long long>(response.nx),
              static_cast<unsigned long long>(response.ny),
              static_cast<unsigned long long>(response.nz),
              response.detail.empty() ? "" : " -- ",
              response.detail.c_str());
  return tools::kExitOk;
}

int cmd_client_verify(const Args& args, net::Client& client) {
  if (args.positional.size() != 2) usage_and_exit();
  net::VerifyRequest request;
  request.container = read_bytes(args.positional[1]);
  const auto response = client.verify(request);
  std::printf("%s: container v%u\n", args.positional[1].c_str(),
              response.version);
  std::fputs(response.detail.c_str(), stdout);
  if (response.complete) {
    std::printf(response.repaired ? "verify: OK (parity repair applied)\n"
                                  : "verify: OK\n");
    return tools::kExitOk;
  }
  std::printf("verify: FAILED\n");
  return tools::kExitIntegrity;
}

int cmd_client_stats(net::Client& client) {
  const auto stats = client.stats();
  std::printf("queue:             %llu / %llu\n",
              static_cast<unsigned long long>(stats.queue_depth),
              static_cast<unsigned long long>(stats.queue_capacity));
  std::printf("accepted:          %llu\n",
              static_cast<unsigned long long>(stats.accepted));
  std::printf("rejected busy:     %llu\n",
              static_cast<unsigned long long>(stats.rejected_busy));
  std::printf("rejected shutdown: %llu\n",
              static_cast<unsigned long long>(stats.rejected_shutdown));
  std::printf("deadline missed:   %llu\n",
              static_cast<unsigned long long>(stats.deadline_missed));
  std::printf("completed:         %llu\n",
              static_cast<unsigned long long>(stats.completed));
  std::printf("failed:            %llu\n",
              static_cast<unsigned long long>(stats.failed));
  std::printf("sessions:          %llu active, %llu total\n",
              static_cast<unsigned long long>(stats.sessions_active),
              static_cast<unsigned long long>(stats.sessions_total));
  std::printf("protocol errors:   %llu\n",
              static_cast<unsigned long long>(stats.protocol_errors));
  std::printf("recovery:          %llu journals resumed, %llu steps, "
              "%llu repaired, %llu quarantined\n",
              static_cast<unsigned long long>(stats.recovery_journals_resumed),
              static_cast<unsigned long long>(stats.recovery_steps_recovered),
              static_cast<unsigned long long>(stats.recovery_files_repaired),
              static_cast<unsigned long long>(
                  stats.recovery_files_quarantined));
  std::printf("scrub:             %llu passes, %llu sections checked, "
              "%llu repaired, %llu quarantined\n",
              static_cast<unsigned long long>(stats.scrub_passes),
              static_cast<unsigned long long>(stats.scrub_sections_checked),
              static_cast<unsigned long long>(stats.scrub_sections_repaired),
              static_cast<unsigned long long>(stats.scrub_quarantined));
  std::printf("dedup window:      %llu entries, %llu hits, %llu evictions\n",
              static_cast<unsigned long long>(stats.dedup_entries),
              static_cast<unsigned long long>(stats.dedup_hits),
              static_cast<unsigned long long>(stats.dedup_evictions));
  if (stats.max_inflight_bytes > 0) {
    std::printf("inflight bytes:    %llu / %llu (%llu rejected)\n",
                static_cast<unsigned long long>(stats.inflight_bytes),
                static_cast<unsigned long long>(stats.max_inflight_bytes),
                static_cast<unsigned long long>(
                    stats.admission_bytes_rejected));
  } else {
    std::printf("inflight bytes:    %llu (unlimited)\n",
                static_cast<unsigned long long>(stats.inflight_bytes));
  }
  std::printf("stalled sessions:  %llu\n",
              static_cast<unsigned long long>(stats.stalled_sessions));
  return tools::kExitOk;
}

/// `rmpc client scrub`: run one on-demand integrity pass over the
/// server's store and report what it checked, repaired, quarantined.
int cmd_client_scrub(net::Client& client) {
  const auto report = client.scrub();
  std::printf("scrub: %llu files, %llu sections checked\n",
              static_cast<unsigned long long>(report.files_checked),
              static_cast<unsigned long long>(report.sections_checked));
  std::printf("scrub: %llu sections repaired, %llu files rewritten, "
              "%llu quarantined\n",
              static_cast<unsigned long long>(report.sections_repaired),
              static_cast<unsigned long long>(report.files_repaired),
              static_cast<unsigned long long>(report.files_quarantined));
  if (!report.detail.empty()) std::fputs(report.detail.c_str(), stdout);
  // Quarantine means data needed hands-on attention; surface that in the
  // exit code so cron-driven scrubs page someone.
  return report.files_quarantined > 0 ? tools::kExitIntegrity
                                      : tools::kExitOk;
}

/// `rmpc client <action> ...`: talk to a running rmpd.  Every typed
/// failure (BUSY, deadline, integrity, ...) surfaces as the documented
/// exit code via tools::exit_code_for.
int cmd_client(const Args& args) {
  if (args.positional.empty()) usage_and_exit();
  const std::string& action = args.positional[0];
  if (args.port == 0) {
    std::fprintf(stderr, "rmpc: client needs --port\n");
    usage_and_exit();
  }
  net::ClientOptions options;
  options.host = args.host;
  options.port = args.port;
  options.deadline = std::chrono::milliseconds(args.deadline_ms);
  options.max_retries = static_cast<std::size_t>(args.retries);
  options.retry_backoff = std::chrono::milliseconds(args.retry_backoff_ms);
  net::Client client(options);
  if (action == "ping") {
    client.ping();
    std::printf("pong\n");
    return tools::kExitOk;
  }
  if (action == "stats") return cmd_client_stats(client);
  if (action == "scrub") return cmd_client_scrub(client);
  if (action == "encode") return cmd_client_encode(args, client);
  if (action == "decode") return cmd_client_decode(args, client);
  if (action == "verify") return cmd_client_verify(args, client);
  usage_and_exit();
}

int run_command(const std::string& command, const Args& args) {
  if (command == "compress") return cmd_compress(args);
  if (command == "decompress") return cmd_decompress(args);
  if (command == "info") return cmd_info(args);
  if (command == "predict") return cmd_predict(args);
  if (command == "stats") return cmd_stats(args);
  if (command == "verify") return cmd_verify(args);
  if (command == "repair") return cmd_repair(args);
  if (command == "sequence") return cmd_sequence(args, /*resume_mode=*/false);
  if (command == "resume") return cmd_sequence(args, /*resume_mode=*/true);
  if (command == "bench-gate") return cmd_bench_gate(args);
  if (command == "client") return cmd_client(args);
  usage_and_exit();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_and_exit();
  const std::string command = argv[1];
  try {
    // serve has its own flag grammar (shared with the rmpd binary).
    if (command == "serve") return cmd_serve(argc, argv);
    const Args args = parse_args(argc, argv);
    const int status = run_command(command, args);
    emit_stats(args);
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rmpc: %s\n", e.what());
    return tools::exit_code_for(e);
  }
}
