// rmpc -- command-line front end for the reduced-model preconditioning
// pipeline.  Operates on raw little-endian float64 arrays, the common
// interchange format for scientific data dumps.
//
//   rmpc compress   <in.f64> <out.rmp> --dims NX[,NY[,NZ]]
//                   [--method identity|raw|one-base|multi-base|duomodel|pca|
//                             svd|wavelet|pca-part|tucker|auto|a>b]
//                   [--codec sz|zfp] [--no-parity]
//                   [--guard] [--verify-bound EPS]
//   rmpc decompress <in.rmp> <out.f64> [--codec sz|zfp] [--best-effort]
//   rmpc info       <in.rmp>
//   rmpc predict    <in.f64> --dims NX[,NY[,NZ]]
//   rmpc stats      <in.f64> --dims NX[,NY[,NZ]]
//   rmpc verify     <in.f64> --dims NX[,NY[,NZ]] [--method NAME]
//                   [--codec sz|zfp]
//   rmpc verify     <in.rmp>
//   rmpc repair     <in.rmp> <out.rmp>
//
// `--method auto` runs the predictive selector (no trial compression).
// `--guard` routes the compression through the guard layer: pre-flight
// data audit, NaN/Inf masking into a losslessly stored nanmask section,
// post-encode verification, and graceful demotion down to lossless `raw`
// with the reasons recorded in the archive.  `--verify-bound EPS` (implies
// --guard) additionally demotes any model whose pointwise error on finite
// cells exceeds EPS.  `stats` prints the Fig. 1 data characteristics (byte
// entropy / mean / serial correlation) plus a coarse CDF.  `verify` with
// --dims runs the full compress + reconstruct round trip and prints a
// quality report; without --dims it checks an archive's integrity
// (checksums + parity), prints guard provenance when present, and exits
// non-zero when sections are unrecoverable.  `repair` rewrites a
// damaged-but-recoverable archive as a clean v3 file with parity.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "compress/factory.hpp"
#include "core/guard.hpp"
#include "core/model_predict.hpp"
#include "core/pipeline.hpp"
#include "core/quality.hpp"
#include "io/container.hpp"
#include "stats/metrics.hpp"

namespace {

using namespace rmp;

[[noreturn]] void usage_and_exit() {
  std::fprintf(stderr,
               "usage:\n"
               "  rmpc compress   <in.f64> <out.rmp> --dims NX[,NY[,NZ]] "
               "[--method NAME|auto] [--codec sz|zfp] [--no-parity] "
               "[--guard] [--verify-bound EPS]\n"
               "  rmpc decompress <in.rmp> <out.f64> [--codec sz|zfp] "
               "[--best-effort]\n"
               "  rmpc info       <in.rmp>\n"
               "  rmpc predict    <in.f64> --dims NX[,NY[,NZ]]\n"
               "  rmpc stats      <in.f64> --dims NX[,NY[,NZ]]\n"
               "  rmpc verify     <in.f64> --dims NX[,NY[,NZ]] "
               "[--method NAME] [--codec sz|zfp]\n"
               "  rmpc verify     <in.rmp>\n"
               "  rmpc repair     <in.rmp> <out.rmp>\n");
  std::exit(2);
}

std::vector<double> read_doubles(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    std::fprintf(stderr, "rmpc: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  const auto bytes = static_cast<std::size_t>(file.tellg());
  if (bytes % sizeof(double) != 0) {
    std::fprintf(stderr, "rmpc: %s is not a float64 array\n", path.c_str());
    std::exit(1);
  }
  std::vector<double> data(bytes / sizeof(double));
  file.seekg(0);
  file.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(bytes));
  return data;
}

void write_doubles(const std::string& path, const std::vector<double>& data) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "rmpc: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size() * sizeof(double)));
}

struct Args {
  std::vector<std::string> positional;
  std::optional<std::string> dims;
  std::string method = "pca";
  std::string codec = "sz";
  bool no_parity = false;
  bool best_effort = false;
  bool guard = false;
  std::optional<double> verify_bound;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    if (arg == "--dims") {
      args.dims = next();
    } else if (arg == "--method") {
      args.method = next();
    } else if (arg == "--codec") {
      args.codec = next();
    } else if (arg == "--no-parity") {
      args.no_parity = true;
    } else if (arg == "--best-effort") {
      args.best_effort = true;
    } else if (arg == "--guard") {
      args.guard = true;
    } else if (arg == "--verify-bound") {
      char* end = nullptr;
      const std::string value = next();
      const double bound = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || !(bound >= 0.0)) {
        std::fprintf(stderr, "rmpc: bad --verify-bound %s\n", value.c_str());
        usage_and_exit();
      }
      args.verify_bound = bound;
      args.guard = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "rmpc: unknown flag %s\n", arg.c_str());
      usage_and_exit();
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

sim::Field field_from_file(const std::string& path, const std::string& dims) {
  std::size_t nx = 0, ny = 1, nz = 1;
  if (std::sscanf(dims.c_str(), "%zu,%zu,%zu", &nx, &ny, &nz) < 1) {
    std::fprintf(stderr, "rmpc: bad --dims %s\n", dims.c_str());
    std::exit(1);
  }
  auto data = read_doubles(path);
  if (data.size() != nx * ny * nz) {
    std::fprintf(stderr,
                 "rmpc: %s holds %zu doubles but --dims says %zux%zux%zu\n",
                 path.c_str(), data.size(), nx, ny, nz);
    std::exit(1);
  }
  return sim::Field::from_data(nx, ny, nz, std::move(data));
}

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced;
  std::unique_ptr<compress::Compressor> delta;
};

Codecs make_codecs(const std::string& name) {
  if (name == "sz") {
    return {compress::make_sz_original(), compress::make_sz_delta()};
  }
  if (name == "zfp") {
    return {compress::make_zfp_original(), compress::make_zfp_delta()};
  }
  std::fprintf(stderr, "rmpc: unknown codec %s (want sz|zfp)\n", name.c_str());
  std::exit(1);
}

int cmd_compress(const Args& args) {
  if (args.positional.size() != 2 || !args.dims) usage_and_exit();
  const sim::Field field = field_from_file(args.positional[0], *args.dims);
  const Codecs codecs = make_codecs(args.codec);
  const core::CodecPair pair{codecs.reduced.get(), codecs.delta.get()};

  std::string method = args.method;
  if (method == "auto") {
    const auto prediction = core::predict_best_model(field);
    method = prediction.method;
    std::printf("auto-selected method: %s (zeros %.2f, affinity %.2f, "
                "pc1 %.2f)\n",
                method.c_str(), prediction.features.zero_fraction,
                prediction.features.mid_plane_affinity,
                prediction.features.pc1_proportion);
  }

  io::SerializeOptions options;
  options.with_parity = !args.no_parity;

  if (args.guard) {
    core::GuardOptions guard_options;
    guard_options.method = method;
    guard_options.error_bound = args.verify_bound;
    const auto result = core::guarded_encode(field, pair, guard_options);
    io::write_container(args.positional[1], result.container, options);
    std::printf("%s: %zu -> %zu bytes (%.2fx) via %s+%s%s (guarded)\n",
                args.positional[1].c_str(), result.stats.original_bytes,
                result.stats.total_bytes, result.stats.compression_ratio,
                result.provenance.actual.c_str(), args.codec.c_str(),
                args.no_parity ? "" : " (+parity)");
    std::fputs(core::format_provenance(result.provenance).c_str(), stdout);
    return 0;
  }

  const auto preconditioner = core::make_preconditioner(method);
  core::EncodeStats stats;
  const auto container = preconditioner->encode(field, pair, &stats);
  io::write_container(args.positional[1], container, options);
  std::printf("%s: %zu -> %zu bytes (%.2fx) via %s+%s%s\n",
              args.positional[1].c_str(), stats.original_bytes,
              stats.total_bytes, stats.compression_ratio, method.c_str(),
              args.codec.c_str(), args.no_parity ? "" : " (+parity)");
  return 0;
}

int cmd_decompress(const Args& args) {
  if (args.positional.size() != 2) usage_and_exit();
  const Codecs codecs = make_codecs(args.codec);
  const core::CodecPair pair{codecs.reduced.get(), codecs.delta.get()};

  if (args.best_effort) {
    io::ReadReport report;
    const auto container =
        io::read_container_salvage(args.positional[0], &report);
    const auto result = core::reconstruct_best_effort(container, report, pair);
    write_doubles(args.positional[1],
                  {result.field.flat().begin(), result.field.flat().end()});
    std::printf("%s: %zux%zux%zu doubles via %s (%s)\n",
                args.positional[1].c_str(), result.field.nx(),
                result.field.ny(), result.field.nz(),
                container.method.c_str(), result.detail.c_str());
    return 0;
  }

  const auto container = io::read_container(args.positional[0]);
  const sim::Field field = core::reconstruct(container, pair);
  write_doubles(args.positional[1],
                {field.flat().begin(), field.flat().end()});
  std::printf("%s: %zux%zux%zu doubles via %s\n", args.positional[1].c_str(),
              field.nx(), field.ny(), field.nz(),
              container.method.c_str());
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.size() != 1) usage_and_exit();
  const auto container = io::read_container(args.positional[0]);
  std::printf("method: %s\n", container.method.c_str());
  std::printf("shape:  %llu x %llu x %llu\n",
              static_cast<unsigned long long>(container.nx),
              static_cast<unsigned long long>(container.ny),
              static_cast<unsigned long long>(container.nz));
  std::printf("payload: %zu bytes in %zu sections\n",
              container.payload_bytes(), container.sections.size());
  for (const auto& section : container.sections) {
    std::printf("  %-12s %10zu bytes\n", section.name.c_str(),
                section.bytes.size());
  }
  if (const io::Section* mask = container.find(core::kNanMaskSection)) {
    const auto nanmask = core::nanmask_from_bytes(mask->bytes);
    std::printf("nanmask: %zu nonfinite cell(s) stored losslessly\n",
                nanmask.size());
  }
  if (const auto provenance = core::read_provenance(container)) {
    std::fputs(core::format_provenance(*provenance).c_str(), stdout);
  }
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional.size() != 1 || !args.dims) usage_and_exit();
  const sim::Field field = field_from_file(args.positional[0], *args.dims);
  const auto c = stats::byte_characteristics(field.flat());
  std::printf("byte entropy:       %.6f\n", c.entropy);
  std::printf("byte mean:          %.6f\n", c.mean);
  std::printf("serial correlation: %.6f\n", c.correlation);
  std::printf("cdf:");
  for (const auto& point : stats::empirical_cdf(field.flat(), 10)) {
    std::printf(" %.4g:%.2f", point.value, point.probability);
  }
  std::printf("\n");
  return 0;
}

const char* section_state_name(io::SectionState state) {
  switch (state) {
    case io::SectionState::kOk:
      return "ok";
    case io::SectionState::kRepaired:
      return "repaired";
    case io::SectionState::kDamaged:
      return "DAMAGED";
  }
  return "?";
}

/// Archive-integrity verify (`rmpc verify <in.rmp>`, no --dims): checks
/// every checksum, attempts parity repair, and reports per-section state.
int cmd_verify_archive(const Args& args) {
  io::ReadReport report;
  io::Container container;
  try {
    container = io::read_container_salvage(args.positional[0], &report);
  } catch (const io::ContainerError& e) {
    std::printf("%s: UNREADABLE (%s)\n", args.positional[0].c_str(), e.what());
    return 1;
  }
  std::printf("%s: container v%u, parity %s\n", args.positional[0].c_str(),
              report.version,
              !report.parity_present ? "absent"
              : report.parity_valid  ? "present"
                                     : "present (invalid)");
  for (const auto& section : report.sections) {
    std::printf("  %-12s %10llu bytes  %s\n", section.name.c_str(),
                static_cast<unsigned long long>(section.bytes),
                section_state_name(section.state));
  }
  if (const auto provenance = core::read_provenance(container)) {
    std::fputs(core::format_provenance(*provenance).c_str(), stdout);
  }
  if (report.complete()) {
    std::printf(report.repaired() ? "verify: OK (parity repair applied)\n"
                                  : "verify: OK\n");
    return 0;
  }
  std::printf("verify: FAILED (%zu unrecoverable section(s))\n",
              report.damaged().size());
  return 1;
}

int cmd_verify(const Args& args) {
  if (args.positional.size() != 1) usage_and_exit();
  if (!args.dims) return cmd_verify_archive(args);
  const sim::Field field = field_from_file(args.positional[0], *args.dims);
  const Codecs codecs = make_codecs(args.codec);
  const core::CodecPair pair{codecs.reduced.get(), codecs.delta.get()};
  const auto preconditioner = core::make_preconditioner(args.method);
  const auto report = core::assess_quality(*preconditioner, field, pair);
  std::fputs(core::format_report(report).c_str(), stdout);
  return 0;
}

/// `rmpc repair <in.rmp> <out.rmp>`: re-write a damaged-but-recoverable
/// archive as a clean v3 container with fresh checksums and parity.
int cmd_repair(const Args& args) {
  if (args.positional.size() != 2) usage_and_exit();
  io::ReadReport report;
  const auto container =
      io::read_container_salvage(args.positional[0], &report);
  if (!report.complete()) {
    std::fprintf(stderr,
                 "rmpc: %s is not recoverable (%zu damaged section(s))\n",
                 args.positional[0].c_str(), report.damaged().size());
    for (const auto& name : report.damaged()) {
      std::fprintf(stderr, "  damaged: %s\n", name.c_str());
    }
    return 1;
  }
  io::SerializeOptions options;
  options.with_parity = !args.no_parity;
  io::write_container(args.positional[1], container, options);
  std::printf("%s: %s -> clean v3 archive%s\n", args.positional[1].c_str(),
              report.repaired() ? "repaired via parity" : "already intact",
              args.no_parity ? "" : " (+parity)");
  return 0;
}

int cmd_predict(const Args& args) {
  if (args.positional.size() != 1 || !args.dims) usage_and_exit();
  const sim::Field field = field_from_file(args.positional[0], *args.dims);
  const auto prediction = core::predict_best_model(field);
  std::printf("predicted method: %s\n", prediction.method.c_str());
  std::printf("  zero fraction:      %.4f\n",
              prediction.features.zero_fraction);
  std::printf("  mid-plane affinity: %.4f\n",
              prediction.features.mid_plane_affinity);
  std::printf("  PC1 proportion:     %.4f\n",
              prediction.features.pc1_proportion);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_and_exit();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv);
  try {
    if (command == "compress") return cmd_compress(args);
    if (command == "decompress") return cmd_decompress(args);
    if (command == "info") return cmd_info(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "repair") return cmd_repair(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rmpc: %s\n", e.what());
    return 1;
  }
  usage_and_exit();
}
