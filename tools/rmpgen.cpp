// rmpgen -- generate any of the paper's nine datasets (Table I) as raw
// little-endian float64 arrays, for use with rmpc or external tools.
//
//   rmpgen list
//   rmpgen <dataset> <out.f64> [--scale S] [--reduced]
//
// Prints the generated shape so the `--dims` argument for rmpc is known:
//   $ rmpgen Heat3d /tmp/heat.f64 --scale 0.5
//   Heat3d full model: 24x24x24 -> /tmp/heat.f64 (110592 bytes)
//   $ rmpc compress /tmp/heat.f64 /tmp/heat.rmp --dims 24,24,24
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "sim/datasets.hpp"

namespace {

using namespace rmp;

[[noreturn]] void usage_and_exit() {
  std::fprintf(stderr,
               "usage:\n"
               "  rmpgen list\n"
               "  rmpgen <dataset> <out.f64> [--scale S] [--reduced]\n");
  std::exit(2);
}

std::optional<sim::DatasetId> dataset_by_name(const std::string& name) {
  for (sim::DatasetId id : sim::all_datasets()) {
    if (sim::dataset_name(id) == name) return id;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_and_exit();
  const std::string command = argv[1];

  if (command == "list") {
    std::printf("%-14s (use with: rmpgen <name> <out.f64>)\n", "dataset");
    for (sim::DatasetId id : sim::all_datasets()) {
      std::printf("%s\n", sim::dataset_name(id).c_str());
    }
    return 0;
  }

  const auto id = dataset_by_name(command);
  if (!id || argc < 3) usage_and_exit();

  double scale = 0.5;
  bool reduced = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--reduced") == 0) {
      reduced = true;
    } else {
      usage_and_exit();
    }
  }
  if (scale <= 0.0) {
    std::fprintf(stderr, "rmpgen: scale must be positive\n");
    return 1;
  }

  try {
    const auto pair = sim::make_dataset(*id, scale);
    const sim::Field& field = reduced ? pair.reduced : pair.full;

    std::ofstream file(argv[2], std::ios::binary | std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "rmpgen: cannot write %s\n", argv[2]);
      return 1;
    }
    file.write(reinterpret_cast<const char*>(field.flat().data()),
               static_cast<std::streamsize>(field.size() * sizeof(double)));
    if (!file) {
      std::fprintf(stderr, "rmpgen: write failed\n");
      return 1;
    }
    std::printf("%s %s model: %zux%zux%zu -> %s (%zu bytes)\n",
                pair.name.c_str(), reduced ? "reduced" : "full", field.nx(),
                field.ny(), field.nz(), argv[2],
                field.size() * sizeof(double));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rmpgen: %s\n", e.what());
    return 1;
  }
  return 0;
}
