// Process exit codes shared by the rmpc and rmpd front ends, mapping the
// typed error taxonomies (io::ContainerError, core::PreconditionError,
// net::NetError / RemoteError) onto distinct, documented codes so shell
// scripts and CI can dispatch on *what* failed without parsing stderr.
// The table is documented in README.md ("Exit codes") and locked down by
// tests/test_cli.cpp.
#pragma once

#include <exception>
#include <stdexcept>

#include "core/precond_error.hpp"
#include "io/container_error.hpp"
#include "net/client.hpp"
#include "net/net_error.hpp"

namespace rmp::tools {

inline constexpr int kExitOk = 0;
/// Unexpected internal failure (uncategorized exception).
inline constexpr int kExitInternal = 1;
/// Usage error: bad flags, malformed values, missing arguments.
inline constexpr int kExitUsage = 2;
/// I/O failure: unreadable input, failed write, disk error.
inline constexpr int kExitIo = 3;
/// Integrity failure: damaged or unrecoverable archive bytes.
inline constexpr int kExitIntegrity = 4;
/// Model failure: preconditioner could not run (eigen/SVD breakdown...).
inline constexpr int kExitModel = 5;
/// The request's wall-clock deadline ran out.
inline constexpr int kExitDeadline = 6;
/// Server busy or unreachable -- retry soon (honor any retry-after hint).
inline constexpr int kExitUnavailable = 7;
/// Wire-protocol violation (bad frames, version mismatch, torn stream).
inline constexpr int kExitProtocol = 8;
/// Server is draining for shutdown: not coming back on this incarnation,
/// so "wait for the restart" is the right script reaction, distinct
/// from the transient BUSY backpressure of kExitUnavailable.
inline constexpr int kExitShuttingDown = 9;

inline int exit_code_for_status(net::Status status) noexcept {
  switch (status) {
    case net::Status::kOk: return kExitOk;
    case net::Status::kBusy: return kExitUnavailable;
    case net::Status::kShuttingDown: return kExitShuttingDown;
    case net::Status::kDeadlineExceeded: return kExitDeadline;
    case net::Status::kBadRequest: return kExitUsage;
    case net::Status::kIntegrityError: return kExitIntegrity;
    case net::Status::kPreconditionError: return kExitModel;
    case net::Status::kIoError: return kExitIo;
    case net::Status::kInternalError: return kExitInternal;
  }
  return kExitInternal;
}

/// The one mapping from a caught exception to the table above.
inline int exit_code_for(const std::exception& error) noexcept {
  if (const auto* remote = dynamic_cast<const net::RemoteError*>(&error))
    return exit_code_for_status(remote->status());
  if (const auto* net_error = dynamic_cast<const net::NetError*>(&error)) {
    switch (net_error->code()) {
      case net::NetErrc::kBusy: return kExitUnavailable;
      case net::NetErrc::kShuttingDown: return kExitShuttingDown;
      case net::NetErrc::kDeadlineExceeded: return kExitDeadline;
      case net::NetErrc::kIoError: return kExitIo;
      default: return kExitProtocol;
    }
  }
  if (const auto* container =
          dynamic_cast<const io::ContainerError*>(&error)) {
    switch (container->code()) {
      case io::ContainerErrc::kIoError: return kExitIo;
      case io::ContainerErrc::kDeadlineExceeded: return kExitDeadline;
      default: return kExitIntegrity;
    }
  }
  if (dynamic_cast<const core::PreconditionError*>(&error) != nullptr)
    return kExitModel;
  if (dynamic_cast<const std::invalid_argument*>(&error) != nullptr)
    return kExitUsage;
  return kExitInternal;
}

}  // namespace rmp::tools
