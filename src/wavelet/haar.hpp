// Orthonormal Haar discrete wavelet transform (paper §V-A.3).
//
// The paper's construction is the "standard decomposition": every row is
// fully transformed (recursively: pairwise sums cascade, differences
// stay), then every column of the result.  We use the orthonormal
// normalization (s,d) = ((a+b)/sqrt2, (a-b)/sqrt2) so that thresholding
// small coefficients has a controlled energy impact.
//
// Arbitrary lengths are supported: at each level an odd trailing element
// is carried into the next level's sum region untouched, which keeps the
// transform perfectly invertible for any n.
#pragma once

#include <cstddef>
#include <span>

#include "la/matrix.hpp"

namespace rmp::wavelet {

/// Number of cascade levels a length-n signal admits (floor(log2(n))).
std::size_t max_levels(std::size_t n);

/// In-place forward/inverse 1D transform.  levels == 0 means "as many as
/// possible".  Throws std::invalid_argument if levels exceeds max_levels.
void haar_forward_1d(std::span<double> data, std::size_t levels = 0);
void haar_inverse_1d(std::span<double> data, std::size_t levels = 0);

/// Standard decomposition of a matrix: full 1D transform of each row,
/// then of each column (and the reverse for the inverse).
void haar_forward_2d(rmp::la::Matrix& m, std::size_t row_levels = 0,
                     std::size_t col_levels = 0);
void haar_inverse_2d(rmp::la::Matrix& m, std::size_t row_levels = 0,
                     std::size_t col_levels = 0);

/// Standard decomposition of a 3D array (shape nx x ny x nz, z fastest):
/// full 1D transform along z, then y, then x (inverse in reverse order).
/// Data is modified in place.
void haar_forward_3d(std::span<double> data, std::size_t nx, std::size_t ny,
                     std::size_t nz);
void haar_inverse_3d(std::span<double> data, std::size_t nx, std::size_t ny,
                     std::size_t nz);

/// Zero every entry with |value| <= threshold; returns how many survive.
/// A NaN threshold keeps every entry (nothing compares <= NaN).
std::size_t threshold_coefficients(rmp::la::Matrix& m, double threshold);

/// Largest absolute coefficient (0 for an empty matrix).
double max_abs_coefficient(const rmp::la::Matrix& m);

/// Threshold theta = fraction * max|coefficient|, made well-defined on
/// degenerate inputs: the maximum is taken over *finite* coefficients
/// only, and when it is zero (all-zero or all-equal-to-zero coefficient
/// planes, or no finite coefficient at all) the result is 0.0 so that
/// thresholding keeps every nonzero coefficient instead of becoming a
/// NaN/Inf comparison. fraction <= 0 also yields 0.0 (thresholding off).
double threshold_for_fraction(const rmp::la::Matrix& m, double fraction);

}  // namespace rmp::wavelet
