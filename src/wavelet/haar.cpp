#include "wavelet/haar.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace rmp::wavelet {
namespace {

const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

// Lines (rows/columns) are transformed independently, so the per-line
// loops fan out onto the shared pool once the total element count makes
// the dispatch worthwhile.
constexpr std::size_t kParallelElementCutoff = 1u << 14;

// One forward cascade step over the first `length` entries: sums (and an
// odd straggler) move to the front, differences fill the back half.
void forward_step(std::span<double> data, std::size_t length,
                  std::vector<double>& scratch) {
  const std::size_t pairs = length / 2;
  const bool odd = (length % 2) != 0;
  scratch.resize(length);
  for (std::size_t p = 0; p < pairs; ++p) {
    const double a = data[2 * p];
    const double b = data[2 * p + 1];
    scratch[p] = (a + b) * kInvSqrt2;
    scratch[pairs + (odd ? 1 : 0) + p] = (a - b) * kInvSqrt2;
  }
  if (odd) scratch[pairs] = data[length - 1];
  for (std::size_t i = 0; i < length; ++i) data[i] = scratch[i];
}

void inverse_step(std::span<double> data, std::size_t length,
                  std::vector<double>& scratch) {
  const std::size_t pairs = length / 2;
  const bool odd = (length % 2) != 0;
  scratch.resize(length);
  for (std::size_t p = 0; p < pairs; ++p) {
    const double s = data[p];
    const double d = data[pairs + (odd ? 1 : 0) + p];
    scratch[2 * p] = (s + d) * kInvSqrt2;
    scratch[2 * p + 1] = (s - d) * kInvSqrt2;
  }
  if (odd) scratch[length - 1] = data[pairs];
  for (std::size_t i = 0; i < length; ++i) data[i] = scratch[i];
}

std::size_t resolve_levels(std::size_t n, std::size_t levels) {
  const std::size_t limit = max_levels(n);
  if (levels == 0) return limit;
  if (levels > limit) {
    throw std::invalid_argument("haar: too many levels for signal length");
  }
  return levels;
}

// Length of the sum region after each level (ceil halving sequence).
std::vector<std::size_t> level_lengths(std::size_t n, std::size_t levels) {
  std::vector<std::size_t> lengths;
  lengths.reserve(levels);
  std::size_t current = n;
  for (std::size_t l = 0; l < levels && current >= 2; ++l) {
    lengths.push_back(current);
    current = (current + 1) / 2;
  }
  return lengths;
}

}  // namespace

std::size_t max_levels(std::size_t n) {
  std::size_t levels = 0;
  while (n >= 2) {
    ++levels;
    n = (n + 1) / 2;
  }
  return levels;
}

void haar_forward_1d(std::span<double> data, std::size_t levels) {
  levels = resolve_levels(data.size(), levels);
  std::vector<double> scratch;
  for (std::size_t length : level_lengths(data.size(), levels)) {
    forward_step(data, length, scratch);
  }
}

void haar_inverse_1d(std::span<double> data, std::size_t levels) {
  levels = resolve_levels(data.size(), levels);
  const auto lengths = level_lengths(data.size(), levels);
  std::vector<double> scratch;
  for (auto it = lengths.rbegin(); it != lengths.rend(); ++it) {
    inverse_step(data, *it, scratch);
  }
}

namespace {

// Rows then columns (or the reverse) of the separable 2D transform.  Each
// line is independent; line ranges go to the pool when the matrix is big
// enough.  Scratch buffers live inside the range body, one per chunk.
void transform_rows(rmp::la::Matrix& m, std::size_t levels,
                    void (*line_transform)(std::span<double>, std::size_t)) {
  const auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      line_transform(m.row(i), levels);
    }
  };
  if (m.size() < kParallelElementCutoff) {
    body(0, m.rows());
  } else {
    rmp::parallel::parallel_for_ranges(m.rows(), body);
  }
}

void transform_cols(rmp::la::Matrix& m, std::size_t levels,
                    void (*line_transform)(std::span<double>, std::size_t)) {
  const auto body = [&](std::size_t begin, std::size_t end) {
    std::vector<double> column(m.rows());
    for (std::size_t j = begin; j < end; ++j) {
      for (std::size_t i = 0; i < m.rows(); ++i) column[i] = m(i, j);
      line_transform(column, levels);
      for (std::size_t i = 0; i < m.rows(); ++i) m(i, j) = column[i];
    }
  };
  if (m.size() < kParallelElementCutoff) {
    body(0, m.cols());
  } else {
    rmp::parallel::parallel_for_ranges(m.cols(), body);
  }
}

}  // namespace

void haar_forward_2d(rmp::la::Matrix& m, std::size_t row_levels,
                     std::size_t col_levels) {
  transform_rows(m, row_levels, &haar_forward_1d);
  transform_cols(m, col_levels, &haar_forward_1d);
}

void haar_inverse_2d(rmp::la::Matrix& m, std::size_t row_levels,
                     std::size_t col_levels) {
  transform_cols(m, col_levels, &haar_inverse_1d);
  transform_rows(m, row_levels, &haar_inverse_1d);
}

namespace {

// Apply the full 1D transform to every line along one axis of a 3D array.
// stride = distance between consecutive elements of a line; count =
// elements per line; the outer loops enumerate line origins.
// Lines along one axis never overlap, so the outer loop (over x planes,
// or y planes for axis 0) fans out onto the shared pool; each chunk keeps
// its own gather/scatter buffer.
template <typename Transform>
void for_each_line(std::span<double> data, std::size_t nx, std::size_t ny,
                   std::size_t nz, std::size_t axis, Transform&& transform) {
  auto index = [=](std::size_t i, std::size_t j, std::size_t k) {
    return (i * ny + j) * nz + k;
  };
  const auto run = [&](std::size_t planes,
                       const std::function<void(std::size_t, std::size_t)>& body) {
    if (data.size() < kParallelElementCutoff) {
      body(0, planes);
    } else {
      rmp::parallel::parallel_for_ranges(planes, body);
    }
  };
  if (axis == 2) {  // z lines are contiguous
    run(nx, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = 0; j < ny; ++j) {
          transform(data.subspan(index(i, j, 0), nz));
        }
      }
    });
    return;
  }
  if (axis == 1) {
    run(nx, [&](std::size_t begin, std::size_t end) {
      std::vector<double> line(ny);
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t k = 0; k < nz; ++k) {
          for (std::size_t j = 0; j < ny; ++j) line[j] = data[index(i, j, k)];
          transform(std::span<double>(line));
          for (std::size_t j = 0; j < ny; ++j) data[index(i, j, k)] = line[j];
        }
      }
    });
  } else {
    run(ny, [&](std::size_t begin, std::size_t end) {
      std::vector<double> line(nx);
      for (std::size_t j = begin; j < end; ++j) {
        for (std::size_t k = 0; k < nz; ++k) {
          for (std::size_t i = 0; i < nx; ++i) line[i] = data[index(i, j, k)];
          transform(std::span<double>(line));
          for (std::size_t i = 0; i < nx; ++i) data[index(i, j, k)] = line[i];
        }
      }
    });
  }
}

}  // namespace

void haar_forward_3d(std::span<double> data, std::size_t nx, std::size_t ny,
                     std::size_t nz) {
  if (data.size() != nx * ny * nz) {
    throw std::invalid_argument("haar_forward_3d: size mismatch");
  }
  for (std::size_t axis : {std::size_t{2}, std::size_t{1}, std::size_t{0}}) {
    for_each_line(data, nx, ny, nz, axis,
                  [](std::span<double> line) { haar_forward_1d(line); });
  }
}

void haar_inverse_3d(std::span<double> data, std::size_t nx, std::size_t ny,
                     std::size_t nz) {
  if (data.size() != nx * ny * nz) {
    throw std::invalid_argument("haar_inverse_3d: size mismatch");
  }
  for (std::size_t axis : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    for_each_line(data, nx, ny, nz, axis,
                  [](std::span<double> line) { haar_inverse_1d(line); });
  }
}

std::size_t threshold_coefficients(rmp::la::Matrix& m, double threshold) {
  std::size_t kept = 0;
  for (double& v : m.flat()) {
    if (std::fabs(v) <= threshold) {
      v = 0.0;
    } else {
      ++kept;
    }
  }
  return kept;
}

double max_abs_coefficient(const rmp::la::Matrix& m) {
  double mx = 0.0;
  for (double v : m.flat()) mx = std::max(mx, std::fabs(v));
  return mx;
}

double threshold_for_fraction(const rmp::la::Matrix& m, double fraction) {
  if (!(fraction > 0.0)) return 0.0;
  double mx = 0.0;
  for (double v : m.flat()) {
    const double a = std::fabs(v);
    if (std::isfinite(a) && a > mx) mx = a;
  }
  if (mx == 0.0) return 0.0;
  return fraction * mx;
}

}  // namespace rmp::wavelet
