// Small molecular-dynamics engine: Lennard-Jones fluid in a periodic box
// with velocity-Verlet integration, cell-list neighbor search, a velocity
// rescaling thermostat, and two Gromacs-inspired features that define the
// paper's two MD datasets (Table I):
//
//  * Umbrella sampling ("Umbrella"): a harmonic bias U = k/2 (r - r0)^2 on
//    the distance between two tagged atoms.
//  * Virtual sites ("Virtual_sites"): massless interaction sites placed at
//    the weighted midpoint of parent-atom pairs; their LJ forces are
//    redistributed onto the parents.
//
// Everything is in reduced LJ units.  The reduced model of each dataset is
// the same system with fewer atoms (paper: 1960 vs 490).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/field.hpp"

namespace rmp::sim {

struct MdConfig {
  std::size_t atoms = 512;
  double density = 0.8;       ///< number density; box = (atoms/density)^(1/3)
  double temperature = 1.0;
  double dt = 0.004;
  double cutoff = 2.5;
  std::size_t steps = 200;
  std::size_t thermostat_interval = 10;
  unsigned seed = 42;

  bool umbrella = false;
  double umbrella_k = 25.0;
  double umbrella_r0 = 1.5;

  bool virtual_sites = false;
  /// One virtual site is created for every `site_stride` atom pair.
  std::size_t site_stride = 4;
};

class MdSimulation {
 public:
  explicit MdSimulation(const MdConfig& config);

  void run(std::size_t steps);
  void step();

  std::size_t atom_count() const noexcept { return config_.atoms; }
  double box_length() const noexcept { return box_; }

  /// Positions flattened as [x0,y0,z0, x1,y1,z1, ...].
  const std::vector<double>& positions() const noexcept { return pos_; }
  const std::vector<double>& velocities() const noexcept { return vel_; }

  /// Instantaneous kinetic temperature.
  double temperature() const;
  /// Total potential energy at the current configuration.
  double potential_energy() const { return potential_; }
  /// Current distance between the two umbrella-tagged atoms (0 and 1).
  double reaction_coordinate() const;
  /// Virtual-site positions (3 doubles each); empty when disabled.
  std::vector<double> virtual_site_positions() const;

 private:
  void compute_forces();
  void build_cells();
  void apply_thermostat();
  double minimum_image(double d) const;

  MdConfig config_;
  double box_;
  std::vector<double> pos_, vel_, force_;
  double potential_ = 0.0;
  std::size_t steps_done_ = 0;

  // Cell list state.
  std::size_t cells_per_side_ = 0;
  std::vector<std::vector<std::uint32_t>> cells_;

  struct VirtualSite {
    std::size_t parent_a;
    std::size_t parent_b;
    double weight;  // site = (1-w)*a + w*b
  };
  std::vector<VirtualSite> sites_;
};

/// Run the simulation and return positions as an (atoms x 3) field.
Field md_run_positions(const MdConfig& config);

}  // namespace rmp::sim
