#include "sim/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/heat.hpp"
#include "sim/laplace.hpp"
#include "sim/md.hpp"
#include "sim/sedov.hpp"
#include "sim/synthetic.hpp"
#include "sim/wave.hpp"

namespace rmp::sim {
namespace {

std::size_t scaled(std::size_t base, double scale, std::size_t minimum) {
  const auto value =
      static_cast<std::size_t>(std::lround(static_cast<double>(base) * scale));
  return std::max(minimum, value);
}

HeatConfig heat_config(double scale) {
  HeatConfig config;
  config.n = scaled(48, scale, 16);
  config.steps = scaled(800, scale, 100);
  // Off-center blob: the solution is no longer mid-plane symmetric, so
  // one-base deltas are large in magnitude but smooth -- the regime the
  // paper's production Heat3d data lives in.
  config.hot_center_z = 0.62;
  return config;
}

LaplaceConfig laplace_config(double scale) {
  LaplaceConfig config;
  config.n = scaled(48, scale, 16);
  config.max_sweeps = scaled(1200, scale, 100);
  return config;
}

WaveConfig wave_config(double scale) {
  WaveConfig config;
  config.n = scaled(4096, scale, 256);
  config.steps = scaled(1500, scale, 100);
  return config;
}

MdConfig md_config(double scale, bool umbrella, bool virtual_sites) {
  MdConfig config;
  config.atoms = scaled(512, scale, 128);
  config.steps = scaled(150, scale, 40);
  config.umbrella = umbrella;
  config.virtual_sites = virtual_sites;
  return config;
}

}  // namespace

HeatConfig registry_heat_config(double scale) { return heat_config(scale); }

LaplaceConfig registry_laplace_config(double scale) {
  return laplace_config(scale);
}

const std::vector<DatasetId>& all_datasets() {
  static const std::vector<DatasetId> ids = {
      DatasetId::kHeat3d,   DatasetId::kLaplace,      DatasetId::kWave,
      DatasetId::kUmbrella, DatasetId::kVirtualSites, DatasetId::kAstro,
      DatasetId::kFish,     DatasetId::kSedovPres,    DatasetId::kYf17Temp};
  return ids;
}

std::string dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::kHeat3d: return "Heat3d";
    case DatasetId::kLaplace: return "Laplace";
    case DatasetId::kWave: return "Wave";
    case DatasetId::kUmbrella: return "Umbrella";
    case DatasetId::kVirtualSites: return "Virtual_sites";
    case DatasetId::kAstro: return "Astro";
    case DatasetId::kFish: return "Fish";
    case DatasetId::kSedovPres: return "Sedov_pres";
    case DatasetId::kYf17Temp: return "Yf17_temp";
  }
  throw std::invalid_argument("dataset_name: unknown id");
}

DatasetPair make_dataset(DatasetId id, double scale) {
  DatasetPair pair;
  pair.id = id;
  pair.name = dataset_name(id);

  switch (id) {
    case DatasetId::kHeat3d: {
      // Reduced model: problem size scaled down 4x per dimension.
      HeatConfig full = heat_config(scale);
      pair.full = heat3d_run(full);
      HeatConfig reduced = full;
      reduced.n = std::max<std::size_t>(8, full.n / 4);
      reduced.steps = std::max<std::size_t>(25, full.steps / 16);
      pair.reduced = heat3d_run(reduced);
      break;
    }
    case DatasetId::kLaplace: {
      LaplaceConfig full = laplace_config(scale);
      pair.full = laplace3d_run(full);
      LaplaceConfig reduced = full;
      reduced.n = std::max<std::size_t>(8, full.n / 4);
      pair.reduced = laplace3d_run(reduced);
      break;
    }
    case DatasetId::kWave: {
      WaveConfig full = wave_config(scale);
      pair.full = wave1d_run(full);
      WaveConfig reduced = full;
      reduced.n = std::max<std::size_t>(64, full.n / 4);
      reduced.steps = std::max<std::size_t>(25, full.steps / 4);
      pair.reduced = wave1d_run(reduced);
      break;
    }
    case DatasetId::kUmbrella: {
      // Reduced model: a quarter of the atoms (paper: 1960 vs 490).
      MdConfig full = md_config(scale, /*umbrella=*/true, false);
      pair.full = md_run_positions(full);
      MdConfig reduced = full;
      reduced.atoms = std::max<std::size_t>(64, full.atoms / 4);
      pair.reduced = md_run_positions(reduced);
      break;
    }
    case DatasetId::kVirtualSites: {
      MdConfig full = md_config(scale, false, /*virtual_sites=*/true);
      pair.full = md_run_positions(full);
      MdConfig reduced = full;
      reduced.atoms = std::max<std::size_t>(64, full.atoms / 4);
      pair.reduced = md_run_positions(reduced);
      break;
    }
    case DatasetId::kAstro: {
      AstroConfig full;
      full.n = scaled(48, scale, 16);
      pair.full = astro_velocity_field(full);
      AstroConfig reduced = full;
      reduced.n = std::max<std::size_t>(8, full.n / 2);
      reduced.domain = 0.5;
      reduced.time = 0.5;
      pair.reduced = astro_velocity_field(reduced);
      break;
    }
    case DatasetId::kFish: {
      FishConfig full;
      full.n = scaled(48, scale, 16);
      pair.full = fish_velocity_field(full);
      FishConfig reduced = full;
      reduced.n = std::max<std::size_t>(8, full.n / 2);
      reduced.domain = 0.5;
      reduced.time = 0.5;
      pair.reduced = fish_velocity_field(reduced);
      break;
    }
    case DatasetId::kSedovPres: {
      SedovConfig full;
      full.n = scaled(48, scale, 16);
      full.domain = 1.0;
      full.time = 1.0;  // paper: 20000 steps
      pair.full = sedov_pressure_field(full);
      SedovConfig reduced = full;
      reduced.n = std::max<std::size_t>(8, full.n / 2);
      reduced.domain = 0.5;  // paper: (0.5, 0.5, 0.5)
      reduced.time = 0.5;    // paper: 10000 steps
      pair.reduced = sedov_pressure_field(reduced);
      break;
    }
    case DatasetId::kYf17Temp: {
      Yf17Config full;
      full.n = scaled(48, scale, 16);
      pair.full = yf17_temperature_field(full);
      Yf17Config reduced = full;
      reduced.n = std::max<std::size_t>(8, full.n / 2);
      reduced.domain = 0.5;
      reduced.time = 0.5;
      pair.reduced = yf17_temperature_field(reduced);
      break;
    }
  }
  return pair;
}

std::vector<DatasetPair> make_all_datasets(double scale) {
  std::vector<DatasetPair> pairs;
  pairs.reserve(all_datasets().size());
  for (DatasetId id : all_datasets()) {
    pairs.push_back(make_dataset(id, scale));
  }
  return pairs;
}

std::vector<Field> make_snapshots(DatasetId id, std::size_t count,
                                  double scale) {
  switch (id) {
    case DatasetId::kHeat3d:
      return heat3d_snapshots(heat_config(scale), count);
    case DatasetId::kLaplace:
      return laplace3d_snapshots(laplace_config(scale), count);
    case DatasetId::kWave:
      return wave1d_snapshots(wave_config(scale), count);
    default:
      throw std::invalid_argument(
          "make_snapshots: only Heat3d/Laplace/Wave evolve in time");
  }
}

}  // namespace rmp::sim
