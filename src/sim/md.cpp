#include "sim/md.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace rmp::sim {
namespace {

constexpr double kLjEpsilon = 1.0;
constexpr double kLjSigma = 1.0;

}  // namespace

MdSimulation::MdSimulation(const MdConfig& config) : config_(config) {
  if (config_.atoms < 4) {
    throw std::invalid_argument("MdSimulation: need at least 4 atoms");
  }
  box_ = std::cbrt(static_cast<double>(config_.atoms) / config_.density);
  // Minimum-image convention needs cutoff <= box/2; clamp for small
  // (reduced-model) systems instead of rejecting them.
  config_.cutoff = std::min(config_.cutoff, 0.5 * box_);
  pos_.resize(config_.atoms * 3);
  vel_.resize(config_.atoms * 3);
  force_.resize(config_.atoms * 3);

  // Simple-cubic lattice with jitter, then Maxwell velocities.
  std::mt19937 rng(config_.seed);
  std::normal_distribution<double> gauss(0.0, std::sqrt(config_.temperature));
  std::uniform_real_distribution<double> jitter(-0.05, 0.05);

  const auto per_side = static_cast<std::size_t>(
      std::ceil(std::cbrt(static_cast<double>(config_.atoms))));
  const double spacing = box_ / static_cast<double>(per_side);
  std::size_t placed = 0;
  for (std::size_t i = 0; i < per_side && placed < config_.atoms; ++i) {
    for (std::size_t j = 0; j < per_side && placed < config_.atoms; ++j) {
      for (std::size_t k = 0; k < per_side && placed < config_.atoms; ++k) {
        pos_[placed * 3 + 0] = (static_cast<double>(i) + 0.5) * spacing +
                               jitter(rng);
        pos_[placed * 3 + 1] = (static_cast<double>(j) + 0.5) * spacing +
                               jitter(rng);
        pos_[placed * 3 + 2] = (static_cast<double>(k) + 0.5) * spacing +
                               jitter(rng);
        ++placed;
      }
    }
  }
  double momentum[3] = {0.0, 0.0, 0.0};
  for (std::size_t a = 0; a < config_.atoms; ++a) {
    for (std::size_t d = 0; d < 3; ++d) {
      vel_[a * 3 + d] = gauss(rng);
      momentum[d] += vel_[a * 3 + d];
    }
  }
  // Remove center-of-mass drift.
  for (std::size_t a = 0; a < config_.atoms; ++a) {
    for (std::size_t d = 0; d < 3; ++d) {
      vel_[a * 3 + d] -= momentum[d] / static_cast<double>(config_.atoms);
    }
  }

  if (config_.virtual_sites) {
    for (std::size_t a = 0; a + 1 < config_.atoms;
         a += config_.site_stride * 2) {
      sites_.push_back({a, a + 1, 0.5});
    }
  }
  compute_forces();
}

double MdSimulation::minimum_image(double d) const {
  while (d > 0.5 * box_) d -= box_;
  while (d < -0.5 * box_) d += box_;
  return d;
}

void MdSimulation::build_cells() {
  cells_per_side_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(box_ / config_.cutoff));
  cells_.assign(cells_per_side_ * cells_per_side_ * cells_per_side_, {});
  const double inv_cell = static_cast<double>(cells_per_side_) / box_;
  for (std::size_t a = 0; a < config_.atoms; ++a) {
    auto cell_of = [&](double x) {
      auto c = static_cast<std::ptrdiff_t>(x * inv_cell);
      const auto side = static_cast<std::ptrdiff_t>(cells_per_side_);
      c %= side;
      if (c < 0) c += side;
      return static_cast<std::size_t>(c);
    };
    const std::size_t cx = cell_of(pos_[a * 3 + 0]);
    const std::size_t cy = cell_of(pos_[a * 3 + 1]);
    const std::size_t cz = cell_of(pos_[a * 3 + 2]);
    cells_[(cx * cells_per_side_ + cy) * cells_per_side_ + cz].push_back(
        static_cast<std::uint32_t>(a));
  }
}

void MdSimulation::compute_forces() {
  std::fill(force_.begin(), force_.end(), 0.0);
  potential_ = 0.0;
  build_cells();

  const double rc2 = config_.cutoff * config_.cutoff;
  // Energy shift so the potential is continuous at the cutoff.
  const double inv_rc6 = 1.0 / (rc2 * rc2 * rc2);
  const double shift = 4.0 * kLjEpsilon * (inv_rc6 * inv_rc6 - inv_rc6);

  auto pair_force = [&](std::size_t a, std::size_t b) {
    double dx = minimum_image(pos_[a * 3 + 0] - pos_[b * 3 + 0]);
    double dy = minimum_image(pos_[a * 3 + 1] - pos_[b * 3 + 1]);
    double dz = minimum_image(pos_[a * 3 + 2] - pos_[b * 3 + 2]);
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= rc2 || r2 < 1e-12) return;
    const double s2 = kLjSigma * kLjSigma / r2;
    const double s6 = s2 * s2 * s2;
    const double s12 = s6 * s6;
    potential_ += 4.0 * kLjEpsilon * (s12 - s6) - shift;
    const double magnitude = 24.0 * kLjEpsilon * (2.0 * s12 - s6) / r2;
    force_[a * 3 + 0] += magnitude * dx;
    force_[a * 3 + 1] += magnitude * dy;
    force_[a * 3 + 2] += magnitude * dz;
    force_[b * 3 + 0] -= magnitude * dx;
    force_[b * 3 + 1] -= magnitude * dy;
    force_[b * 3 + 2] -= magnitude * dz;
  };

  const auto side = static_cast<std::ptrdiff_t>(cells_per_side_);
  if (side < 3) {
    // With fewer than 3 cells per side the wrapped stencil would alias and
    // double-count cell pairs; fall back to all-pairs.
    for (std::size_t a = 0; a < config_.atoms; ++a) {
      for (std::size_t b = a + 1; b < config_.atoms; ++b) {
        pair_force(a, b);
      }
    }
  } else {
  auto cell_index = [&](std::ptrdiff_t x, std::ptrdiff_t y, std::ptrdiff_t z) {
    x = (x % side + side) % side;
    y = (y % side + side) % side;
    z = (z % side + side) % side;
    return static_cast<std::size_t>((x * side + y) * side + z);
  };

  for (std::ptrdiff_t cx = 0; cx < side; ++cx) {
    for (std::ptrdiff_t cy = 0; cy < side; ++cy) {
      for (std::ptrdiff_t cz = 0; cz < side; ++cz) {
        const auto& home = cells_[cell_index(cx, cy, cz)];
        // Pairs within the home cell.
        for (std::size_t p = 0; p < home.size(); ++p) {
          for (std::size_t q = p + 1; q < home.size(); ++q) {
            pair_force(home[p], home[q]);
          }
        }
        // Pairs with forward half of the neighbor stencil (each cell pair
        // visited once).
        static constexpr std::ptrdiff_t kHalfStencil[13][3] = {
            {1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},   {1, -1, 0},
            {1, 0, 1},  {1, 0, -1}, {0, 1, 1},  {0, 1, -1},  {1, 1, 1},
            {1, 1, -1}, {1, -1, 1}, {1, -1, -1}};
        for (const auto& offset : kHalfStencil) {
          const std::size_t other =
              cell_index(cx + offset[0], cy + offset[1], cz + offset[2]);
          if (other == cell_index(cx, cy, cz)) continue;  // tiny boxes
          for (std::uint32_t a : home) {
            for (std::uint32_t b : cells_[other]) {
              pair_force(a, b);
            }
          }
        }
      }
    }
  }
  }

  // Umbrella bias between atoms 0 and 1.
  if (config_.umbrella) {
    double dx = minimum_image(pos_[0] - pos_[3]);
    double dy = minimum_image(pos_[1] - pos_[4]);
    double dz = minimum_image(pos_[2] - pos_[5]);
    const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (r > 1e-9) {
      const double dev = r - config_.umbrella_r0;
      potential_ += 0.5 * config_.umbrella_k * dev * dev;
      const double magnitude = -config_.umbrella_k * dev / r;
      force_[0] += magnitude * dx;
      force_[1] += magnitude * dy;
      force_[2] += magnitude * dz;
      force_[3] -= magnitude * dx;
      force_[4] -= magnitude * dy;
      force_[5] -= magnitude * dz;
    }
  }

  // Virtual sites: each site interacts with every atom via LJ; the force
  // on the (massless) site is redistributed to its parents by weight.
  if (!sites_.empty()) {
    for (const auto& site : sites_) {
      double sx = 0, sy = 0, sz = 0;
      {
        const double ax = pos_[site.parent_a * 3 + 0];
        const double ay = pos_[site.parent_a * 3 + 1];
        const double az = pos_[site.parent_a * 3 + 2];
        const double bx = ax + minimum_image(pos_[site.parent_b * 3 + 0] - ax);
        const double by = ay + minimum_image(pos_[site.parent_b * 3 + 1] - ay);
        const double bz = az + minimum_image(pos_[site.parent_b * 3 + 2] - az);
        sx = (1.0 - site.weight) * ax + site.weight * bx;
        sy = (1.0 - site.weight) * ay + site.weight * by;
        sz = (1.0 - site.weight) * az + site.weight * bz;
      }
      // A soft repulsive interaction with nearby atoms keeps the site from
      // overlapping third parties (parents excluded).
      for (std::size_t b = 0; b < config_.atoms; ++b) {
        if (b == site.parent_a || b == site.parent_b) continue;
        double dx = minimum_image(sx - pos_[b * 3 + 0]);
        double dy = minimum_image(sy - pos_[b * 3 + 1]);
        double dz = minimum_image(sz - pos_[b * 3 + 2]);
        const double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 >= rc2 || r2 < 1e-12) continue;
        const double s2 = 0.25 / r2;  // smaller effective sigma
        const double s6 = s2 * s2 * s2;
        const double s12 = s6 * s6;
        potential_ += 4.0 * kLjEpsilon * s12;
        const double magnitude = 24.0 * kLjEpsilon * 2.0 * s12 / r2;
        const double fx = magnitude * dx, fy = magnitude * dy,
                     fz = magnitude * dz;
        force_[site.parent_a * 3 + 0] += (1.0 - site.weight) * fx;
        force_[site.parent_a * 3 + 1] += (1.0 - site.weight) * fy;
        force_[site.parent_a * 3 + 2] += (1.0 - site.weight) * fz;
        force_[site.parent_b * 3 + 0] += site.weight * fx;
        force_[site.parent_b * 3 + 1] += site.weight * fy;
        force_[site.parent_b * 3 + 2] += site.weight * fz;
        force_[b * 3 + 0] -= fx;
        force_[b * 3 + 1] -= fy;
        force_[b * 3 + 2] -= fz;
      }
    }
  }
}

double MdSimulation::temperature() const {
  double kinetic = 0.0;
  for (double v : vel_) kinetic += v * v;
  // 3N degrees of freedom (mass = 1): T = 2K / (3N).
  return kinetic / (3.0 * static_cast<double>(config_.atoms));
}

double MdSimulation::reaction_coordinate() const {
  const double dx = minimum_image(pos_[0] - pos_[3]);
  const double dy = minimum_image(pos_[1] - pos_[4]);
  const double dz = minimum_image(pos_[2] - pos_[5]);
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

std::vector<double> MdSimulation::virtual_site_positions() const {
  std::vector<double> out;
  out.reserve(sites_.size() * 3);
  for (const auto& site : sites_) {
    const double ax = pos_[site.parent_a * 3 + 0];
    const double ay = pos_[site.parent_a * 3 + 1];
    const double az = pos_[site.parent_a * 3 + 2];
    const double bx = ax + minimum_image(pos_[site.parent_b * 3 + 0] - ax);
    const double by = ay + minimum_image(pos_[site.parent_b * 3 + 1] - ay);
    const double bz = az + minimum_image(pos_[site.parent_b * 3 + 2] - az);
    out.push_back((1.0 - site.weight) * ax + site.weight * bx);
    out.push_back((1.0 - site.weight) * ay + site.weight * by);
    out.push_back((1.0 - site.weight) * az + site.weight * bz);
  }
  return out;
}

void MdSimulation::apply_thermostat() {
  const double current = temperature();
  if (current <= 0.0) return;
  const double scale = std::sqrt(config_.temperature / current);
  for (double& v : vel_) v *= scale;
}

void MdSimulation::step() {
  const double dt = config_.dt;
  const double half = 0.5 * dt;
  for (std::size_t i = 0; i < vel_.size(); ++i) {
    vel_[i] += half * force_[i];
    pos_[i] += dt * vel_[i];
  }
  // Wrap positions into the primary box.
  for (double& x : pos_) {
    x = std::fmod(x, box_);
    if (x < 0.0) x += box_;
  }
  compute_forces();
  for (std::size_t i = 0; i < vel_.size(); ++i) {
    vel_[i] += half * force_[i];
  }
  ++steps_done_;
  if (config_.thermostat_interval > 0 &&
      steps_done_ % config_.thermostat_interval == 0) {
    apply_thermostat();
  }
}

void MdSimulation::run(std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s) step();
}

Field md_run_positions(const MdConfig& config) {
  MdSimulation simulation(config);
  simulation.run(config.steps);
  return Field::from_data(config.atoms, 3, 1, simulation.positions());
}

}  // namespace rmp::sim
