#include "sim/field.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rmp::sim {

Field Field::from_data(std::size_t nx, std::size_t ny, std::size_t nz,
                       std::vector<double> data) {
  if (data.size() != nx * ny * nz) {
    throw std::invalid_argument("Field::from_data: size does not match shape");
  }
  Field f;
  f.nx_ = nx;
  f.ny_ = ny;
  f.nz_ = nz;
  f.data_ = std::move(data);
  return f;
}

Field extract_z_plane(const Field& f, std::size_t k) {
  if (k >= f.nz()) {
    throw std::out_of_range("extract_z_plane: k out of range");
  }
  Field plane(f.nx(), f.ny(), 1);
  for (std::size_t i = 0; i < f.nx(); ++i) {
    for (std::size_t j = 0; j < f.ny(); ++j) {
      plane.at(i, j) = f.at(i, j, k);
    }
  }
  return plane;
}

namespace {

void check_same_shape(const Field& a, const Field& b, const char* what) {
  if (a.nx() != b.nx() || a.ny() != b.ny() || a.nz() != b.nz()) {
    throw std::invalid_argument(std::string(what) + ": shapes differ");
  }
}

}  // namespace

Field subtract(const Field& a, const Field& b) {
  check_same_shape(a, b, "subtract");
  Field out = a;
  auto ob = out.flat();
  const auto bb = b.flat();
  for (std::size_t n = 0; n < ob.size(); ++n) ob[n] -= bb[n];
  return out;
}

Field add(const Field& a, const Field& b) {
  check_same_shape(a, b, "add");
  Field out = a;
  auto ob = out.flat();
  const auto bb = b.flat();
  for (std::size_t n = 0; n < ob.size(); ++n) ob[n] += bb[n];
  return out;
}

Field downsample(const Field& f, std::size_t fx, std::size_t fy,
                 std::size_t fz) {
  if (fx == 0 || fy == 0 || fz == 0) {
    throw std::invalid_argument("downsample: zero factor");
  }
  // Ceil division keeps the last grid point in range, which aligns the
  // coarse grid with upsample_linear's endpoint-stretch mapping.
  const std::size_t nx = std::max<std::size_t>(1, (f.nx() + fx - 1) / fx);
  const std::size_t ny = std::max<std::size_t>(1, (f.ny() + fy - 1) / fy);
  const std::size_t nz = std::max<std::size_t>(1, (f.nz() + fz - 1) / fz);
  Field out(nx, ny, nz);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t k = 0; k < nz; ++k) {
        out.at(i, j, k) = f.at(std::min(i * fx, f.nx() - 1),
                               std::min(j * fy, f.ny() - 1),
                               std::min(k * fz, f.nz() - 1));
      }
    }
  }
  return out;
}

Field upsample_linear(const Field& f, std::size_t nx, std::size_t ny,
                      std::size_t nz) {
  if (f.empty()) throw std::invalid_argument("upsample_linear: empty field");
  Field out(nx, ny, nz);

  auto sample_axis = [](std::size_t out_i, std::size_t out_n, std::size_t in_n)
      -> std::pair<std::size_t, double> {
    if (in_n <= 1 || out_n <= 1) return {0, 0.0};
    // Map output index to continuous input coordinate covering the range.
    const double pos = static_cast<double>(out_i) *
                       static_cast<double>(in_n - 1) /
                       static_cast<double>(out_n - 1);
    const std::size_t i0 = std::min(static_cast<std::size_t>(pos), in_n - 2);
    return {i0, pos - static_cast<double>(i0)};
  };

  for (std::size_t i = 0; i < nx; ++i) {
    const auto [x0, tx] = sample_axis(i, nx, f.nx());
    for (std::size_t j = 0; j < ny; ++j) {
      const auto [y0, ty] = sample_axis(j, ny, f.ny());
      for (std::size_t k = 0; k < nz; ++k) {
        const auto [z0, tz] = sample_axis(k, nz, f.nz());
        const std::size_t x1 = std::min(x0 + 1, f.nx() - 1);
        const std::size_t y1 = std::min(y0 + 1, f.ny() - 1);
        const std::size_t z1 = std::min(z0 + 1, f.nz() - 1);
        // Trilinear blend of the 8 surrounding samples.
        const double c000 = f.at(x0, y0, z0), c001 = f.at(x0, y0, z1);
        const double c010 = f.at(x0, y1, z0), c011 = f.at(x0, y1, z1);
        const double c100 = f.at(x1, y0, z0), c101 = f.at(x1, y0, z1);
        const double c110 = f.at(x1, y1, z0), c111 = f.at(x1, y1, z1);
        const double c00 = c000 * (1 - tz) + c001 * tz;
        const double c01 = c010 * (1 - tz) + c011 * tz;
        const double c10 = c100 * (1 - tz) + c101 * tz;
        const double c11 = c110 * (1 - tz) + c111 * tz;
        const double c0 = c00 * (1 - ty) + c01 * ty;
        const double c1 = c10 * (1 - ty) + c11 * ty;
        out.at(i, j, k) = c0 * (1 - tx) + c1 * tx;
      }
    }
  }
  return out;
}

}  // namespace rmp::sim
