#include "sim/sedov.hpp"

#include <cmath>

namespace rmp::sim {
namespace {

// Dimensionless energy integral alpha for the 3D blast; 0.851 is the
// standard value for gamma = 1.4 (Sedov 1959).
double alpha_for(double gamma) {
  // Linear fit around the tabulated values (gamma in [1.2, 5/3]):
  // alpha(1.4) = 0.851, alpha(5/3) = 0.493.
  const double g0 = 1.4, a0 = 0.851;
  const double g1 = 5.0 / 3.0, a1 = 0.493;
  const double t = (gamma - g0) / (g1 - g0);
  return a0 + t * (a1 - a0);
}

// Interior pressure profile p(x)/p_shock for x = r/R in [0, 1]: flat core
// at ~0.306 of the post-shock pressure rising steeply near the front.
double interior_profile(double x, double gamma) {
  const double core = 0.306;                       // p(0)/p2 for gamma=1.4
  const double exponent = 3.0 * gamma;             // steep rise at the front
  return core + (1.0 - core) * std::pow(x, exponent);
}

}  // namespace

double sedov_shock_radius(const SedovConfig& config) {
  return std::pow(config.energy * config.time * config.time /
                      (alpha_for(config.gamma) * config.rho0),
                  0.2);
}

double sedov_shock_pressure(const SedovConfig& config) {
  const double r = sedov_shock_radius(config);
  // Shock speed dR/dt = (2/5) R / t; strong-shock pressure jump.
  const double us = 0.4 * r / config.time;
  return 2.0 / (config.gamma + 1.0) * config.rho0 * us * us;
}

Field sedov_pressure_field(const SedovConfig& config) {
  const std::size_t n = config.n;
  Field p(n, n, n);
  const double shock_r = sedov_shock_radius(config);
  const double shock_p = sedov_shock_pressure(config);
  const double h = config.domain / static_cast<double>(n - 1);
  const double cx = 0.5 * config.domain;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double x = static_cast<double>(i) * h - cx;
        const double y = static_cast<double>(j) * h - cx;
        const double z = static_cast<double>(k) * h - cx;
        const double r = std::sqrt(x * x + y * y + z * z);
        if (r < shock_r) {
          p.at(i, j, k) =
              config.p0 +
              shock_p * interior_profile(r / shock_r, config.gamma);
        } else {
          p.at(i, j, k) = config.p0;
        }
      }
    }
  }
  return p;
}

}  // namespace rmp::sim
