// Heat equation solvers (paper §IV-A).
//
// Full model: 3D explicit central-difference diffusion on a unit cube,
// Dirichlet-0 boundaries, initial hot sphere in the center.  Reduced
// model: the projection of the same problem onto 2D (Z conduction
// dropped), exactly the paper's equation (3).  The time step honors the
// stability condition; the 2D model takes correspondingly larger steps.
//
// run_parallel() executes the same full model over the in-process
// message-passing runtime with a 1D slab decomposition and halo exchange,
// mirroring the MPI structure of the paper's Heat3d.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "sim/field.hpp"

namespace rmp::sim {

struct HeatConfig {
  std::size_t n = 48;        ///< grid points per dimension
  double kappa = 1.0;        ///< thermal conductivity
  double hot_radius = 0.25;  ///< radius of the initial hot sphere (unit cube)
  double hot_value = 100.0;
  /// Z coordinate of the hot-sphere center.  0.5 gives the perfectly
  /// mid-plane-symmetric solution of the §IV case study; the dataset
  /// registry offsets it so one-base deltas are "large in absolute value
  /// but small in variation" like the paper's production Heat3d.
  double hot_center_z = 0.5;
  std::size_t steps = 2000;
  /// Safety factor applied to the stability-limited time step.
  double cfl_safety = 0.9;
};

/// Stability-limited explicit time step for a d-dimensional grid with
/// spacing h: dt <= h^2 / (2 * d * kappa).
double heat_stable_dt(double h, unsigned dimensions, double kappa);

/// Initial condition of the full (3D) model.
Field heat3d_initial(const HeatConfig& config);

/// Initial condition of the projected (2D) model.
Field heat2d_initial(const HeatConfig& config);

/// Advance the full model `steps` steps; returns the final state.
Field heat3d_run(const HeatConfig& config);

/// Advance the projected 2D model over the same physical time horizon as
/// heat3d_run (larger dt, fewer steps).
Field heat2d_run(const HeatConfig& config);

/// `count` snapshots of the 3D run, uniformly spaced over the lifetime
/// (used by Fig. 3/4, which average over 20 outputs).
std::vector<Field> heat3d_snapshots(const HeatConfig& config, std::size_t count);

/// Same full model, computed with `ranks` processes (slab decomposition
/// along X with halo exchange).  Bit-compatible with heat3d_run.
Field heat3d_run_parallel(const HeatConfig& config, int ranks);

/// Full 3D Cartesian decomposition (the paper runs 8x8x8 ranks): every
/// rank owns a box and exchanges halos on up to six faces per step.
/// Bit-compatible with heat3d_run.
Field heat3d_run_parallel_3d(const HeatConfig& config,
                             std::array<int, 3> procs);

/// Snapshots of a coarse (n/factor grid) 3D run covering the same
/// physical-time horizon as heat3d_snapshots(config, count) -- the
/// "light" simulation DuoModel re-runs instead of storing its output.
std::vector<Field> heat3d_coarse_snapshots(const HeatConfig& config,
                                           std::size_t factor,
                                           std::size_t count);

}  // namespace rmp::sim
