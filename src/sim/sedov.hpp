// Sedov-Taylor point-blast pressure field (dataset "Sedov_pres").
//
// The self-similar strong-shock solution: shock radius
// R(t) = (E t^2 / (alpha rho0))^(1/5); immediately behind the shock the
// strong-shock jump conditions hold, and the interior pressure follows the
// classic near-flat core profile (p(0)/p_shock ~ 0.306 for gamma = 1.4).
// The paper runs the full model on a (1,1,1) volume for 20000 steps and
// the reduced model on (0.5,0.5,0.5) for 10000 steps; `domain` and `time`
// encode exactly that scaling.
#pragma once

#include <cstddef>

#include "sim/field.hpp"

namespace rmp::sim {

struct SedovConfig {
  std::size_t n = 48;     ///< grid points per dimension
  double domain = 1.0;    ///< edge length of the cubic volume
  double time = 1.0;      ///< evaluation time (arbitrary units)
  double energy = 0.01;   ///< blast energy (default keeps R(t=1) ~ 0.41,
                          ///< inside a unit volume)
  double rho0 = 1.0;      ///< ambient density
  double p0 = 1e-5;       ///< ambient pressure
  double gamma = 1.4;
};

/// Shock radius at time t.
double sedov_shock_radius(const SedovConfig& config);

/// Pressure immediately behind the shock (strong-shock jump).
double sedov_shock_pressure(const SedovConfig& config);

/// Pressure sampled on an n^3 grid centered on the blast origin (domain
/// corner at the grid center keeps the shock inside the volume).
Field sedov_pressure_field(const SedovConfig& config);

}  // namespace rmp::sim
