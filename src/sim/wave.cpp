#include "sim/wave.hpp"

#include <cmath>

namespace rmp::sim {
namespace {

Field initial_pulse(const WaveConfig& config) {
  Field u(config.n, 1, 1);
  for (std::size_t i = 0; i < config.n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(config.n - 1);
    const double d = (x - config.pulse_center) / config.pulse_width;
    u.at(i) = std::exp(-d * d);
  }
  u.at(0) = 0.0;
  u.at(config.n - 1) = 0.0;
  return u;
}

}  // namespace

Field wave1d_run(const WaveConfig& config) {
  Field prev = initial_pulse(config);
  Field curr = prev;  // zero initial velocity: u(t=-dt) == u(t=0)
  Field next(config.n, 1, 1);
  const double r2 = config.cfl * config.cfl;  // (c dt / h)^2

  for (std::size_t s = 0; s < config.steps; ++s) {
    for (std::size_t i = 1; i + 1 < config.n; ++i) {
      next.at(i) = 2.0 * curr.at(i) - prev.at(i) +
                   r2 * (curr.at(i + 1) - 2.0 * curr.at(i) + curr.at(i - 1));
    }
    next.at(0) = 0.0;
    next.at(config.n - 1) = 0.0;
    prev = curr;
    std::swap(curr, next);
  }
  return curr;
}

std::vector<Field> wave1d_snapshots(const WaveConfig& config,
                                    std::size_t count) {
  if (count == 0) return {};
  std::vector<Field> snapshots;
  snapshots.reserve(count);

  Field prev = initial_pulse(config);
  Field curr = prev;
  Field next(config.n, 1, 1);
  const double r2 = config.cfl * config.cfl;

  std::size_t taken = 0;
  for (std::size_t s = 0; s < config.steps; ++s) {
    for (std::size_t i = 1; i + 1 < config.n; ++i) {
      next.at(i) = 2.0 * curr.at(i) - prev.at(i) +
                   r2 * (curr.at(i + 1) - 2.0 * curr.at(i) + curr.at(i - 1));
    }
    next.at(0) = 0.0;
    next.at(config.n - 1) = 0.0;
    prev = curr;
    std::swap(curr, next);
    const std::size_t due = (s + 1) * count / config.steps;
    while (taken < due && taken < count) {
      snapshots.push_back(curr);
      ++taken;
    }
  }
  while (taken < count) {
    snapshots.push_back(curr);
    ++taken;
  }
  return snapshots;
}

}  // namespace rmp::sim
