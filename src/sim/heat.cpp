#include "sim/heat.hpp"

#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "parallel/decomposition.hpp"
#include "parallel/msgpass.hpp"

namespace rmp::sim {
namespace {

double sq(double v) { return v * v; }

// One explicit 3D diffusion step on the interior; boundaries stay fixed.
void step3d(const Field& u, Field& next, double coeff) {
  const std::size_t n = u.nx();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      for (std::size_t k = 1; k + 1 < n; ++k) {
        const double center = u.at(i, j, k);
        const double lap = u.at(i + 1, j, k) + u.at(i - 1, j, k) +
                           u.at(i, j + 1, k) + u.at(i, j - 1, k) +
                           u.at(i, j, k + 1) + u.at(i, j, k - 1) -
                           6.0 * center;
        next.at(i, j, k) = center + coeff * lap;
      }
    }
  }
}

void step2d(const Field& u, Field& next, double coeff) {
  const std::size_t n = u.nx();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      const double center = u.at(i, j);
      const double lap = u.at(i + 1, j) + u.at(i - 1, j) + u.at(i, j + 1) +
                         u.at(i, j - 1) - 4.0 * center;
      next.at(i, j) = center + coeff * lap;
    }
  }
}

}  // namespace

double heat_stable_dt(double h, unsigned dimensions, double kappa) {
  return h * h / (2.0 * static_cast<double>(dimensions) * kappa);
}

namespace {

// Centered coordinate that is *bitwise* symmetric under i -> n-1-i: the
// numerator 2i-(n-1) is an exact integer, so mirrored grid points get
// exactly opposite values and the initial hot sphere is exactly
// reflection-symmetric (the physics tests rely on this).
double centered(std::size_t i, std::size_t n) {
  return static_cast<double>(2 * static_cast<std::ptrdiff_t>(i) -
                             static_cast<std::ptrdiff_t>(n - 1)) /
         (2.0 * static_cast<double>(n - 1));
}

}  // namespace

Field heat3d_initial(const HeatConfig& config) {
  const std::size_t n = config.n;
  Field u(n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        // Same exact-symmetry treatment along z (an offset of zero keeps
        // the mid-plane an exact symmetry plane, §IV's premise).
        const double dz = centered(k, n) - (config.hot_center_z - 0.5);
        const double r2 =
            sq(centered(i, n)) + sq(centered(j, n)) + sq(dz);
        if (r2 <= sq(config.hot_radius)) u.at(i, j, k) = config.hot_value;
      }
    }
  }
  return u;
}

Field heat2d_initial(const HeatConfig& config) {
  const std::size_t n = config.n;
  Field u(n, n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double r2 = sq(centered(i, n)) + sq(centered(j, n));
      if (r2 <= sq(config.hot_radius)) u.at(i, j) = config.hot_value;
    }
  }
  return u;
}

Field heat3d_run(const HeatConfig& config) {
  Field u = heat3d_initial(config);
  Field next = u;
  const double h = 1.0 / static_cast<double>(config.n - 1);
  const double dt = config.cfl_safety * heat_stable_dt(h, 3, config.kappa);
  const double coeff = config.kappa * dt / (h * h);
  for (std::size_t s = 0; s < config.steps; ++s) {
    step3d(u, next, coeff);
    std::swap(u, next);
  }
  return u;
}

Field heat2d_run(const HeatConfig& config) {
  Field u = heat2d_initial(config);
  Field next = u;
  const double h = 1.0 / static_cast<double>(config.n - 1);
  const double dt3 = config.cfl_safety * heat_stable_dt(h, 3, config.kappa);
  const double dt2 = config.cfl_safety * heat_stable_dt(h, 2, config.kappa);
  // Cover the same physical time horizon as the 3D run with larger steps.
  const double horizon = dt3 * static_cast<double>(config.steps);
  const auto steps2 =
      static_cast<std::size_t>(std::ceil(horizon / dt2));
  const double dt = horizon / static_cast<double>(steps2 == 0 ? 1 : steps2);
  const double coeff = config.kappa * dt / (h * h);
  for (std::size_t s = 0; s < steps2; ++s) {
    step2d(u, next, coeff);
    std::swap(u, next);
  }
  return u;
}

std::vector<Field> heat3d_snapshots(const HeatConfig& config,
                                    std::size_t count) {
  if (count == 0) return {};
  std::vector<Field> snapshots;
  snapshots.reserve(count);

  Field u = heat3d_initial(config);
  Field next = u;
  const double h = 1.0 / static_cast<double>(config.n - 1);
  const double dt = config.cfl_safety * heat_stable_dt(h, 3, config.kappa);
  const double coeff = config.kappa * dt / (h * h);

  // Snapshot after ceil(steps * (s+1)/count) steps, covering the lifetime.
  std::size_t taken = 0;
  for (std::size_t s = 0; s < config.steps; ++s) {
    step3d(u, next, coeff);
    std::swap(u, next);
    const std::size_t due =
        (s + 1) * count / (config.steps == 0 ? 1 : config.steps);
    while (taken < due && taken < count) {
      snapshots.push_back(u);
      ++taken;
    }
  }
  while (taken < count) {
    snapshots.push_back(u);
    ++taken;
  }
  return snapshots;
}

std::vector<Field> heat3d_coarse_snapshots(const HeatConfig& config,
                                           std::size_t factor,
                                           std::size_t count) {
  HeatConfig coarse = config;
  coarse.n = std::max<std::size_t>(8, config.n / std::max<std::size_t>(1, factor));
  // Match the physical horizon: steps' = horizon / dt'.
  const double h_full = 1.0 / static_cast<double>(config.n - 1);
  const double h_coarse = 1.0 / static_cast<double>(coarse.n - 1);
  const double dt_full =
      config.cfl_safety * heat_stable_dt(h_full, 3, config.kappa);
  const double dt_coarse =
      coarse.cfl_safety * heat_stable_dt(h_coarse, 3, coarse.kappa);
  const double horizon = dt_full * static_cast<double>(config.steps);
  coarse.steps = std::max<std::size_t>(
      count, static_cast<std::size_t>(std::ceil(horizon / dt_coarse)));
  return heat3d_snapshots(coarse, count);
}

Field heat3d_run_parallel(const HeatConfig& config, int ranks) {
  const std::size_t n = config.n;
  if (ranks <= 0 || static_cast<std::size_t>(ranks) > n - 2) {
    throw std::invalid_argument("heat3d_run_parallel: bad rank count");
  }
  const Field initial = heat3d_initial(config);
  const double h = 1.0 / static_cast<double>(n - 1);
  const double dt = config.cfl_safety * heat_stable_dt(h, 3, config.kappa);
  const double coeff = config.kappa * dt / (h * h);

  parallel::CartesianDecomposition decomp({n, n, n},
                                          {ranks, 1, 1});
  Field result(n, n, n);

  parallel::run_ranks(ranks, [&](parallel::Communicator& comm) {
    const auto box = decomp.local_box(comm.rank());
    const std::size_t x0 = box[0].begin;
    const std::size_t local_nx = box[0].count();
    // Local slab with one halo layer on each X side.
    const std::size_t hx = local_nx + 2;
    Field u(hx, n, n);
    Field next(hx, n, n);
    // Fill from the global initial condition (halo included when interior).
    for (std::size_t li = 0; li < hx; ++li) {
      const std::ptrdiff_t gi =
          static_cast<std::ptrdiff_t>(x0 + li) - 1;
      if (gi < 0 || gi >= static_cast<std::ptrdiff_t>(n)) continue;
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          u.at(li, j, k) = initial.at(static_cast<std::size_t>(gi), j, k);
        }
      }
    }
    next = u;

    const int left = decomp.neighbor(comm.rank(), 0, -1);
    const int right = decomp.neighbor(comm.rank(), 0, +1);
    const std::size_t plane_size = n * n;
    std::vector<double> plane(plane_size);

    auto copy_plane_out = [&](std::size_t li, std::vector<double>& buffer) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          buffer[j * n + k] = u.at(li, j, k);
        }
      }
    };
    auto copy_plane_in = [&](std::size_t li, const std::vector<double>& buffer) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          u.at(li, j, k) = buffer[j * n + k];
        }
      }
    };

    for (std::size_t s = 0; s < config.steps; ++s) {
      // Halo exchange: even ranks send first to avoid send/recv cycles...
      // the runtime buffers sends, so a simple send-then-recv works.
      if (left >= 0) {
        copy_plane_out(1, plane);
        comm.send<double>(left, 10, plane);
      }
      if (right >= 0) {
        copy_plane_out(hx - 2, plane);
        comm.send<double>(right, 11, plane);
      }
      if (left >= 0) {
        const auto in = comm.recv<double>(left, 11);
        copy_plane_in(0, in);
      }
      if (right >= 0) {
        const auto in = comm.recv<double>(right, 10);
        copy_plane_in(hx - 1, in);
      }

      // Update interior.  Global boundary planes (x = 0 and x = n-1) are
      // Dirichlet and must not be touched.
      for (std::size_t li = 1; li + 1 < hx; ++li) {
        const std::size_t gi = x0 + li - 1;
        if (gi == 0 || gi == n - 1) continue;
        for (std::size_t j = 1; j + 1 < n; ++j) {
          for (std::size_t k = 1; k + 1 < n; ++k) {
            const double center = u.at(li, j, k);
            const double lap = u.at(li + 1, j, k) + u.at(li - 1, j, k) +
                               u.at(li, j + 1, k) + u.at(li, j - 1, k) +
                               u.at(li, j, k + 1) + u.at(li, j, k - 1) -
                               6.0 * center;
            next.at(li, j, k) = center + coeff * lap;
          }
        }
      }
      // Keep boundary/halo cells consistent in `next` before the swap.
      for (std::size_t li = 0; li < hx; ++li) {
        const std::size_t gi = x0 + li;
        const bool boundary_plane = (li == 0 || li == hx - 1) ||
                                    (gi - 1 == 0) || (gi - 1 == n - 1);
        if (!boundary_plane) continue;
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t k = 0; k < n; ++k) {
            next.at(li, j, k) = u.at(li, j, k);
          }
        }
      }
      // Edge columns (j or k boundaries) stay fixed as well.
      for (std::size_t li = 1; li + 1 < hx; ++li) {
        for (std::size_t j = 0; j < n; ++j) {
          next.at(li, j, 0) = u.at(li, j, 0);
          next.at(li, j, n - 1) = u.at(li, j, n - 1);
        }
        for (std::size_t k = 0; k < n; ++k) {
          next.at(li, 0, k) = u.at(li, 0, k);
          next.at(li, n - 1, k) = u.at(li, n - 1, k);
        }
      }
      std::swap(u, next);
    }

    // Gather local interiors at rank 0.
    std::vector<double> local(local_nx * plane_size);
    for (std::size_t li = 0; li < local_nx; ++li) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          local[(li * n + j) * n + k] = u.at(li + 1, j, k);
        }
      }
    }
    const auto all = comm.gather<double>(local, 0);
    if (comm.rank() == 0) {
      result = Field::from_data(n, n, n, all);
    }
  });
  return result;
}

Field heat3d_run_parallel_3d(const HeatConfig& config,
                             std::array<int, 3> procs) {
  const std::size_t n = config.n;
  const int ranks = procs[0] * procs[1] * procs[2];
  for (int p : procs) {
    if (p <= 0 || static_cast<std::size_t>(p) > n - 2) {
      throw std::invalid_argument("heat3d_run_parallel_3d: bad proc grid");
    }
  }
  const Field initial = heat3d_initial(config);
  const double h = 1.0 / static_cast<double>(n - 1);
  const double dt = config.cfl_safety * heat_stable_dt(h, 3, config.kappa);
  const double coeff = config.kappa * dt / (h * h);

  parallel::CartesianDecomposition decomp({n, n, n}, procs);
  Field result(n, n, n);
  std::mutex result_mutex;

  parallel::run_ranks(ranks, [&](parallel::Communicator& comm) {
    const auto box = decomp.local_box(comm.rank());
    const std::size_t ox = box[0].begin, oy = box[1].begin, oz = box[2].begin;
    const std::size_t lx = box[0].count(), ly = box[1].count(),
                      lz = box[2].count();
    // Local box plus one halo layer on every side.
    const std::size_t hx = lx + 2, hy = ly + 2, hz = lz + 2;
    Field u(hx, hy, hz);
    for (std::size_t i = 0; i < hx; ++i) {
      const std::ptrdiff_t gi = static_cast<std::ptrdiff_t>(ox + i) - 1;
      if (gi < 0 || gi >= static_cast<std::ptrdiff_t>(n)) continue;
      for (std::size_t j = 0; j < hy; ++j) {
        const std::ptrdiff_t gj = static_cast<std::ptrdiff_t>(oy + j) - 1;
        if (gj < 0 || gj >= static_cast<std::ptrdiff_t>(n)) continue;
        for (std::size_t k = 0; k < hz; ++k) {
          const std::ptrdiff_t gk = static_cast<std::ptrdiff_t>(oz + k) - 1;
          if (gk < 0 || gk >= static_cast<std::ptrdiff_t>(n)) continue;
          u.at(i, j, k) = initial.at(static_cast<std::size_t>(gi),
                                     static_cast<std::size_t>(gj),
                                     static_cast<std::size_t>(gk));
        }
      }
    }
    Field next = u;

    // Face extents (local coordinates, interior region 1..l*).
    struct Face {
      std::size_t dim;   // 0=x, 1=y, 2=z
      int step;          // -1 or +1
      int tag;
    };
    const Face faces[6] = {{0, -1, 20}, {0, +1, 21}, {1, -1, 22},
                           {1, +1, 23}, {2, -1, 24}, {2, +1, 25}};

    auto face_plane = [&](std::size_t dim, std::size_t fixed,
                          std::vector<double>& buffer, bool read) {
      // Gather or scatter the plane at local index `fixed` along `dim`.
      const std::size_t da = dim == 0 ? hy : hx;
      const std::size_t db = dim == 2 ? hy : hz;
      buffer.resize(da * db);
      std::size_t idx = 0;
      for (std::size_t a = 0; a < da; ++a) {
        for (std::size_t b = 0; b < db; ++b, ++idx) {
          std::size_t i = dim == 0 ? fixed : a;
          std::size_t j = dim == 1 ? fixed : (dim == 0 ? a : b);
          std::size_t k = dim == 2 ? fixed : b;
          if (read) {
            buffer[idx] = u.at(i, j, k);
          } else {
            u.at(i, j, k) = buffer[idx];
          }
        }
      }
    };

    std::vector<double> buffer;
    for (std::size_t s = 0; s < config.steps; ++s) {
      // Halo exchange on every face with a neighbor; the runtime buffers
      // sends, so send-all-then-receive-all is deadlock-free.
      for (const Face& face : faces) {
        const int neighbor = decomp.neighbor(comm.rank(), face.dim, face.step);
        if (neighbor < 0) continue;
        const std::size_t extent =
            face.dim == 0 ? lx : (face.dim == 1 ? ly : lz);
        const std::size_t inner = face.step < 0 ? 1 : extent;
        face_plane(face.dim, inner, buffer, /*read=*/true);
        comm.send<double>(neighbor, face.tag, buffer);
      }
      for (const Face& face : faces) {
        const int neighbor = decomp.neighbor(comm.rank(), face.dim, face.step);
        if (neighbor < 0) continue;
        const std::size_t extent =
            face.dim == 0 ? lx : (face.dim == 1 ? ly : lz);
        const std::size_t halo = face.step < 0 ? 0 : extent + 1;
        // Matching tag: the neighbor sent from its opposite face.
        const int matching_tag = face.step < 0 ? face.tag + 1 : face.tag - 1;
        auto incoming = comm.recv_bytes(neighbor, matching_tag);
        buffer.resize(incoming.size() / sizeof(double));
        std::memcpy(buffer.data(), incoming.data(), incoming.size());
        face_plane(face.dim, halo, buffer, /*read=*/false);
      }

      // Interior update; global Dirichlet boundaries stay fixed.
      for (std::size_t i = 1; i <= lx; ++i) {
        const std::size_t gi = ox + i - 1;
        for (std::size_t j = 1; j <= ly; ++j) {
          const std::size_t gj = oy + j - 1;
          for (std::size_t k = 1; k <= lz; ++k) {
            const std::size_t gk = oz + k - 1;
            if (gi == 0 || gi == n - 1 || gj == 0 || gj == n - 1 ||
                gk == 0 || gk == n - 1) {
              next.at(i, j, k) = u.at(i, j, k);
              continue;
            }
            const double center = u.at(i, j, k);
            const double lap = u.at(i + 1, j, k) + u.at(i - 1, j, k) +
                               u.at(i, j + 1, k) + u.at(i, j - 1, k) +
                               u.at(i, j, k + 1) + u.at(i, j, k - 1) -
                               6.0 * center;
            next.at(i, j, k) = center + coeff * lap;
          }
        }
      }
      std::swap(u, next);
    }

    // Deposit the local interior into the shared result (disjoint boxes).
    std::lock_guard lock(result_mutex);
    for (std::size_t i = 1; i <= lx; ++i) {
      for (std::size_t j = 1; j <= ly; ++j) {
        for (std::size_t k = 1; k <= lz; ++k) {
          result.at(ox + i - 1, oy + j - 1, oz + k - 1) = u.at(i, j, k);
        }
      }
    }
  });
  return result;
}

}  // namespace rmp::sim
