#include "sim/laplace.hpp"

#include <cmath>
#include <mutex>
#include <numbers>
#include <stdexcept>

#include "parallel/decomposition.hpp"
#include "parallel/msgpass.hpp"

namespace rmp::sim {
namespace {

void apply_boundary_3d(Field& u, const LaplaceConfig& config) {
  const std::size_t n = u.nx();
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      // Heated patch: central band of the x = 0 face, z-modulated.
      const double y = static_cast<double>(j) / static_cast<double>(n - 1);
      const double z = static_cast<double>(k) / static_cast<double>(n - 1);
      const bool in_band = y > 0.25 && y < 0.75;
      const double amplitude =
          config.hot_value *
          (1.0 + config.z_modulation * std::sin(std::numbers::pi * z));
      u.at(0, j, k) = in_band ? amplitude : 0.0;
    }
  }
}

void apply_boundary_2d(Field& u, const LaplaceConfig& config) {
  const std::size_t n = u.nx();
  for (std::size_t j = 0; j < n; ++j) {
    const double y = static_cast<double>(j) / static_cast<double>(n - 1);
    const bool in_band = y > 0.25 && y < 0.75;
    u.at(0, j) = in_band ? config.hot_value : 0.0;
  }
}

double jacobi_sweep_3d(const Field& u, Field& next) {
  const std::size_t n = u.nx();
  double max_change = 0.0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      for (std::size_t k = 1; k + 1 < n; ++k) {
        const double value = (u.at(i + 1, j, k) + u.at(i - 1, j, k) +
                              u.at(i, j + 1, k) + u.at(i, j - 1, k) +
                              u.at(i, j, k + 1) + u.at(i, j, k - 1)) /
                             6.0;
        max_change = std::max(max_change, std::fabs(value - u.at(i, j, k)));
        next.at(i, j, k) = value;
      }
    }
  }
  return max_change;
}

double jacobi_sweep_2d(const Field& u, Field& next) {
  const std::size_t n = u.nx();
  double max_change = 0.0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      const double value = (u.at(i + 1, j) + u.at(i - 1, j) + u.at(i, j + 1) +
                            u.at(i, j - 1)) /
                           4.0;
      max_change = std::max(max_change, std::fabs(value - u.at(i, j)));
      next.at(i, j) = value;
    }
  }
  return max_change;
}

}  // namespace

Field laplace3d_run(const LaplaceConfig& config) {
  Field u(config.n, config.n, config.n);
  apply_boundary_3d(u, config);
  Field next = u;
  for (std::size_t s = 0; s < config.max_sweeps; ++s) {
    const double change = jacobi_sweep_3d(u, next);
    std::swap(u, next);
    if (change < config.tolerance) break;
  }
  return u;
}

Field laplace2d_run(const LaplaceConfig& config) {
  Field u(config.n, config.n, 1);
  apply_boundary_2d(u, config);
  Field next = u;
  for (std::size_t s = 0; s < config.max_sweeps; ++s) {
    const double change = jacobi_sweep_2d(u, next);
    std::swap(u, next);
    if (change < config.tolerance) break;
  }
  return u;
}

std::vector<Field> laplace3d_coarse_snapshots(const LaplaceConfig& config,
                                              std::size_t factor,
                                              std::size_t count) {
  LaplaceConfig coarse = config;
  coarse.n =
      std::max<std::size_t>(8, config.n / std::max<std::size_t>(1, factor));
  // Jacobi error decays like exp(-c * sweeps / n^2): scale the sweep
  // budget so the coarse run reaches the same convergence fractions.
  const double ratio = static_cast<double>(coarse.n * coarse.n) /
                       static_cast<double>(config.n * config.n);
  coarse.max_sweeps = std::max<std::size_t>(
      count, static_cast<std::size_t>(
                 static_cast<double>(config.max_sweeps) * ratio));
  coarse.tolerance = 0.0;  // run the full sweep budget for matched fractions
  return laplace3d_snapshots(coarse, count);
}

std::vector<Field> laplace3d_snapshots(const LaplaceConfig& config,
                                       std::size_t count) {
  if (count == 0) return {};
  std::vector<Field> snapshots;
  snapshots.reserve(count);

  Field u(config.n, config.n, config.n);
  apply_boundary_3d(u, config);
  Field next = u;
  std::size_t taken = 0;
  for (std::size_t s = 0; s < config.max_sweeps; ++s) {
    jacobi_sweep_3d(u, next);
    std::swap(u, next);
    const std::size_t due = (s + 1) * count / config.max_sweeps;
    while (taken < due && taken < count) {
      snapshots.push_back(u);
      ++taken;
    }
  }
  while (taken < count) {
    snapshots.push_back(u);
    ++taken;
  }
  return snapshots;
}

Field laplace3d_run_parallel(const LaplaceConfig& config, int ranks) {
  const std::size_t n = config.n;
  if (ranks <= 0 || static_cast<std::size_t>(ranks) > n - 2) {
    throw std::invalid_argument("laplace3d_run_parallel: bad rank count");
  }
  // The full boundary state: every rank initializes its slab from it.
  Field initial(n, n, n);
  apply_boundary_3d(initial, config);

  parallel::CartesianDecomposition decomp({n, n, n}, {ranks, 1, 1});
  Field result(n, n, n);
  std::mutex result_mutex;

  parallel::run_ranks(ranks, [&](parallel::Communicator& comm) {
    const auto box = decomp.local_box(comm.rank());
    const std::size_t x0 = box[0].begin;
    const std::size_t lx = box[0].count();
    const std::size_t hx = lx + 2;
    Field u(hx, n, n);
    for (std::size_t li = 0; li < hx; ++li) {
      const std::ptrdiff_t gi = static_cast<std::ptrdiff_t>(x0 + li) - 1;
      if (gi < 0 || gi >= static_cast<std::ptrdiff_t>(n)) continue;
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          u.at(li, j, k) = initial.at(static_cast<std::size_t>(gi), j, k);
        }
      }
    }
    Field next = u;

    const int left = decomp.neighbor(comm.rank(), 0, -1);
    const int right = decomp.neighbor(comm.rank(), 0, +1);
    std::vector<double> plane(n * n);
    auto plane_out = [&](std::size_t li) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) plane[j * n + k] = u.at(li, j, k);
      }
    };
    auto plane_in = [&](std::size_t li, const std::vector<double>& buffer) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) u.at(li, j, k) = buffer[j * n + k];
      }
    };

    for (std::size_t s = 0; s < config.max_sweeps; ++s) {
      if (left >= 0) {
        plane_out(1);
        comm.send<double>(left, 30, plane);
      }
      if (right >= 0) {
        plane_out(hx - 2);
        comm.send<double>(right, 31, plane);
      }
      if (left >= 0) plane_in(0, comm.recv<double>(left, 31));
      if (right >= 0) plane_in(hx - 1, comm.recv<double>(right, 30));

      double local_change = 0.0;
      for (std::size_t li = 1; li + 1 < hx; ++li) {
        const std::size_t gi = x0 + li - 1;
        if (gi == 0 || gi == n - 1) {
          for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t k = 0; k < n; ++k) {
              next.at(li, j, k) = u.at(li, j, k);
            }
          }
          continue;
        }
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t k = 0; k < n; ++k) {
            if (j == 0 || j == n - 1 || k == 0 || k == n - 1) {
              next.at(li, j, k) = u.at(li, j, k);
              continue;
            }
            const double value =
                (u.at(li + 1, j, k) + u.at(li - 1, j, k) +
                 u.at(li, j + 1, k) + u.at(li, j - 1, k) +
                 u.at(li, j, k + 1) + u.at(li, j, k - 1)) /
                6.0;
            local_change =
                std::max(local_change, std::fabs(value - u.at(li, j, k)));
            next.at(li, j, k) = value;
          }
        }
      }
      // Keep halo planes consistent before the swap.
      for (std::size_t li : {std::size_t{0}, hx - 1}) {
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t k = 0; k < n; ++k) {
            next.at(li, j, k) = u.at(li, j, k);
          }
        }
      }
      std::swap(u, next);

      // Global convergence decision must be collective so every rank
      // stops at the same sweep (matching the serial run's criterion).
      const double global_change = comm.allreduce_max(local_change);
      if (global_change < config.tolerance) break;
    }

    std::lock_guard lock(result_mutex);
    for (std::size_t li = 1; li + 1 < hx; ++li) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          result.at(x0 + li - 1, j, k) = u.at(li, j, k);
        }
      }
    }
  });
  return result;
}

}  // namespace rmp::sim
