// Laplace steady-state solver (dataset "Laplace" in Table I).
//
// 3D Jacobi relaxation on a unit cube.  Boundary conditions: a heated
// patch on the x = 0 face whose amplitude varies slowly with z, all other
// faces cold.  The mild z-dependence keeps the solution *nearly* (not
// exactly) invariant along Z, which is the regime in which the one-base
// projection shines.  The reduced model solves the 2D problem.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/field.hpp"

namespace rmp::sim {

struct LaplaceConfig {
  std::size_t n = 48;
  double hot_value = 100.0;
  /// Relative amplitude of the z-modulation of the boundary patch.
  double z_modulation = 0.1;
  std::size_t max_sweeps = 2000;
  /// Stop when the max update falls below this threshold.
  double tolerance = 1e-6;
};

/// Relax to (near) steady state; returns the final 3D field.
Field laplace3d_run(const LaplaceConfig& config);

/// The projected 2D problem (no Z dimension, unmodulated patch).
Field laplace2d_run(const LaplaceConfig& config);

/// `count` intermediate states of the 3D relaxation, uniformly spaced in
/// sweep number (Fig. 3/4 average over 20 outputs).
std::vector<Field> laplace3d_snapshots(const LaplaceConfig& config,
                                       std::size_t count);

/// Coarse-grid (n/factor) relaxation states matched to the same
/// convergence fractions (Jacobi progress ~ sweeps / n^2), for DuoModel.
std::vector<Field> laplace3d_coarse_snapshots(const LaplaceConfig& config,
                                              std::size_t factor,
                                              std::size_t count);

/// Same 3D relaxation computed with `ranks` processes over the
/// message-passing runtime (X slabs, halo exchange, allreduce-based
/// convergence check) -- the paper runs Laplace on 512 MPI ranks.
/// Bit-compatible with laplace3d_run.
Field laplace3d_run_parallel(const LaplaceConfig& config, int ranks);

}  // namespace rmp::sim
