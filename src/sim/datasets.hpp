// Registry of the paper's nine datasets (Table I), each as a
// full-model / reduced-model pair built exactly the way §III-A describes:
//
//  * Heat3d, Laplace, Wave  -- reduced model scales the problem size down
//    (paper: 192^3 vs 48^3 for Heat3d).
//  * Umbrella, Virtual_sites -- reduced model lowers the atom count
//    (paper: 1960 vs 490).
//  * Astro, Fish, Sedov_pres, Yf17_temp -- reduced model uses a smaller
//    computational domain and a shorter time (paper: (1,1,1)/20000 steps
//    vs (0.5,0.5,0.5)/10000 for Sedov).
//
// `scale` shrinks every dataset uniformly so tests stay fast on small
// machines; scale = 1.0 is the repository default (laptop-sized), larger
// values approach the paper's sizes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/field.hpp"
#include "sim/heat.hpp"
#include "sim/laplace.hpp"

namespace rmp::sim {

enum class DatasetId {
  kHeat3d,
  kLaplace,
  kWave,
  kUmbrella,
  kVirtualSites,
  kAstro,
  kFish,
  kSedovPres,
  kYf17Temp,
};

/// All nine, in Table I order.
const std::vector<DatasetId>& all_datasets();

std::string dataset_name(DatasetId id);

struct DatasetPair {
  DatasetId id;
  std::string name;
  Field full;
  Field reduced;
};

/// Build one full/reduced pair.  scale multiplies the default grid /
/// atom-count sizes (0.5 for quick tests, 4.0 approaches paper sizes).
DatasetPair make_dataset(DatasetId id, double scale = 1.0);

/// Build all nine pairs.
std::vector<DatasetPair> make_all_datasets(double scale = 1.0);

/// Time series of `count` full-model outputs for the datasets that evolve
/// (Heat3d, Laplace, Wave); used by Fig. 3/4 which average 20 outputs.
std::vector<Field> make_snapshots(DatasetId id, std::size_t count,
                                  double scale = 1.0);

/// The solver configs the registry uses at a given scale, exposed so
/// benches can derive matched coarse (DuoModel) runs.
HeatConfig registry_heat_config(double scale);
LaplaceConfig registry_laplace_config(double scale);

}  // namespace rmp::sim
