// Regular-grid scalar field: the common output type of every data
// generator in src/sim and the input type of every preconditioner.
//
// Layout is row-major with z fastest: index = (i*ny + j)*nz + k.  1D and
// 2D fields simply use ny == 1 / nz == 1.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rmp::sim {

class Field {
 public:
  Field() = default;
  Field(std::size_t nx, std::size_t ny, std::size_t nz, double init = 0.0)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, init) {}

  static Field from_data(std::size_t nx, std::size_t ny, std::size_t nz,
                         std::vector<double> data);

  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }
  std::size_t nz() const noexcept { return nz_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  unsigned rank() const noexcept {
    if (nz_ > 1) return 3;
    if (ny_ > 1) return 2;
    return 1;
  }

  double& at(std::size_t i, std::size_t j = 0, std::size_t k = 0) noexcept {
    return data_[(i * ny_ + j) * nz_ + k];
  }
  double at(std::size_t i, std::size_t j = 0, std::size_t k = 0) const noexcept {
    return data_[(i * ny_ + j) * nz_ + k];
  }

  std::span<double> flat() noexcept { return data_; }
  std::span<const double> flat() const noexcept { return data_; }
  std::vector<double>& storage() noexcept { return data_; }
  const std::vector<double>& storage() const noexcept { return data_; }

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 1;
  std::size_t nz_ = 1;
  std::vector<double> data_;
};

/// Extract the z = k plane of a 3D field as an nx x ny 2D field.
Field extract_z_plane(const Field& f, std::size_t k);

/// Element-wise a - b; shapes must match.
Field subtract(const Field& a, const Field& b);

/// Element-wise a + b; shapes must match.
Field add(const Field& a, const Field& b);

/// Downsample by integer factors (point sampling).
Field downsample(const Field& f, std::size_t fx, std::size_t fy, std::size_t fz);

/// Upsample to an explicit target shape with (tri)linear interpolation --
/// the reconstruction step of the DuoModel baseline.
Field upsample_linear(const Field& f, std::size_t nx, std::size_t ny,
                      std::size_t nz);

}  // namespace rmp::sim
