#include "sim/synthetic.hpp"

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

namespace rmp::sim {
namespace {

using std::numbers::pi;

// Smooth random field as a sum of random-phase plane waves; amplitude
// falls off with wavenumber like a Kolmogorov-ish spectrum.
class TurbulenceField {
 public:
  TurbulenceField(unsigned seed, std::size_t modes) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> phase(0.0, 2.0 * pi);
    std::uniform_real_distribution<double> direction(-1.0, 1.0);
    std::uniform_real_distribution<double> wavenumber(1.0, 6.0);
    modes_.reserve(modes);
    for (std::size_t m = 0; m < modes; ++m) {
      Mode mode;
      double nx = direction(rng), ny = direction(rng), nz = direction(rng);
      const double len = std::sqrt(nx * nx + ny * ny + nz * nz) + 1e-12;
      const double k = wavenumber(rng);
      mode.kx = 2.0 * pi * k * nx / len;
      mode.ky = 2.0 * pi * k * ny / len;
      mode.kz = 2.0 * pi * k * nz / len;
      mode.phase = phase(rng);
      mode.amplitude = std::pow(k, -5.0 / 6.0);  // ~Kolmogorov velocity
      norm_ += mode.amplitude;
      modes_.push_back(mode);
    }
  }

  /// Value in roughly [-1, 1] at a point in the unit cube.
  double operator()(double x, double y, double z) const {
    double v = 0.0;
    for (const auto& m : modes_) {
      v += m.amplitude * std::sin(m.kx * x + m.ky * y + m.kz * z + m.phase);
    }
    return norm_ > 0.0 ? v / norm_ : 0.0;
  }

 private:
  struct Mode {
    double kx, ky, kz, phase, amplitude;
  };
  std::vector<Mode> modes_;
  double norm_ = 0.0;
};

}  // namespace

Field astro_velocity_field(const AstroConfig& config) {
  const std::size_t n = config.n;
  Field v(n, n, n);
  const TurbulenceField turbulence(config.seed, config.modes);

  const double shell_radius =
      std::min(0.48, config.shell_speed * config.time);  // stay in-domain
  const double shell_width = 0.12 * shell_radius;
  const double h = 1.0 / static_cast<double>(n - 1);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double x = static_cast<double>(i) * h;
        const double y = static_cast<double>(j) * h;
        const double z = static_cast<double>(k) * h;
        const double r = std::sqrt((x - 0.5) * (x - 0.5) +
                                   (y - 0.5) * (y - 0.5) +
                                   (z - 0.5) * (z - 0.5));
        double speed;
        if (r <= shell_radius) {
          // Homologous expansion of the ejecta.
          speed = config.vmax * (r / shell_radius);
        } else {
          // Shocked ambient medium decays past the shell.
          speed = config.vmax *
                  std::exp(-(r - shell_radius) / (shell_width + 1e-12));
        }
        const double wrinkle =
            1.0 + config.turbulence * turbulence(x, y, z);
        v.at(i, j, k) = speed * wrinkle;
      }
    }
  }
  return v;
}

Field fish_velocity_field(const FishConfig& config) {
  const std::size_t n = config.n;
  Field v(n, n, n);
  const double h = 1.0 / static_cast<double>(n - 1);
  // Jet enters at the center of the x = 0 wall, axis along +x; penetration
  // depth grows with time (self-similar round jet: centerline speed falls
  // off as 1/x past the potential core).
  const double core_length = 0.08 * config.domain;
  const double penetration = std::min(1.0, 0.5 * config.time + 0.3);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double x = static_cast<double>(i) * h;
        const double y = static_cast<double>(j) * h - 0.5;
        const double z = static_cast<double>(k) * h - 0.5;
        double speed = 0.0;
        if (x <= penetration) {
          const double centerline =
              x <= core_length
                  ? config.inlet_speed
                  : config.inlet_speed * core_length / x;
          const double width = config.spread * (x + core_length);
          const double radial2 = (y * y + z * z) / (width * width);
          speed = centerline * std::exp(-radial2);
        }
        // Stagnant tank: clamp crawling flow to exactly zero -- the
        // many-zeros property of the original Fish dataset.
        if (speed < config.zero_threshold * config.inlet_speed) speed = 0.0;
        v.at(i, j, k) = speed;
      }
    }
  }
  return v;
}

Field yf17_temperature_field(const Yf17Config& config) {
  const std::size_t n = config.n;
  Field t(n, n, n);
  const double h = 1.0 / static_cast<double>(n - 1);
  // Ellipsoidal body centered upstream; wake trails in +x.
  const double bx = 0.35, by = 0.5, bz = 0.5;
  const double ax = 0.18, ay = 0.06, az = 0.10;  // semi-axes
  const double wake_length = std::min(0.9, 0.4 * config.time + 0.2);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double x = static_cast<double>(i) * h;
        const double y = static_cast<double>(j) * h;
        const double z = static_cast<double>(k) * h;
        // Signed "distance" to the ellipsoid surface in normalized units.
        const double q = std::sqrt(((x - bx) / ax) * ((x - bx) / ax) +
                                   ((y - by) / ay) * ((y - by) / ay) +
                                   ((z - bz) / az) * ((z - bz) / az));
        double temp = config.freestream_temp;
        // Boundary-layer heating decays away from the surface.
        const double surface_distance = std::fabs(q - 1.0);
        temp += config.surface_heating * std::exp(-8.0 * surface_distance);
        // Wake heating: a widening warm region downstream of the body.
        if (x > bx) {
          const double wx = (x - bx) / wake_length;
          if (wx < 1.0) {
            const double wake_width = 0.06 + 0.10 * wx;
            const double r2 = ((y - by) * (y - by) + (z - bz) * (z - bz)) /
                              (wake_width * wake_width);
            temp += config.wake_heating * (1.0 - wx) * std::exp(-r2);
          }
        }
        t.at(i, j, k) = temp;
      }
    }
  }
  return t;
}

}  // namespace rmp::sim
