// Physics-inspired synthetic generators for the three production datasets
// the paper sources from real campaigns (Table I):
//
//  * Astro      -- velocity magnitude in a supernova: homologous expansion
//                  (v ~ r/R) inside an expanding shell plus seeded
//                  multi-mode turbulence.
//  * Fish       -- velocity magnitude of cooling air injected into a
//                  mixing tank: a decaying jet cone in an otherwise
//                  stagnant tank.  The defining property the paper leans
//                  on -- a large fraction of *exact zeros* -- is preserved
//                  by clamping sub-threshold speeds to 0.
//  * Yf17_temp  -- temperature around an aircraft-like body: freestream
//                  plus boundary-layer and wake heating near an embedded
//                  ellipsoid.
//
// Each generator takes the grid size, a domain scale and a time scale so
// the dataset registry can derive the reduced model the way the paper
// does ("smaller computational domain, shorter times").
#pragma once

#include <cstddef>

#include "sim/field.hpp"

namespace rmp::sim {

struct AstroConfig {
  std::size_t n = 48;
  double domain = 1.0;
  double time = 1.0;          ///< expansion age; shell radius grows with it
  double shell_speed = 0.35;  ///< shell radius per unit time (domain units)
  double vmax = 2.0e3;        ///< km/s-scale ejecta speed
  double turbulence = 0.08;   ///< relative turbulent amplitude
  unsigned seed = 7;
  std::size_t modes = 40;     ///< Fourier modes in the turbulence sum
};

Field astro_velocity_field(const AstroConfig& config);

struct FishConfig {
  std::size_t n = 48;
  double domain = 1.0;
  double time = 1.0;           ///< jet penetration grows with time
  double inlet_speed = 12.0;   ///< m/s-scale injection speed
  double spread = 0.12;        ///< cone half-width growth per unit length
  double zero_threshold = 1e-3;  ///< relative speed below which flow is 0
};

Field fish_velocity_field(const FishConfig& config);

struct Yf17Config {
  std::size_t n = 48;
  double domain = 1.0;
  double time = 1.0;            ///< wake development time
  double freestream_temp = 300.0;
  double surface_heating = 45.0;  ///< peak boundary-layer temperature rise
  double wake_heating = 20.0;
};

Field yf17_temperature_field(const Yf17Config& config);

}  // namespace rmp::sim
