// 1D wave equation (dataset "Wave" in Table I): u_tt = c^2 u_xx,
// leapfrog scheme, Gaussian pulse initial condition, fixed ends.  The
// reduced model scales the problem size down (fewer grid points).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/field.hpp"

namespace rmp::sim {

struct WaveConfig {
  std::size_t n = 4096;
  double c = 1.0;          ///< wave speed
  double cfl = 0.9;        ///< Courant number (must be <= 1 for stability)
  double pulse_center = 0.3;
  double pulse_width = 0.05;
  std::size_t steps = 2000;
};

Field wave1d_run(const WaveConfig& config);

std::vector<Field> wave1d_snapshots(const WaveConfig& config, std::size_t count);

}  // namespace rmp::sim
