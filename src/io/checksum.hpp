// CRC-32 (IEEE 802.3 polynomial, zlib-compatible) for container
// integrity: a silently corrupted delta would decode into plausible but
// wrong science, so every container carries a checksum.
#pragma once

#include <cstdint>
#include <span>

namespace rmp::io {

std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 0);

}  // namespace rmp::io
