#include "io/store_health.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <string_view>
#include <utility>

#include "io/checksum.hpp"
#include "io/container_error.hpp"
#include "obs/obs.hpp"

namespace rmp::io {
namespace {

// Whole-file read that never throws: scrub and recovery must survive any
// single unreadable file and keep walking the store.
std::optional<std::vector<std::uint8_t>> try_read_bytes(
    const std::filesystem::path& path) noexcept {
  try {
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    if (!file) return std::nullopt;
    const std::streamoff end = file.tellg();
    if (end < 0) return std::nullopt;
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(end));
    file.seekg(0);
    if (!bytes.empty() &&
        !file.read(reinterpret_cast<char*>(bytes.data()),
                   static_cast<std::streamsize>(bytes.size()))) {
      return std::nullopt;
    }
    return bytes;
  } catch (...) {
    return std::nullopt;
  }
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

// Request-log record: magic u32 "RQL1" | token u64 | step u64 | crc32 over
// the preceding 20 bytes.  Fixed stride, so the committed-prefix scan
// needs no framing beyond the per-record CRC.
constexpr std::uint32_t kRequestLogMagic = 0x314C5152;  // "RQL1"
constexpr std::size_t kRequestLogRecordBytes = 4 + 8 + 8 + 4;

std::array<std::uint8_t, kRequestLogRecordBytes> encode_request_record(
    std::uint64_t token, std::uint64_t step) {
  std::array<std::uint8_t, kRequestLogRecordBytes> bytes{};
  std::memcpy(bytes.data(), &kRequestLogMagic, 4);
  std::memcpy(bytes.data() + 4, &token, 8);
  std::memcpy(bytes.data() + 12, &step, 8);
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(bytes.data(), 20));
  std::memcpy(bytes.data() + 20, &crc, 4);
  return bytes;
}

/// What one store file turned out to be.
enum class FileKind : std::uint8_t { kContainer, kSequence, kUnreadable };

// Names the scrubber must never touch: journals (resume's territory),
// request logs (recovery metadata), staging temps, dot-files, and the
// quarantine manifest's directory (skipped anyway as non-regular).
bool is_scrubbable_name(const std::string& name) {
  if (name.empty() || name.front() == '.') return false;
  if (name.size() >= 5 && name.ends_with(".part")) return false;
  if (name.size() >= 5 && name.ends_with(".reqs")) return false;
  if (name.find(".tmp.") != std::string::npos) return false;
  return true;
}

std::uint64_t count_repaired(const ReadReport& report) {
  std::uint64_t repaired = 0;
  for (const auto& section : report.sections) {
    if (section.state == SectionState::kRepaired) ++repaired;
  }
  return repaired;
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ",";
    out += name;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Quarantine

std::filesystem::path quarantine_dir(const std::filesystem::path& store_dir) {
  return store_dir / "quarantine";
}

std::filesystem::path quarantine_manifest_path(
    const std::filesystem::path& store_dir) {
  return quarantine_dir(store_dir) / "manifest.json";
}

void quarantine_file(const std::filesystem::path& store_dir,
                     const std::filesystem::path& path,
                     const std::string& reason) {
  const std::filesystem::path dir = quarantine_dir(store_dir);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw ContainerError(ContainerErrc::kIoError,
                         "quarantine_file: cannot create " + dir.string() +
                             ": " + ec.message());
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(path, ec));
  // A name collision (the same store name quarantined twice across
  // restarts) gets a numeric suffix instead of clobbering evidence.
  std::filesystem::path dest = dir / path.filename();
  for (int n = 1; std::filesystem::exists(dest); ++n) {
    dest = dir / (path.filename().string() + "." + std::to_string(n));
  }
  durable_rename(path, dest, "quarantine_file");
  obs::count("io.quarantine.files");

  // Manifest append is best-effort: the quarantine itself (getting the
  // damaged file out of the serving path) must not be undone by a
  // metadata write failure.
  const std::filesystem::path manifest = quarantine_manifest_path(store_dir);
  try {
    std::string line = "{\"file\":\"" + json_escape(path.filename().string()) +
                       "\",\"reason\":\"" + json_escape(reason) +
                       "\",\"quarantined_as\":\"" +
                       json_escape(dest.filename().string()) +
                       "\",\"bytes\":" + std::to_string(ec ? 0 : bytes) + "}\n";
    DurableFile file = std::filesystem::exists(manifest)
                           ? DurableFile::open_append(manifest,
                                                      "quarantine_manifest")
                           : DurableFile::create_truncate(
                                 manifest, "quarantine_manifest");
    file.write_all(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(line.data()), line.size()));
    file.sync();
    file.close();
  } catch (...) {
    obs::count("io.quarantine.manifest_failures");
  }
}

// ---------------------------------------------------------------------------
// Request log

std::filesystem::path request_log_path(
    const std::filesystem::path& sequence_path) {
  return std::filesystem::path(sequence_path.string() + ".reqs");
}

RequestLog RequestLog::open(const std::filesystem::path& sequence_path,
                            bool fresh, const RetryPolicy& policy) {
  const std::filesystem::path path = request_log_path(sequence_path);
  // A fresh journal generation must not inherit a predecessor's intents:
  // a stale (token, step) pair could otherwise claim a step the new
  // generation never wrote.
  if (fresh || !std::filesystem::exists(path)) {
    return RequestLog(
        DurableFile::create_truncate(path, "RequestLog::open", policy), 0);
  }
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  // Only whole CRC-valid records count as committed: an inherited torn
  // tail is truncated away so appends continue from a clean prefix.
  const std::uint64_t committed =
      scan_request_log(path).size() * kRequestLogRecordBytes;
  DurableFile file = DurableFile::open_append(path, "RequestLog::open", policy);
  if (ec || size != committed) file.truncate(committed);
  return RequestLog(std::move(file), committed);
}

void RequestLog::record(std::uint64_t token, std::uint64_t step) {
  const auto bytes = encode_request_record(token, step);
  try {
    // The fsync is what makes the intent usable as recovery evidence: it
    // must be durable BEFORE the append it describes starts committing.
    file_.write_all(bytes);
    file_.sync();
  } catch (...) {
    // Never leave a torn record: a half-written intent would stop the
    // committed-prefix scan and hide every later intent from recovery.
    try {
      file_.truncate(size_);
    } catch (...) {
    }
    throw;
  }
  size_ += bytes.size();
  obs::count("io.reqlog.records");
}

void RequestLog::rollback_last() noexcept {
  if (size_ < kRequestLogRecordBytes) return;
  try {
    file_.truncate(size_ - kRequestLogRecordBytes);
    file_.sync();
    size_ -= kRequestLogRecordBytes;
  } catch (...) {
    obs::count("io.reqlog.rollback_failures");
  }
}

std::vector<RequestLogEntry> scan_request_log(
    const std::filesystem::path& log_path) noexcept {
  std::vector<RequestLogEntry> entries;
  const auto bytes = try_read_bytes(log_path);
  if (!bytes) return entries;
  std::size_t pos = 0;
  while (pos + kRequestLogRecordBytes <= bytes->size()) {
    std::uint32_t magic = 0, stored_crc = 0;
    std::memcpy(&magic, bytes->data() + pos, 4);
    std::memcpy(&stored_crc, bytes->data() + pos + 20, 4);
    const std::uint32_t crc =
        crc32(std::span<const std::uint8_t>(bytes->data() + pos, 20));
    if (magic != kRequestLogMagic || crc != stored_crc) break;
    RequestLogEntry entry;
    std::memcpy(&entry.token, bytes->data() + pos + 4, 8);
    std::memcpy(&entry.step, bytes->data() + pos + 12, 8);
    entries.push_back(entry);
    pos += kRequestLogRecordBytes;
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Scrub

void ScrubReport::merge(const ScrubReport& other) {
  files_checked += other.files_checked;
  sections_checked += other.sections_checked;
  sections_repaired += other.sections_repaired;
  files_repaired += other.files_repaired;
  files_quarantined += other.files_quarantined;
  notes.insert(notes.end(), other.notes.begin(), other.notes.end());
}

namespace {

/// Scrub one published file.  Returns the per-file report; quarantines on
/// anything that cannot be made whole.  Throws only on quarantine-move
/// failure (caller turns that into a note).
ScrubReport scrub_one_file(const std::filesystem::path& dir,
                           const std::filesystem::path& path,
                           const ScrubOptions& options) {
  ScrubReport report;
  report.files_checked = 1;
  const std::string name = path.filename().string();

  const auto bytes = try_read_bytes(path);
  if (!bytes) {
    report.notes.push_back(name + ": unreadable");
    return report;
  }
  if (bytes->empty()) {
    quarantine_file(dir, path, "empty file");
    report.files_quarantined = 1;
    report.notes.push_back(name + ": quarantined (empty file)");
    return report;
  }

  // A store file is either a single container (probe consumes the whole
  // file) or a sequence archive; anything else is unrecognizable damage.
  const auto probed = probe_container(*bytes);
  if (probed && *probed == bytes->size()) {
    ReadReport rr;
    Container container;
    try {
      container = deserialize_salvage(*bytes, &rr);
    } catch (const std::exception& e) {
      quarantine_file(dir, path, std::string("unusable container: ") +
                                     e.what());
      report.files_quarantined = 1;
      report.notes.push_back(name + ": quarantined (unusable container)");
      return report;
    }
    report.sections_checked = rr.sections.size();
    if (!rr.complete()) {
      quarantine_file(dir, path,
                      "damaged sections beyond repair: " +
                          join_names(rr.damaged()));
      report.files_quarantined = 1;
      report.notes.push_back(name + ": quarantined (damaged: " +
                             join_names(rr.damaged()) + ")");
      return report;
    }
    if (rr.repaired()) {
      // Parity rebuilt every damaged section: republish the healed bytes
      // in the file's own format (parity/chunk-index inferred from what
      // it actually carried) so the store converges back to clean.
      SerializeOptions out;
      out.with_parity = rr.parity_present;
      out.with_chunk_index = rr.version >= 4;
      out.retry = options.retry;
      atomic_publish_bytes(path, serialize(container, out), "scrub_store",
                           options.retry);
      report.sections_repaired = count_repaired(rr);
      report.files_repaired = 1;
      report.notes.push_back(name + ": repaired " +
                             std::to_string(report.sections_repaired) +
                             " section(s) via parity");
    }
    return report;
  }

  // Sequence archive: validate each step's container independently; keep
  // intact steps byte-identical and replace only repaired ones.
  std::vector<std::vector<std::uint8_t>> steps;
  bool republish = false;
  try {
    const SequenceReader reader(path, {.allow_index_rebuild = false});
    steps.reserve(reader.step_count());
    for (std::size_t s = 0; s < reader.step_count(); ++s) {
      auto step_bytes = reader.read_step_bytes(s);
      ReadReport rr;
      Container container = deserialize_salvage(step_bytes, &rr);
      report.sections_checked += rr.sections.size();
      if (!rr.complete()) {
        throw ContainerError(ContainerErrc::kSectionCorrupt,
                             "step " + std::to_string(s) +
                                 " damaged beyond repair: " +
                                 join_names(rr.damaged()));
      }
      if (rr.repaired()) {
        SerializeOptions out;
        out.with_parity = rr.parity_present;
        out.with_chunk_index = rr.version >= 4;
        out.retry = options.retry;
        step_bytes = serialize(container, out);
        report.sections_repaired += count_repaired(rr);
        republish = true;
      }
      steps.push_back(std::move(step_bytes));
    }
  } catch (const std::exception& e) {
    quarantine_file(dir, path, e.what());
    report.sections_repaired = 0;
    report.files_quarantined = 1;
    report.notes.push_back(name + ": quarantined (" + std::string(e.what()) +
                           ")");
    return report;
  }
  if (republish) {
    write_sequence_archive(path, steps, options.retry);
    report.files_repaired = 1;
    report.notes.push_back(name + ": repaired " +
                           std::to_string(report.sections_repaired) +
                           " section(s) via parity");
  }
  return report;
}

}  // namespace

ScrubReport scrub_store(const std::filesystem::path& dir,
                        const ScrubOptions& options) {
  const obs::ScopedSpan span("store-scrub");
  ScrubReport report;
  const std::set<std::string> skip(options.skip.begin(), options.skip.end());

  // Snapshot the listing first: repairs rename files in place and
  // quarantines move them, either of which would invalidate a live
  // directory iterator.
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (!is_scrubbable_name(name) || skip.contains(name)) continue;
    files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    try {
      report.merge(scrub_one_file(dir, path, options));
    } catch (const std::exception& e) {
      // Even the quarantine move failed (e.g. disk full): record and keep
      // walking -- a scrub pass always completes.
      report.notes.push_back(path.filename().string() +
                             ": scrub failed: " + e.what());
    }
  }

  obs::count("scrub.files_checked", report.files_checked);
  obs::count("scrub.sections_checked", report.sections_checked);
  obs::count("scrub.sections_repaired", report.sections_repaired);
  obs::count("scrub.files_repaired", report.files_repaired);
  obs::count("scrub.files_quarantined", report.files_quarantined);
  return report;
}

// ---------------------------------------------------------------------------
// Startup recovery

RecoveryResult recover_store(const std::filesystem::path& dir,
                             const SerializeOptions& options) {
  const obs::ScopedSpan span("store-recover");
  RecoveryResult result;

  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec) || ec) {
    throw ContainerError(ContainerErrc::kIoError,
                         "recover_store: not a directory: " + dir.string());
  }

  // Snapshot journals and request logs up front; recovery renames and
  // unlinks as it goes.
  std::vector<std::filesystem::path> journals;
  std::vector<std::filesystem::path> request_logs;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.ends_with(".part")) journals.push_back(it->path());
    if (name.ends_with(".reqs")) request_logs.push_back(it->path());
  }
  std::sort(journals.begin(), journals.end());
  std::sort(request_logs.begin(), request_logs.end());

  std::set<std::filesystem::path> consumed_logs;

  // Pass 1: resume every torn journal (or quarantine the unreadable
  // ones), and turn its request log's durable intents into replayable
  // proofs for the dedup window.
  for (const auto& journal : journals) {
    std::filesystem::path dest = journal;
    dest.replace_extension();  // "<name>.part" -> "<name>"
    const std::string store_name = dest.filename().string();
    const std::filesystem::path log_path = request_log_path(dest);
    consumed_logs.insert(log_path);

    const auto bytes = try_read_bytes(journal);
    JournalScan scan;
    if (bytes) scan = scan_sequence_journal(*bytes);
    try {
      if (!bytes) {
        throw ContainerError(ContainerErrc::kIoError,
                             "journal unreadable: " + journal.string());
      }
      auto writer = std::make_unique<SequenceWriter>(
          SequenceWriter::resume(dest, options));
      const std::uint64_t committed = writer->steps_written();
      result.report.journals_resumed += 1;
      result.report.steps_recovered += committed;
      if (scan.torn_bytes > 0) {
        result.report.notes.push_back(
            store_name + ": truncated " + std::to_string(scan.torn_bytes) +
            " torn byte(s), resumed at step " + std::to_string(committed));
      } else {
        result.report.notes.push_back(store_name + ": resumed at step " +
                                      std::to_string(committed));
      }
      // An intent whose step lies below the committed count proves its
      // append durably committed: the retried request must replay, not
      // re-append.  Intents at/past the committed count died before their
      // commit fsync -- drop them and let the retry re-execute.  When a
      // step carries several intents (failed appends that were retried
      // under new tokens), only the LAST one can be the committing
      // append: intents are recorded immediately before their append, so
      // earlier intents for the same index are superseded failures.
      std::map<std::uint64_t, std::uint64_t> last_token_for_step;
      for (const auto& entry : scan_request_log(log_path)) {
        if (entry.token == 0) continue;
        last_token_for_step[entry.step] = entry.token;
      }
      for (const auto& [step, token] : last_token_for_step) {
        if (step >= committed) continue;
        const auto& info = scan.entries[static_cast<std::size_t>(step)];
        result.replayable[token] =
            ReplayableRequest{store_name, step, info.size};
      }
      result.sequences[store_name] =
          RecoveredSequence{std::move(writer), scan.entries};
    } catch (const std::exception& e) {
      // The journal itself is unusable: no committed prefix to serve, so
      // the only honest outcome is quarantine -- a client retry will
      // rebuild the sequence from scratch.
      result.report.notes.push_back(store_name + ": journal unrecoverable (" +
                                    std::string(e.what()) + ")");
      try {
        quarantine_file(dir, journal, std::string("journal unrecoverable: ") +
                                          e.what());
        result.report.journals_quarantined += 1;
      } catch (const std::exception& qe) {
        result.report.notes.push_back(store_name +
                                      ": quarantine failed: " + qe.what());
      }
      std::filesystem::remove(log_path, ec);
    }
  }

  // Orphaned request logs: the daemon died between finish()'s publish
  // rename and the log unlink.  The published archive is the evidence
  // now -- recover replay proofs from it and leave the file for the
  // server to unlink after adoption.
  for (const auto& log_path : request_logs) {
    if (consumed_logs.contains(log_path)) continue;
    std::filesystem::path dest = log_path;
    dest.replace_extension();  // "<name>.reqs" -> "<name>"
    const std::string store_name = dest.filename().string();
    if (!std::filesystem::exists(dest, ec)) {
      result.report.notes.push_back(store_name +
                                    ": stale request log (no archive)");
      continue;
    }
    try {
      const SequenceReader reader(dest);
      std::map<std::uint64_t, std::uint64_t> last_token_for_step;
      for (const auto& entry : scan_request_log(log_path)) {
        if (entry.token == 0) continue;
        last_token_for_step[entry.step] = entry.token;
      }
      for (const auto& [step, token] : last_token_for_step) {
        if (step >= reader.step_count()) continue;
        result.replayable[token] = ReplayableRequest{
            store_name, step,
            reader.step_info(static_cast<std::size_t>(step)).size};
      }
      result.report.notes.push_back(store_name +
                                    ": recovered intents from published "
                                    "archive");
    } catch (const std::exception& e) {
      result.report.notes.push_back(store_name +
                                    ": cannot read published archive for "
                                    "request log: " +
                                    e.what());
    }
  }
  result.report.tokens_recovered = result.replayable.size();

  // Pass 2: verify/repair/quarantine every published file.  Resumed
  // sequences' destinations are skipped -- their journal is the live
  // copy and the destination (if any) is the previous complete archive.
  ScrubOptions scrub_options;
  scrub_options.retry = options.retry;
  for (const auto& [name, sequence] : result.sequences) {
    scrub_options.skip.push_back(name);
  }
  result.report.scrub = scrub_store(dir, scrub_options);

  obs::count("recovery.journals_resumed", result.report.journals_resumed);
  obs::count("recovery.journals_quarantined",
             result.report.journals_quarantined);
  obs::count("recovery.steps_recovered", result.report.steps_recovered);
  obs::count("recovery.tokens_recovered", result.report.tokens_recovered);
  return result;
}

}  // namespace rmp::io
