#include "io/container.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "io/checksum.hpp"

namespace rmp::io {
namespace {

constexpr std::uint32_t kMagic = 0x50434D52;  // "RMCP"
constexpr std::uint32_t kVersion = 2;         // v2 appends a CRC-32 trailer

void append_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  append_bytes(out, &v, sizeof(v));
}
void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_bytes(out, &v, sizeof(v));
}
void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  append_bytes(out, s.data(), s.size());
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  void read(void* p, std::size_t n) {
    if (offset_ + n > bytes_.size()) {
      throw std::runtime_error("container: truncated input");
    }
    std::memcpy(p, bytes_.data() + offset_, n);
    offset_ += n;
  }
  std::uint32_t read_u32() {
    std::uint32_t v;
    read(&v, sizeof(v));
    return v;
  }
  std::uint64_t read_u64() {
    std::uint64_t v;
    read(&v, sizeof(v));
    return v;
  }
  std::string read_string() {
    const std::uint32_t n = read_u32();
    std::string s(n, '\0');
    read(s.data(), n);
    return s;
  }
  std::vector<std::uint8_t> read_blob() {
    const std::uint64_t n = read_u64();
    if (offset_ + n > bytes_.size()) {
      throw std::runtime_error("container: truncated section");
    }
    std::vector<std::uint8_t> blob(bytes_.begin() + offset_,
                                   bytes_.begin() + offset_ + n);
    offset_ += n;
    return blob;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

std::size_t Container::payload_bytes() const {
  std::size_t total = 0;
  for (const auto& s : sections) total += s.bytes.size();
  return total;
}

const Section* Container::find(const std::string& name) const {
  for (const auto& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Section& Container::add(std::string name, std::vector<std::uint8_t> bytes) {
  sections.push_back({std::move(name), std::move(bytes)});
  return sections.back();
}

std::vector<std::uint8_t> serialize(const Container& container) {
  std::vector<std::uint8_t> out;
  append_u32(out, kMagic);
  append_u32(out, kVersion);
  append_string(out, container.method);
  append_u64(out, container.nx);
  append_u64(out, container.ny);
  append_u64(out, container.nz);
  append_u32(out, static_cast<std::uint32_t>(container.sections.size()));
  for (const auto& section : container.sections) {
    append_string(out, section.name);
    append_u64(out, section.bytes.size());
    append_bytes(out, section.bytes.data(), section.bytes.size());
  }
  // Integrity trailer over everything written so far.
  append_u32(out, crc32(out));
  return out;
}

Container deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) {
    throw std::runtime_error("container: truncated input");
  }
  // Verify the CRC trailer before parsing anything.
  const std::size_t body_size = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body_size, sizeof(stored_crc));
  if (crc32(bytes.first(body_size)) != stored_crc) {
    throw std::runtime_error("container: checksum mismatch (corrupt data)");
  }

  Cursor cursor(bytes.first(body_size));
  if (cursor.read_u32() != kMagic) {
    throw std::runtime_error("container: bad magic");
  }
  if (cursor.read_u32() != kVersion) {
    throw std::runtime_error("container: unsupported version");
  }
  Container container;
  container.method = cursor.read_string();
  container.nx = cursor.read_u64();
  container.ny = cursor.read_u64();
  container.nz = cursor.read_u64();
  const std::uint32_t count = cursor.read_u32();
  container.sections.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    Section section;
    section.name = cursor.read_string();
    section.bytes = cursor.read_blob();
    container.sections.push_back(std::move(section));
  }
  return container;
}

void write_container(const std::filesystem::path& path,
                     const Container& container) {
  const auto bytes = serialize(container);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("write_container: cannot open " + path.string());
  }
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) {
    throw std::runtime_error("write_container: write failed");
  }
}

Container read_container(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    throw std::runtime_error("read_container: cannot open " + path.string());
  }
  const auto size = static_cast<std::size_t>(file.tellg());
  file.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  file.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
  if (!file) {
    throw std::runtime_error("read_container: read failed");
  }
  return deserialize(bytes);
}

}  // namespace rmp::io
