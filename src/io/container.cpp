#include "io/container.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>

#include "io/checksum.hpp"
#include "io/file_ops.hpp"
#include "obs/obs.hpp"

namespace rmp::io {
namespace {

constexpr std::uint32_t kMagic = 0x50434D52;  // "RMCP"
constexpr std::uint32_t kVersionV2 = 2;       // whole-file CRC trailer
constexpr std::uint32_t kVersionV3 = 3;       // per-section CRC + parity
constexpr std::uint32_t kVersionV4 = 4;       // v3 + explicit chunk index
constexpr std::uint32_t kFlagParity = 1u << 0;

void append_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  append_bytes(out, &v, sizeof(v));
}
void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_bytes(out, &v, sizeof(v));
}
void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  append_bytes(out, s.data(), s.size());
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return bytes_.size() - offset_; }

  void read(void* p, std::size_t n) {
    // Compare against the remaining budget, never `offset_ + n`: the sum
    // wraps for adversarial n near UINT64_MAX and would pass the check.
    if (n > remaining()) {
      throw ContainerError(ContainerErrc::kTruncated,
                           "truncated input (need " + std::to_string(n) +
                               " bytes, have " + std::to_string(remaining()) +
                               ")");
    }
    std::memcpy(p, bytes_.data() + offset_, n);
    offset_ += n;
  }
  void skip(std::uint64_t n) {
    if (n > remaining()) {
      throw ContainerError(ContainerErrc::kTruncated, "truncated input");
    }
    offset_ += static_cast<std::size_t>(n);
  }
  std::uint32_t read_u32() {
    std::uint32_t v;
    read(&v, sizeof(v));
    return v;
  }
  std::uint64_t read_u64() {
    std::uint64_t v;
    read(&v, sizeof(v));
    return v;
  }
  std::string read_string() {
    const std::uint32_t n = read_u32();
    // Validate against the remaining bytes *before* allocating: a corrupt
    // length must not trigger a multi-GiB allocation.
    if (n > remaining()) {
      throw ContainerError(ContainerErrc::kTruncated,
                           "string length " + std::to_string(n) +
                               " exceeds remaining " +
                               std::to_string(remaining()) + " bytes");
    }
    std::string s(n, '\0');
    read(s.data(), n);
    return s;
  }
  std::vector<std::uint8_t> read_blob() {
    const std::uint64_t n = read_u64();
    if (n > remaining()) {
      throw ContainerError(ContainerErrc::kTruncated,
                           "section length " + std::to_string(n) +
                               " exceeds remaining " +
                               std::to_string(remaining()) + " bytes");
    }
    std::vector<std::uint8_t> blob(bytes_.begin() + offset_,
                                   bytes_.begin() + offset_ + n);
    offset_ += static_cast<std::size_t>(n);
    return blob;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

std::size_t max_section_size(const Container& container) {
  std::size_t max = 0;
  for (const auto& s : container.sections) max = std::max(max, s.bytes.size());
  return max;
}

// ---------------------------------------------------------------------------
// v3: [magic, version, flags, method, dims, count,
//      directory {name, size, crc}*, (parity_size, parity_crc)?, header_crc]
//     [payload 0]...[payload n-1][parity bytes?]
// v4: identical except each directory entry is {name, offset, size, crc}
//     with `offset` relative to the first payload byte -- the chunk index
//     that lets a seekable reader pread one section without a scan.

struct DirEntry {
  std::string name;
  std::uint64_t offset = 0;  ///< payload-relative; implicit (cumulative) in v3
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

struct HeaderV3 {
  std::uint32_t version = 0;
  Container shell;  ///< method + dims, sections empty
  std::vector<DirEntry> dir;
  bool parity = false;
  std::uint64_t parity_size = 0;
  std::uint32_t parity_crc = 0;
  std::size_t payload_offset = 0;  ///< first payload byte
  std::size_t total_size = 0;      ///< full container footprint
};

/// Shared v3/v4 header parse.  `bytes` may be a prefix of the archive
/// (ContainerFileReader grows its read window on kTruncated); `available`
/// is the full archive footprint budget the payloads are validated
/// against -- bytes.size() for in-memory parses, the file size for
/// seekable reads.
HeaderV3 parse_v34_header(std::span<const std::uint8_t> bytes,
                          std::uint64_t available) {
  Cursor cursor(bytes);
  if (cursor.read_u32() != kMagic) {
    throw ContainerError(ContainerErrc::kBadMagic, "bad magic");
  }
  HeaderV3 header;
  header.version = cursor.read_u32();
  if (header.version != kVersionV3 && header.version != kVersionV4) {
    throw ContainerError(ContainerErrc::kBadVersion,
                         "not a v3/v4 container");
  }
  const std::uint32_t flags = cursor.read_u32();
  if ((flags & ~kFlagParity) != 0) {
    throw ContainerError(ContainerErrc::kHeaderCorrupt,
                         "unknown flag bits set");
  }
  header.parity = (flags & kFlagParity) != 0;
  header.shell.method = cursor.read_string();
  header.shell.nx = cursor.read_u64();
  header.shell.ny = cursor.read_u64();
  header.shell.nz = cursor.read_u64();
  const std::uint32_t count = cursor.read_u32();
  // A directory entry occupies at least 16 bytes (24 in v4), so a count
  // that cannot fit in the remaining input is corruption -- reject before
  // reserving.
  const std::size_t min_entry = header.version == kVersionV4 ? 24 : 16;
  if (count > cursor.remaining() / min_entry) {
    throw ContainerError(ContainerErrc::kTruncated,
                         "section directory larger than input");
  }
  header.dir.reserve(count);
  std::uint64_t running = 0;
  for (std::uint32_t s = 0; s < count; ++s) {
    DirEntry entry;
    entry.name = cursor.read_string();
    if (header.version == kVersionV4) {
      entry.offset = cursor.read_u64();
      // The chunk index must describe exactly the contiguous layout the
      // serializer emits: gaps or overlaps would let a corrupt entry
      // alias another section's bytes past its CRC domain.
      if (entry.offset != running) {
        throw ContainerError(ContainerErrc::kIndexCorrupt,
                             "chunk index offset mismatch for section",
                             entry.name);
      }
    } else {
      entry.offset = running;
    }
    entry.size = cursor.read_u64();
    entry.crc = cursor.read_u32();
    constexpr std::uint64_t kMaxU64 = std::numeric_limits<std::uint64_t>::max();
    if (entry.size > kMaxU64 - running) {
      throw ContainerError(ContainerErrc::kTruncated,
                           "section sizes overflow");
    }
    running += entry.size;
    header.dir.push_back(std::move(entry));
  }
  if (header.parity) {
    header.parity_size = cursor.read_u64();
    header.parity_crc = cursor.read_u32();
  }
  const std::size_t crc_offset = cursor.offset();
  const std::uint32_t stored_crc = cursor.read_u32();
  if (crc32(bytes.first(crc_offset)) != stored_crc) {
    throw ContainerError(ContainerErrc::kHeaderCorrupt,
                         "header checksum mismatch");
  }
  header.payload_offset = cursor.offset();

  // Overflow-safe footprint: sizes are attacker-controlled u64s.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t need = running;
  if (header.parity) {
    if (header.parity_size > kMax - need) {
      throw ContainerError(ContainerErrc::kTruncated,
                           "parity size overflows");
    }
    need += header.parity_size;
  }
  if (header.payload_offset > available ||
      need > available - header.payload_offset) {
    throw ContainerError(ContainerErrc::kTruncated,
                         "payloads extend past end of input");
  }
  header.total_size = header.payload_offset + static_cast<std::size_t>(need);
  return header;
}

struct ParsedV3 {
  Container container;
  ReadReport report;
};

/// Shared strict/salvage v3/v4 reader.  In strict mode an unrepaired
/// section throws; in salvage mode it is dropped and recorded in the
/// report.
ParsedV3 read_v3(std::span<const std::uint8_t> bytes, bool strict) {
  const HeaderV3 header = parse_v34_header(bytes, bytes.size());
  if (bytes.size() < header.total_size) {
    throw ContainerError(ContainerErrc::kTruncated,
                         "input shorter than container footprint");
  }
  if (bytes.size() > header.total_size) {
    throw ContainerError(ContainerErrc::kTrailingGarbage,
                         "input extends past container footprint");
  }

  std::vector<std::span<const std::uint8_t>> payloads;
  payloads.reserve(header.dir.size());
  std::size_t offset = header.payload_offset;
  std::size_t expected_parity = 0;
  for (const DirEntry& entry : header.dir) {
    payloads.push_back(
        bytes.subspan(header.payload_offset +
                          static_cast<std::size_t>(entry.offset),
                      static_cast<std::size_t>(entry.size)));
    offset += static_cast<std::size_t>(entry.size);
    expected_parity =
        std::max(expected_parity, static_cast<std::size_t>(entry.size));
  }
  const std::span<const std::uint8_t> parity =
      header.parity
          ? bytes.subspan(offset, static_cast<std::size_t>(header.parity_size))
          : std::span<const std::uint8_t>{};

  ParsedV3 result;
  result.report.version = header.version;
  result.report.parity_present = header.parity;
  result.report.parity_valid =
      header.parity && header.parity_size == expected_parity &&
      crc32(parity) == header.parity_crc;

  std::vector<bool> intact(header.dir.size(), true);
  std::size_t damaged_count = 0;
  {
    const obs::ScopedSpan span("crc-verify");
    for (std::size_t s = 0; s < header.dir.size(); ++s) {
      intact[s] = crc32(payloads[s]) == header.dir[s].crc;
      if (!intact[s]) ++damaged_count;
    }
  }
  obs::count("io.container.sections_verified", header.dir.size());
  if (damaged_count > 0) {
    obs::count("io.container.sections_damaged", damaged_count);
  }

  // A single damaged section can be rebuilt from parity XOR the others.
  std::optional<std::size_t> repaired_index;
  std::vector<std::uint8_t> repaired_bytes;
  if (damaged_count == 1 && result.report.parity_valid) {
    const std::size_t target = static_cast<std::size_t>(
        std::find(intact.begin(), intact.end(), false) - intact.begin());
    repaired_bytes.assign(parity.begin(), parity.end());
    for (std::size_t s = 0; s < payloads.size(); ++s) {
      if (s == target) continue;
      for (std::size_t k = 0; k < payloads[s].size(); ++k) {
        repaired_bytes[k] ^= payloads[s][k];
      }
    }
    repaired_bytes.resize(static_cast<std::size_t>(header.dir[target].size));
    if (crc32(repaired_bytes) == header.dir[target].crc) {
      repaired_index = target;
      obs::count("io.container.parity_repairs");
    }
  }

  result.container = header.shell;
  for (std::size_t s = 0; s < header.dir.size(); ++s) {
    SectionHealth health;
    health.name = header.dir[s].name;
    health.bytes = header.dir[s].size;
    if (intact[s]) {
      health.state = SectionState::kOk;
      result.container.add(header.dir[s].name,
                           {payloads[s].begin(), payloads[s].end()});
    } else if (repaired_index && *repaired_index == s) {
      health.state = SectionState::kRepaired;
      result.container.add(header.dir[s].name, repaired_bytes);
    } else {
      health.state = SectionState::kDamaged;
      if (strict) {
        throw ContainerError(ContainerErrc::kSectionCorrupt,
                             "payload checksum mismatch", header.dir[s].name);
      }
    }
    result.report.sections.push_back(std::move(health));
  }
  return result;
}

// ---------------------------------------------------------------------------
// v2 (legacy): [magic, version, method, dims, count,
//               {name, size, bytes}*][whole-file crc]

Container deserialize_v2(std::span<const std::uint8_t> bytes,
                         ReadReport* report) {
  if (bytes.size() < sizeof(std::uint32_t)) {
    throw ContainerError(ContainerErrc::kTruncated, "truncated input");
  }
  const std::size_t body_size = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body_size, sizeof(stored_crc));
  if (crc32(bytes.first(body_size)) != stored_crc) {
    throw ContainerError(ContainerErrc::kChecksumMismatch,
                         "v2 whole-file checksum mismatch (corrupt data)");
  }

  Cursor cursor(bytes.first(body_size));
  if (cursor.read_u32() != kMagic) {
    throw ContainerError(ContainerErrc::kBadMagic, "bad magic");
  }
  if (cursor.read_u32() != kVersionV2) {
    throw ContainerError(ContainerErrc::kBadVersion, "not a v2 container");
  }
  Container container;
  container.method = cursor.read_string();
  container.nx = cursor.read_u64();
  container.ny = cursor.read_u64();
  container.nz = cursor.read_u64();
  const std::uint32_t count = cursor.read_u32();
  if (count > cursor.remaining() / 12) {
    throw ContainerError(ContainerErrc::kTruncated,
                         "section count larger than input");
  }
  container.sections.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    Section section;
    section.name = cursor.read_string();
    section.bytes = cursor.read_blob();
    container.sections.push_back(std::move(section));
  }
  if (cursor.remaining() != 0) {
    throw ContainerError(ContainerErrc::kTrailingGarbage,
                         "v2 body extends past last section");
  }
  if (report != nullptr) {
    *report = ReadReport{};
    report->version = kVersionV2;
    for (const auto& section : container.sections) {
      report->sections.push_back(
          {section.name, SectionState::kOk, section.bytes.size()});
    }
  }
  return container;
}

std::uint32_t peek_version(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 2 * sizeof(std::uint32_t)) {
    throw ContainerError(ContainerErrc::kTruncated, "truncated input");
  }
  std::uint32_t magic = 0, version = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + sizeof(magic), sizeof(version));
  if (magic != kMagic) {
    throw ContainerError(ContainerErrc::kBadMagic, "bad magic");
  }
  return version;
}

std::vector<std::uint8_t> read_file_bytes(const std::filesystem::path& path,
                                          const char* who) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    throw ContainerError(ContainerErrc::kIoError,
                         std::string(who) + ": cannot open " + path.string());
  }
  const std::streamoff end = file.tellg();
  if (end < 0) {
    throw ContainerError(ContainerErrc::kIoError,
                         std::string(who) + ": cannot stat " + path.string());
  }
  if (end == 0) {
    throw ContainerError(ContainerErrc::kTruncated,
                         std::string(who) + ": " + path.string() +
                             " is empty");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(end));
  file.seekg(0);
  file.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!file) {
    throw ContainerError(ContainerErrc::kIoError,
                         std::string(who) + ": read failed on " +
                             path.string());
  }
  return bytes;
}

}  // namespace

std::size_t Container::payload_bytes() const {
  std::size_t total = 0;
  for (const auto& s : sections) total += s.bytes.size();
  return total;
}

const Section* Container::find(const std::string& name) const {
  for (const auto& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Section& Container::add(std::string name, std::vector<std::uint8_t> bytes) {
  sections.push_back({std::move(name), std::move(bytes)});
  return sections.back();
}

bool ReadReport::complete() const {
  return std::none_of(sections.begin(), sections.end(), [](const auto& s) {
    return s.state == SectionState::kDamaged;
  });
}

bool ReadReport::repaired() const {
  return std::any_of(sections.begin(), sections.end(), [](const auto& s) {
    return s.state == SectionState::kRepaired;
  });
}

std::vector<std::string> ReadReport::damaged() const {
  std::vector<std::string> names;
  for (const auto& s : sections) {
    if (s.state == SectionState::kDamaged) names.push_back(s.name);
  }
  return names;
}

std::vector<std::uint8_t> serialize(const Container& container,
                                    const SerializeOptions& options) {
  const obs::ScopedSpan span("container-serialize");
  // Parity = byte-wise XOR of all payloads, each zero-padded to the size
  // of the largest section; XOR-ing parity with all-but-one payload
  // reconstructs the missing one.
  std::vector<std::uint8_t> parity;
  if (options.with_parity) {
    parity.assign(max_section_size(container), 0);
    for (const auto& section : container.sections) {
      for (std::size_t k = 0; k < section.bytes.size(); ++k) {
        parity[k] ^= section.bytes[k];
      }
    }
  }

  std::vector<std::uint8_t> out;
  append_u32(out, kMagic);
  append_u32(out, options.with_chunk_index ? kVersionV4 : kVersionV3);
  append_u32(out, options.with_parity ? kFlagParity : 0u);
  append_string(out, container.method);
  append_u64(out, container.nx);
  append_u64(out, container.ny);
  append_u64(out, container.nz);
  append_u32(out, static_cast<std::uint32_t>(container.sections.size()));
  std::uint64_t payload_cursor = 0;
  for (const auto& section : container.sections) {
    append_string(out, section.name);
    if (options.with_chunk_index) {
      append_u64(out, payload_cursor);
      payload_cursor += section.bytes.size();
    }
    append_u64(out, section.bytes.size());
    append_u32(out, crc32(section.bytes));
  }
  if (options.with_parity) {
    append_u64(out, parity.size());
    append_u32(out, crc32(parity));
  }
  append_u32(out, crc32(out));  // header CRC

  for (const auto& section : container.sections) {
    append_bytes(out, section.bytes.data(), section.bytes.size());
  }
  append_bytes(out, parity.data(), parity.size());
  return out;
}

Container deserialize(std::span<const std::uint8_t> bytes,
                      ReadReport* report) {
  const std::uint32_t version = peek_version(bytes);
  if (version == kVersionV2) return deserialize_v2(bytes, report);
  if (version == kVersionV3 || version == kVersionV4) {
    ParsedV3 parsed = read_v3(bytes, /*strict=*/true);
    if (report != nullptr) *report = std::move(parsed.report);
    return std::move(parsed.container);
  }
  throw ContainerError(ContainerErrc::kBadVersion,
                       "unsupported version " + std::to_string(version));
}

Container deserialize_salvage(std::span<const std::uint8_t> bytes,
                              ReadReport* report) {
  const std::uint32_t version = peek_version(bytes);
  // v2 has a single integrity domain: a checksum mismatch cannot be
  // localized, so salvage degenerates to the strict read.
  if (version == kVersionV2) return deserialize_v2(bytes, report);
  if (version == kVersionV3 || version == kVersionV4) {
    ParsedV3 parsed = read_v3(bytes, /*strict=*/false);
    if (report != nullptr) *report = std::move(parsed.report);
    return std::move(parsed.container);
  }
  throw ContainerError(ContainerErrc::kBadVersion,
                       "unsupported version " + std::to_string(version));
}

std::optional<std::size_t> probe_container(
    std::span<const std::uint8_t> bytes) noexcept {
  try {
    const std::uint32_t version = peek_version(bytes);
    if (version == kVersionV3 || version == kVersionV4) {
      return parse_v34_header(bytes, bytes.size()).total_size;
    }
    if (version == kVersionV2) {
      // Walk the structure to find the candidate end, then demand the
      // whole-file CRC holds -- a corrupt length field would otherwise
      // send the walk (and the scan resting on it) anywhere.
      Cursor cursor(bytes);
      cursor.skip(2 * sizeof(std::uint32_t));
      (void)cursor.read_string();          // method
      cursor.skip(3 * sizeof(std::uint64_t));
      const std::uint32_t count = cursor.read_u32();
      if (count > cursor.remaining() / 12) return std::nullopt;
      for (std::uint32_t s = 0; s < count; ++s) {
        (void)cursor.read_string();
        cursor.skip(cursor.read_u64());
      }
      const std::size_t body = cursor.offset();
      const std::uint32_t stored = cursor.read_u32();
      if (crc32(bytes.first(body)) != stored) return std::nullopt;
      return cursor.offset();
    }
    return std::nullopt;
  } catch (const ContainerError&) {
    return std::nullopt;
  }
}

void write_container(const std::filesystem::path& path,
                     const Container& container,
                     const SerializeOptions& options) {
  const obs::ScopedSpan span("container-write");
  const auto bytes = serialize(container, options);
  obs::count("io.container.bytes_written", bytes.size());
  // Durable atomic publish (DESIGN.md §10): unique temp next to `path`,
  // write (transient errors retried), fsync, rename, fsync parent dir.
  // The temp is removed on every failure path and errors carry the OS
  // error text.
  atomic_publish_bytes(path, bytes, "write_container", options.retry);
}

Container read_container(const std::filesystem::path& path) {
  const obs::ScopedSpan span("container-read");
  const auto bytes = read_file_bytes(path, "read_container");
  obs::count("io.container.bytes_read", bytes.size());
  return deserialize(bytes);
}

Container read_container_salvage(const std::filesystem::path& path,
                                 ReadReport* report) {
  const obs::ScopedSpan span("container-read");
  const auto bytes = read_file_bytes(path, "read_container_salvage");
  obs::count("io.container.bytes_read", bytes.size());
  return deserialize_salvage(bytes, report);
}

// ---------------------------------------------------------------------------
// ContainerFileReader

ContainerFileReader::ContainerFileReader(const std::filesystem::path& path,
                                         const RetryPolicy& policy)
    : file_(ReadFile::open(path, "ContainerFileReader", policy)) {
  const obs::ScopedSpan span("container-open-seekable");
  const std::uint64_t size = file_.size();
  if (size == 0) {
    throw ContainerError(ContainerErrc::kTruncated,
                         path.string() + " is empty");
  }
  // The header length is not known until it parses; read a window and
  // double it on kTruncated until the parse fits (or the window is the
  // whole file, at which point kTruncated is real).
  std::vector<std::uint8_t> prefix;
  std::size_t window =
      static_cast<std::size_t>(std::min<std::uint64_t>(size, 4096));
  HeaderV3 header;
  for (;;) {
    prefix.resize(window);
    file_.read_exact_at(0, prefix.data(), window);
    try {
      if (peek_version(prefix) == kVersionV2) {
        throw ContainerError(
            ContainerErrc::kBadVersion,
            "v2 containers have one whole-file integrity domain and "
            "cannot be read seekably; use read_container");
      }
      header = parse_v34_header(prefix, size);
      break;
    } catch (const ContainerError& error) {
      if (error.code() == ContainerErrc::kTruncated && window < size) {
        window = static_cast<std::size_t>(
            std::min<std::uint64_t>(size, std::uint64_t{window} * 2));
        continue;
      }
      throw;
    }
  }
  if (size > header.total_size) {
    throw ContainerError(ContainerErrc::kTrailingGarbage,
                         "file extends past container footprint");
  }
  version_ = header.version;
  shell_ = std::move(header.shell);
  sections_.reserve(header.dir.size());
  for (const DirEntry& entry : header.dir) {
    sections_.push_back({entry.name, header.payload_offset + entry.offset,
                         entry.size, entry.crc});
  }
}

const SectionInfo* ContainerFileReader::find(
    const std::string& name) const noexcept {
  for (const auto& info : sections_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::vector<std::uint8_t> ContainerFileReader::read_section(
    const SectionInfo& info) const {
  // Re-validate against the file footprint: the caller may hand us a
  // SectionInfo it fabricated, not one of ours.
  if (info.offset > file_.size() || info.size > file_.size() - info.offset) {
    throw ContainerError(ContainerErrc::kTruncated,
                         "section extends past end of file", info.name);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(info.size));
  file_.read_exact_at(info.offset, bytes.data(), bytes.size());
  obs::count("io.container.sections_verified");
  if (crc32(bytes) != info.crc) {
    obs::count("io.container.sections_damaged");
    throw ContainerError(ContainerErrc::kSectionCorrupt,
                         "payload checksum mismatch", info.name);
  }
  return bytes;
}

std::vector<std::uint8_t> ContainerFileReader::read_section(
    const std::string& name) const {
  const SectionInfo* info = find(name);
  if (info == nullptr) {
    throw ContainerError(ContainerErrc::kMissingSection,
                         "no such section in chunk index", name);
  }
  return read_section(*info);
}

Container ContainerFileReader::read_all() const {
  Container container = shell_;
  for (const auto& info : sections_) {
    container.add(info.name, read_section(info));
  }
  return container;
}

}  // namespace rmp::io
