#include "io/sequence_file.hpp"

#include <algorithm>
#include <cstring>

#include "obs/obs.hpp"

namespace rmp::io {
namespace {

constexpr std::uint64_t kSequenceMagic = 0x51455351504D5252ULL;  // "RRMPQSEQ"

// Little-endian byte pattern of the container magic ("RMCP" as u32
// 0x50434D52), used by the forward-scan index rebuild.
constexpr std::uint8_t kContainerMagicBytes[4] = {0x52, 0x4D, 0x43, 0x50};

}  // namespace

std::size_t SequenceScanReport::ok_count() const {
  return static_cast<std::size_t>(
      std::count_if(steps.begin(), steps.end(),
                    [](const StepHealth& s) { return s.ok; }));
}

SequenceWriter::SequenceWriter(const std::filesystem::path& path,
                               const SerializeOptions& options)
    : path_(path), tmp_path_(path), options_(options) {
  tmp_path_ += ".tmp";
  file_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!file_) {
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceWriter: cannot open " + tmp_path_.string());
  }
}

SequenceWriter::~SequenceWriter() {
  if (!finished_) {
    try {
      finish();
    } catch (...) {
      // Destructors must not throw; an explicit finish() surfaces errors.
    }
  }
}

std::size_t SequenceWriter::append(const Container& container) {
  if (finished_) {
    throw std::logic_error("SequenceWriter: append after finish");
  }
  const auto bytes = serialize(container, options_);
  const auto offset = static_cast<std::uint64_t>(file_.tellp());
  file_.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  if (!file_) {
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceWriter: write failed");
  }
  index_.push_back({offset, bytes.size()});
  obs::count("io.sequence.steps_written");
  obs::count("io.sequence.bytes_written", bytes.size());
  return index_.size() - 1;
}

void SequenceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  for (const Entry& entry : index_) {
    file_.write(reinterpret_cast<const char*>(&entry.offset), 8);
    file_.write(reinterpret_cast<const char*>(&entry.size), 8);
  }
  const std::uint64_t count = index_.size();
  file_.write(reinterpret_cast<const char*>(&count), 8);
  file_.write(reinterpret_cast<const char*>(&kSequenceMagic), 8);
  file_.flush();
  if (!file_) {
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceWriter: finish failed");
  }
  file_.close();
  // Atomic publish: the destination either keeps its previous content or
  // becomes the complete new archive, never a torn intermediate.
  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  if (ec) {
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceWriter: cannot rename " +
                             tmp_path_.string() + " into " + path_.string());
  }
}

SequenceReader::SequenceReader(const std::filesystem::path& path,
                               const SequenceReadOptions& options)
    : file_(path, std::ios::binary | std::ios::ate) {
  if (!file_) {
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceReader: cannot open " + path.string());
  }
  const auto file_size = static_cast<std::uint64_t>(file_.tellg());

  // Try the trailing index first; fall back to a forward scan whenever it
  // is missing or implausible (crashed writer, truncated copy, corrupt
  // trailer bytes).
  std::string index_problem;
  if (file_size < 16) {
    index_problem = "file too small for a trailer";
  } else {
    file_.seekg(static_cast<std::streamoff>(file_size - 16));
    std::uint64_t count = 0, magic = 0;
    file_.read(reinterpret_cast<char*>(&count), 8);
    file_.read(reinterpret_cast<char*>(&magic), 8);
    if (!file_ || magic != kSequenceMagic) {
      index_problem = "bad trailer magic";
    } else if (count > (file_size - 16) / 16) {
      index_problem = "index count larger than file";
    } else {
      const std::uint64_t index_bytes = count * 16;
      const std::uint64_t data_end = file_size - 16 - index_bytes;
      file_.seekg(static_cast<std::streamoff>(data_end));
      index_.resize(count);
      for (auto& entry : index_) {
        file_.read(reinterpret_cast<char*>(&entry.offset), 8);
        file_.read(reinterpret_cast<char*>(&entry.size), 8);
      }
      if (!file_) {
        index_problem = "index read failed";
        index_.clear();
      } else {
        // Every entry must lie inside the data region (overflow-safe).
        for (const Entry& entry : index_) {
          if (entry.offset > data_end || entry.size > data_end - entry.offset) {
            index_problem = "index entry out of bounds";
            index_.clear();
            break;
          }
        }
      }
    }
  }
  if (!index_problem.empty()) {
    file_.clear();
    if (!options.allow_index_rebuild) {
      throw ContainerError(ContainerErrc::kIndexCorrupt,
                           "SequenceReader: " + index_problem);
    }
    rebuild_index(file_size);
    rebuilt_ = true;
    obs::count("io.sequence.index_rebuilds");
  }
}

void SequenceReader::rebuild_index(std::uint64_t file_size) {
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(file_size));
  file_.seekg(0);
  file_.read(reinterpret_cast<char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file_) {
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceReader: cannot read file for index rebuild");
  }
  const std::span<const std::uint8_t> span(bytes);
  std::size_t pos = 0;
  while (pos + sizeof(kContainerMagicBytes) <= bytes.size()) {
    const auto it = std::search(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                                bytes.end(), std::begin(kContainerMagicBytes),
                                std::end(kContainerMagicBytes));
    if (it == bytes.end()) break;
    const auto candidate =
        static_cast<std::size_t>(it - bytes.begin());
    if (const auto size = probe_container(span.subspan(candidate))) {
      index_.push_back({candidate, *size});
      pos = candidate + *size;
    } else {
      // Not (or no longer) a readable container here; resume scanning one
      // byte further so later steps are still recovered.
      pos = candidate + 1;
    }
  }
  if (index_.empty()) {
    throw ContainerError(
        ContainerErrc::kIndexCorrupt,
        "SequenceReader: no trailing index and no recoverable steps");
  }
}

std::vector<std::uint8_t> SequenceReader::read_step_bytes(std::size_t step) {
  if (step >= index_.size()) {
    throw std::out_of_range("SequenceReader: step out of range");
  }
  const Entry& entry = index_[step];
  file_.seekg(static_cast<std::streamoff>(entry.offset));
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(entry.size));
  file_.read(reinterpret_cast<char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file_) {
    file_.clear();
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceReader: step read failed");
  }
  return bytes;
}

Container SequenceReader::read_step(std::size_t step) {
  return deserialize(read_step_bytes(step));
}

std::vector<Container> SequenceReader::read_all() {
  std::vector<Container> containers;
  containers.reserve(index_.size());
  for (std::size_t s = 0; s < index_.size(); ++s) {
    containers.push_back(read_step(s));
  }
  return containers;
}

std::vector<Container> SequenceReader::read_all_salvage(
    SequenceScanReport* report) {
  if (report != nullptr) {
    *report = SequenceScanReport{};
    report->index_rebuilt = rebuilt_;
  }
  std::vector<Container> containers;
  containers.reserve(index_.size());
  for (std::size_t s = 0; s < index_.size(); ++s) {
    StepHealth health;
    health.step = s;
    try {
      containers.push_back(read_step(s));
      health.ok = true;
      obs::count("io.sequence.steps_salvaged");
    } catch (const std::exception& e) {
      health.ok = false;
      health.error = e.what();
      obs::count("io.sequence.steps_lost");
    }
    if (report != nullptr) report->steps.push_back(std::move(health));
  }
  return containers;
}

}  // namespace rmp::io
