#include "io/sequence_file.hpp"

#include <cstring>
#include <stdexcept>

namespace rmp::io {
namespace {

constexpr std::uint64_t kSequenceMagic = 0x51455351504D5252ULL;  // "RRMPQSEQ"

}  // namespace

SequenceWriter::SequenceWriter(const std::filesystem::path& path)
    : file_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!file_) {
    throw std::runtime_error("SequenceWriter: cannot open " + path.string());
  }
}

SequenceWriter::~SequenceWriter() {
  if (!finished_) {
    try {
      finish();
    } catch (...) {
      // Destructors must not throw; an explicit finish() surfaces errors.
    }
  }
}

std::size_t SequenceWriter::append(const Container& container) {
  if (finished_) {
    throw std::logic_error("SequenceWriter: append after finish");
  }
  const auto bytes = serialize(container);
  const auto offset = static_cast<std::uint64_t>(file_.tellp());
  file_.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  if (!file_) {
    throw std::runtime_error("SequenceWriter: write failed");
  }
  index_.push_back({offset, bytes.size()});
  return index_.size() - 1;
}

void SequenceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  for (const Entry& entry : index_) {
    file_.write(reinterpret_cast<const char*>(&entry.offset), 8);
    file_.write(reinterpret_cast<const char*>(&entry.size), 8);
  }
  const std::uint64_t count = index_.size();
  file_.write(reinterpret_cast<const char*>(&count), 8);
  file_.write(reinterpret_cast<const char*>(&kSequenceMagic), 8);
  file_.flush();
  if (!file_) {
    throw std::runtime_error("SequenceWriter: finish failed");
  }
  file_.close();
}

SequenceReader::SequenceReader(const std::filesystem::path& path)
    : file_(path, std::ios::binary | std::ios::ate) {
  if (!file_) {
    throw std::runtime_error("SequenceReader: cannot open " + path.string());
  }
  const auto file_size = static_cast<std::uint64_t>(file_.tellg());
  if (file_size < 16) {
    throw std::runtime_error("SequenceReader: file too small");
  }
  file_.seekg(static_cast<std::streamoff>(file_size - 16));
  std::uint64_t count = 0, magic = 0;
  file_.read(reinterpret_cast<char*>(&count), 8);
  file_.read(reinterpret_cast<char*>(&magic), 8);
  if (magic != kSequenceMagic) {
    throw std::runtime_error("SequenceReader: bad trailer magic");
  }
  const std::uint64_t index_bytes = count * 16;
  if (file_size < 16 + index_bytes) {
    throw std::runtime_error("SequenceReader: truncated index");
  }
  file_.seekg(static_cast<std::streamoff>(file_size - 16 - index_bytes));
  index_.resize(count);
  for (auto& entry : index_) {
    file_.read(reinterpret_cast<char*>(&entry.offset), 8);
    file_.read(reinterpret_cast<char*>(&entry.size), 8);
  }
  if (!file_) {
    throw std::runtime_error("SequenceReader: index read failed");
  }
}

Container SequenceReader::read_step(std::size_t step) {
  if (step >= index_.size()) {
    throw std::out_of_range("SequenceReader: step out of range");
  }
  const Entry& entry = index_[step];
  file_.seekg(static_cast<std::streamoff>(entry.offset));
  std::vector<std::uint8_t> bytes(entry.size);
  file_.read(reinterpret_cast<char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file_) {
    throw std::runtime_error("SequenceReader: step read failed");
  }
  return deserialize(bytes);
}

std::vector<Container> SequenceReader::read_all() {
  std::vector<Container> containers;
  containers.reserve(index_.size());
  for (std::size_t s = 0; s < index_.size(); ++s) {
    containers.push_back(read_step(s));
  }
  return containers;
}

}  // namespace rmp::io
