#include "io/sequence_file.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "io/checksum.hpp"
#include "obs/obs.hpp"

namespace rmp::io {
namespace {

// Legacy trailer magic: 16-byte index entries (offset, size), no CRC.
constexpr std::uint64_t kSequenceMagic = 0x51455351504D5252ULL;  // "RRMPQSEQ"
// Current trailer magic: 20-byte entries (offset, size, crc32) -- the
// sequence-level chunk index.  Legacy archives still read back.
constexpr std::uint64_t kSequenceMagicV2 = 0x32455351504D5252ULL;  // ..."QSE2"

// Little-endian byte pattern of the container magic ("RMCP" as u32
// 0x50434D52), used by the forward-scan index rebuild.
constexpr std::uint8_t kContainerMagicBytes[4] = {0x52, 0x4D, 0x43, 0x50};

// Commit-marker magic ("RMSEQCM1" little-endian).  Chosen so its byte
// pattern cannot be mistaken for a container header by the forward scan.
constexpr std::uint64_t kCommitMagic = 0x314D435145534D52ULL;

// Marker layout: magic u64 | step u64 | size u64 | payload crc32 | marker
// crc32 (over the preceding 28 bytes).  Everything needed to decide "is
// the container right before me complete and uncorrupted" without any
// out-of-band state.
struct CommitMarker {
  std::uint64_t magic = kCommitMagic;
  std::uint64_t step = 0;
  std::uint64_t size = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t marker_crc = 0;
};
static_assert(sizeof(std::uint64_t) * 3 + sizeof(std::uint32_t) * 2 ==
              kSequenceCommitMarkerBytes);

std::vector<std::uint8_t> encode_marker(std::uint64_t step, std::uint64_t size,
                                        std::uint32_t payload_crc) {
  std::vector<std::uint8_t> bytes(kSequenceCommitMarkerBytes);
  std::uint8_t* out = bytes.data();
  auto put = [&out](const void* p, std::size_t n) {
    std::memcpy(out, p, n);
    out += n;
  };
  put(&kCommitMagic, 8);
  put(&step, 8);
  put(&size, 8);
  put(&payload_crc, 4);
  const std::uint32_t marker_crc =
      crc32(std::span<const std::uint8_t>(bytes.data(), 28));
  put(&marker_crc, 4);
  return bytes;
}

bool decode_marker(std::span<const std::uint8_t> bytes, CommitMarker* marker) {
  if (bytes.size() < kSequenceCommitMarkerBytes) return false;
  const std::uint8_t* in = bytes.data();
  auto get = [&in](void* p, std::size_t n) {
    std::memcpy(p, in, n);
    in += n;
  };
  get(&marker->magic, 8);
  get(&marker->step, 8);
  get(&marker->size, 8);
  get(&marker->payload_crc, 4);
  get(&marker->marker_crc, 4);
  return marker->magic == kCommitMagic &&
         marker->marker_crc == crc32(bytes.first(28));
}

std::vector<std::uint8_t> encode_trailer(
    const std::vector<JournalScan::Entry>& index) {
  std::vector<std::uint8_t> trailer;
  trailer.reserve(index.size() * 20 + 16);
  auto put_u64 = [&trailer](std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    trailer.insert(trailer.end(), p, p + 8);
  };
  auto put_u32 = [&trailer](std::uint32_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    trailer.insert(trailer.end(), p, p + 4);
  };
  for (const JournalScan::Entry& entry : index) {
    put_u64(entry.offset);
    put_u64(entry.size);
    put_u32(entry.crc);
  }
  put_u64(index.size());
  put_u64(kSequenceMagicV2);
  return trailer;
}

}  // namespace

std::size_t SequenceScanReport::ok_count() const {
  return static_cast<std::size_t>(
      std::count_if(steps.begin(), steps.end(),
                    [](const StepHealth& s) { return s.ok; }));
}

std::filesystem::path sequence_journal_path(
    const std::filesystem::path& path) {
  std::filesystem::path journal = path;
  journal += ".part";
  return journal;
}

JournalScan scan_sequence_journal(
    std::span<const std::uint8_t> bytes) noexcept {
  JournalScan scan;
  std::size_t pos = 0;
  std::uint64_t step = 0;
  while (pos < bytes.size()) {
    const auto sub = bytes.subspan(pos);
    const auto size = probe_container(sub);
    if (!size) break;
    if (*size > sub.size() ||
        sub.size() - *size < kSequenceCommitMarkerBytes) {
      break;  // container or its marker runs past the end: torn append
    }
    CommitMarker marker;
    if (!decode_marker(sub.subspan(*size), &marker)) break;
    if (marker.step != step || marker.size != *size ||
        marker.payload_crc != crc32(sub.first(*size))) {
      break;
    }
    scan.entries.push_back({pos, *size, marker.payload_crc});
    pos += *size + kSequenceCommitMarkerBytes;
    ++step;
  }
  scan.committed_bytes = pos;
  scan.torn_bytes = bytes.size() - pos;
  return scan;
}

SequenceWriter::SequenceWriter(const std::filesystem::path& path,
                               const SerializeOptions& options)
    : file_(DurableFile::create_exclusive(sequence_journal_path(path),
                                          "SequenceWriter", options.retry)),
      path_(path),
      journal_path_(sequence_journal_path(path)),
      options_(options) {}

SequenceWriter::SequenceWriter(ResumeTag, const std::filesystem::path& path,
                               const SerializeOptions& options)
    : file_(DurableFile::open_append(sequence_journal_path(path),
                                     "SequenceWriter::resume",
                                     options.retry)),
      path_(path),
      journal_path_(sequence_journal_path(path)),
      options_(options) {
  // Validate the committed prefix and drop any torn tail the crashed run
  // left behind (a half-written append or a partial trailer).
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(journal_path_, std::ios::binary | std::ios::ate);
    if (!in) {
      throw ContainerError(ContainerErrc::kIoError,
                           "SequenceWriter::resume: cannot read journal " +
                               journal_path_.string());
    }
    bytes.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!in) {
      throw ContainerError(ContainerErrc::kIoError,
                           "SequenceWriter::resume: cannot read journal " +
                               journal_path_.string());
    }
  }
  const JournalScan scan = scan_sequence_journal(bytes);
  if (scan.torn_bytes > 0) {
    file_.truncate(scan.committed_bytes);
    obs::count("io.sequence.resume_truncated_bytes", scan.torn_bytes);
  }
  index_ = scan.entries;
  committed_bytes_ = scan.committed_bytes;
  obs::count("io.sequence.resumes");
}

SequenceWriter SequenceWriter::resume(const std::filesystem::path& path,
                                      const SerializeOptions& options) {
  return SequenceWriter(ResumeTag{}, path, options);
}

SequenceWriter::SequenceWriter(SequenceWriter&& other) noexcept = default;

SequenceWriter::~SequenceWriter() {
  if (finished_ || !file_.is_open()) return;
  // Commit the prefix instead of attempting a full publish: every append
  // already fsync'd its commit marker, so closing the journal is enough
  // for an abandoned writer to leave a resumable file -- never a
  // half-written destination.  Failures cannot escape a destructor; they
  // are recorded instead.
  try {
    file_.close();
  } catch (...) {
    obs::count("io.sequence.destructor_finish_failures");
  }
}

std::size_t SequenceWriter::append(const Container& container) {
  if (finished_) {
    throw std::logic_error("SequenceWriter: append after finish");
  }
  if (failed_) {
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceWriter: earlier write failure on " +
                             journal_path_.string() +
                             "; reopen with SequenceWriter::resume");
  }
  // A deadline spent before any byte is written is NOT a write failure:
  // nothing is torn, so the writer stays serviceable for the next caller
  // (rmpd threads per-request deadlines through set_retry and the writer
  // outlives each request).
  if (options_.retry.expired()) {
    obs::count("io.retry.deadline_exceeded");
    throw ContainerError(ContainerErrc::kDeadlineExceeded,
                         "SequenceWriter: append on " +
                             journal_path_.string() +
                             " abandoned: wall-clock deadline exceeded");
  }
  const auto bytes = serialize(container, options_);
  const std::uint32_t payload_crc = crc32(bytes);
  const auto marker = encode_marker(index_.size(), bytes.size(), payload_crc);
  try {
    file_.write_all(bytes);
    file_.write_all(marker);
    // The fsync IS the commit: once it returns, this step survives any
    // crash.  A failure before it leaves a torn tail that resume() (or
    // the truncate below) discards.
    file_.sync();
  } catch (...) {
    failed_ = true;
    try {
      file_.truncate(committed_bytes_);
    } catch (...) {
      // Best effort: resume() re-derives the committed prefix anyway.
    }
    throw;
  }
  index_.push_back({committed_bytes_, bytes.size(), payload_crc});
  committed_bytes_ += bytes.size() + kSequenceCommitMarkerBytes;
  obs::count("io.sequence.steps_written");
  obs::count("io.sequence.bytes_written", bytes.size());
  return index_.size() - 1;
}

void SequenceWriter::finish() {
  if (finished_) return;
  if (failed_) {
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceWriter: earlier write failure on " +
                             journal_path_.string() +
                             "; reopen with SequenceWriter::resume");
  }
  const std::vector<std::uint8_t> trailer = encode_trailer(index_);
  try {
    file_.write_all(trailer);
    file_.sync();
    file_.close();
    // Atomic durable publish: rename the journal over the destination and
    // fsync the parent directory so the new entry survives power loss.
    // On failure the journal stays put -- it is the resumable artifact,
    // not a disposable temp.
    durable_rename(journal_path_, path_, "SequenceWriter::finish",
                   options_.retry);
  } catch (...) {
    failed_ = true;
    throw;
  }
  finished_ = true;
}

void write_sequence_archive(
    const std::filesystem::path& path,
    const std::vector<std::vector<std::uint8_t>>& steps,
    const RetryPolicy& policy) {
  std::vector<JournalScan::Entry> index;
  index.reserve(steps.size());
  std::size_t total = 16;
  for (const auto& step : steps)
    total += step.size() + kSequenceCommitMarkerBytes + 20;
  std::vector<std::uint8_t> bytes;
  bytes.reserve(total);
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const auto& step = steps[s];
    const std::uint32_t payload_crc = crc32(step);
    index.push_back({bytes.size(), step.size(), payload_crc});
    bytes.insert(bytes.end(), step.begin(), step.end());
    const auto marker = encode_marker(s, step.size(), payload_crc);
    bytes.insert(bytes.end(), marker.begin(), marker.end());
  }
  const auto trailer = encode_trailer(index);
  bytes.insert(bytes.end(), trailer.begin(), trailer.end());
  atomic_publish_bytes(path, bytes, "write_sequence_archive", policy);
}

SequenceReader::SequenceReader(const std::filesystem::path& path,
                               const SequenceReadOptions& options)
    : file_(ReadFile::open(path, "SequenceReader")) {
  const std::uint64_t file_size = file_.size();

  // Try the trailing index first; fall back to a forward scan whenever it
  // is missing or implausible (crashed writer, truncated copy, corrupt
  // trailer bytes).  Every read here checks its actual byte count: a file
  // truncated *inside* the trailer must land in the rebuild path below,
  // never produce an index built from stale or partial buffer contents.
  std::string index_problem;
  if (file_size < 16) {
    index_problem = "file too small for a trailer";
  } else {
    std::uint8_t tail[16];
    std::uint64_t count = 0, magic = 0;
    if (file_.read_at(file_size - 16, tail, sizeof(tail)) != sizeof(tail)) {
      index_problem = "trailer read came up short";
    } else {
      std::memcpy(&count, tail, 8);
      std::memcpy(&magic, tail + 8, 8);
      // Entry stride by trailer generation: 20 bytes with the CRC column,
      // 16 before it.
      std::size_t stride = 0;
      if (magic == kSequenceMagicV2) {
        stride = 20;
      } else if (magic == kSequenceMagic) {
        stride = 16;
      } else {
        index_problem = "bad trailer magic";
      }
      if (stride != 0) {
        if (count > (file_size - 16) / stride) {
          index_problem = "index count larger than file";
        } else {
          const std::uint64_t index_bytes = count * stride;
          const std::uint64_t data_end = file_size - 16 - index_bytes;
          std::vector<std::uint8_t> raw(
              static_cast<std::size_t>(index_bytes));
          if (file_.read_at(data_end, raw.data(), raw.size()) != raw.size()) {
            index_problem = "index read came up short";
          } else {
            index_.resize(static_cast<std::size_t>(count));
            const std::uint8_t* p = raw.data();
            for (auto& entry : index_) {
              std::memcpy(&entry.offset, p, 8);
              std::memcpy(&entry.size, p + 8, 8);
              if (stride == 20) {
                std::memcpy(&entry.crc, p + 16, 4);
                entry.has_crc = true;
              }
              p += stride;
            }
            // Every entry must lie inside the data region (overflow-safe).
            for (const StepInfo& entry : index_) {
              if (entry.offset > data_end ||
                  entry.size > data_end - entry.offset) {
                index_problem = "index entry out of bounds";
                index_.clear();
                break;
              }
            }
          }
        }
      }
    }
  }
  if (!index_problem.empty()) {
    index_.clear();
    if (!options.allow_index_rebuild) {
      throw ContainerError(ContainerErrc::kIndexCorrupt,
                           "SequenceReader: " + index_problem);
    }
    rebuild_index();
    rebuilt_ = true;
    obs::count("io.sequence.index_rebuilds");
  }
}

void SequenceReader::rebuild_index() {
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(file_.size()));
  if (file_.read_at(0, bytes.data(), bytes.size()) != bytes.size()) {
    throw ContainerError(ContainerErrc::kIoError,
                         "SequenceReader: cannot read file for index rebuild");
  }
  const std::span<const std::uint8_t> span(bytes);

  // A journaled file (crashed writer, or a trailer chopped off) carries a
  // validated commit marker after every step: trust that chain first.
  const JournalScan scan = scan_sequence_journal(span);
  for (const auto& entry : scan.entries) {
    index_.push_back({entry.offset, entry.size, entry.crc, true});
  }

  // Fall back to (or continue with) the magic-byte scan past the
  // committed prefix: recovers marker-less files written by older
  // versions and steps whose own marker was damaged but whose container
  // still decodes.
  std::size_t pos = static_cast<std::size_t>(scan.committed_bytes);
  while (pos + sizeof(kContainerMagicBytes) <= bytes.size()) {
    const auto it = std::search(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                                bytes.end(), std::begin(kContainerMagicBytes),
                                std::end(kContainerMagicBytes));
    if (it == bytes.end()) break;
    const auto candidate =
        static_cast<std::size_t>(it - bytes.begin());
    if (const auto size = probe_container(span.subspan(candidate))) {
      index_.push_back({candidate, *size});
      pos = candidate + *size;
    } else {
      // Not (or no longer) a readable container here; resume scanning one
      // byte further so later steps are still recovered.
      pos = candidate + 1;
    }
  }
  if (index_.empty()) {
    throw ContainerError(
        ContainerErrc::kIndexCorrupt,
        "SequenceReader: no trailing index and no recoverable steps");
  }
}

const StepInfo& SequenceReader::step_info(std::size_t step) const {
  if (step >= index_.size()) {
    throw std::out_of_range("SequenceReader: step out of range");
  }
  return index_[step];
}

std::vector<std::uint8_t> SequenceReader::read_step_bytes(
    std::size_t step) const {
  const StepInfo& entry = step_info(step);
  // Cap the allocation against the file footprint *before* reserving
  // anything: trailer entries are validated at open, but a rebuilt index
  // or a fabricated trailer must still fail typed here, not by bad_alloc.
  if (entry.offset > file_.size() ||
      entry.size > file_.size() - entry.offset) {
    throw ContainerError(ContainerErrc::kIndexCorrupt,
                         "SequenceReader: step " + std::to_string(step) +
                             " entry (offset " + std::to_string(entry.offset) +
                             ", size " + std::to_string(entry.size) +
                             ") extends past the " +
                             std::to_string(file_.size()) + "-byte file");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(entry.size));
  file_.read_exact_at(entry.offset, bytes.data(), bytes.size());
  obs::count("io.sequence.bytes_read", bytes.size());
  return bytes;
}

Container SequenceReader::read_step(std::size_t step) const {
  const StepInfo& entry = step_info(step);
  auto bytes = read_step_bytes(step);
  if (entry.has_crc && crc32(bytes) != entry.crc) {
    // The chunk CRC localizes damage to this step, but deserialize() is
    // the authority: it can still repair single-section corruption via
    // parity, so record the mismatch and let it decide.
    obs::count("io.sequence.step_crc_mismatch");
  }
  return deserialize(bytes);
}

std::vector<Container> SequenceReader::read_all() const {
  std::vector<Container> containers;
  containers.reserve(index_.size());
  for (std::size_t s = 0; s < index_.size(); ++s) {
    containers.push_back(read_step(s));
  }
  return containers;
}

std::vector<Container> SequenceReader::read_all_salvage(
    SequenceScanReport* report) const {
  if (report != nullptr) {
    *report = SequenceScanReport{};
    report->index_rebuilt = rebuilt_;
  }
  std::vector<Container> containers;
  containers.reserve(index_.size());
  for (std::size_t s = 0; s < index_.size(); ++s) {
    StepHealth health;
    health.step = s;
    try {
      containers.push_back(read_step(s));
      health.ok = true;
      obs::count("io.sequence.steps_salvaged");
    } catch (const std::exception& e) {
      health.ok = false;
      health.error = e.what();
      obs::count("io.sequence.steps_lost");
    }
    if (report != nullptr) report->steps.push_back(std::move(health));
  }
  return containers;
}

}  // namespace rmp::io
