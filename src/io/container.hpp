// On-disk container for preconditioned, compressed fields.
//
// A container is a small header (magic, version, method name, grid shape)
// followed by named byte sections -- typically "reduced" (the reduced
// representation) and "delta" (the compressed residual), but the format is
// generic so preconditioners can add sections (means, masks, ...).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rmp::io {

struct Section {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

struct Container {
  std::string method;  ///< preconditioner identifier, e.g. "pca"
  std::uint64_t nx = 1, ny = 1, nz = 1;
  std::vector<Section> sections;

  /// Total payload bytes across all sections (the "compressed size" used
  /// for compression-ratio accounting).
  std::size_t payload_bytes() const;

  const Section* find(const std::string& name) const;
  Section& add(std::string name, std::vector<std::uint8_t> bytes);
};

/// Serialize to a flat byte buffer / parse back.  Throws on malformed input.
std::vector<std::uint8_t> serialize(const Container& container);
Container deserialize(std::span<const std::uint8_t> bytes);

/// File round trip.
void write_container(const std::filesystem::path& path,
                     const Container& container);
Container read_container(const std::filesystem::path& path);

}  // namespace rmp::io
