// On-disk container for preconditioned, compressed fields.
//
// A container is a small header (magic, version, method name, grid shape)
// followed by named byte sections -- typically "reduced" (the reduced
// representation) and "delta" (the compressed residual), but the format is
// generic so preconditioners can add sections (means, masks, ...).
//
// Format v3 gives every section its own CRC-32 integrity domain (the
// header carries a section directory with per-payload checksums plus its
// own CRC) and can embed an XOR-parity block that repairs any single
// corrupted section.  v2 archives (whole-file CRC trailer) still read
// back unchanged.
//
// Format v4 additionally records an explicit payload offset in every
// directory entry -- a chunk index -- so a seekable reader
// (ContainerFileReader) can pread any single section in O(that section)
// bytes without touching the rest of the archive (DESIGN.md §12).  v4 is
// opt-in (SerializeOptions::with_chunk_index); default output stays v3
// and byte-identical to previous releases, and v2/v3 archives keep
// deserializing unchanged.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "io/container_error.hpp"
#include "io/file_ops.hpp"

namespace rmp::io {

struct Section {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

struct Container {
  std::string method;  ///< preconditioner identifier, e.g. "pca"
  std::uint64_t nx = 1, ny = 1, nz = 1;
  std::vector<Section> sections;

  /// Total payload bytes across all sections (the "compressed size" used
  /// for compression-ratio accounting).
  std::size_t payload_bytes() const;

  const Section* find(const std::string& name) const;
  Section& add(std::string name, std::vector<std::uint8_t> bytes);
};

struct SerializeOptions {
  /// Append an XOR-parity block (sized like the largest section) that can
  /// reconstruct any single corrupted section payload.
  bool with_parity = false;
  /// Emit format v4: directory entries carry explicit payload offsets (a
  /// chunk index) so ContainerFileReader can address any section in O(1).
  /// Off by default -- v3 output stays byte-identical for existing flows.
  bool with_chunk_index = false;
  /// Retry/backoff policy (including the optional wall-clock deadline)
  /// applied to every durable write this archive performs.  Affects only
  /// I/O behaviour, never the serialized bytes, so archives stay
  /// byte-identical across policies.
  RetryPolicy retry;
};

enum class SectionState : std::uint8_t {
  kOk,        ///< payload CRC verified
  kRepaired,  ///< payload CRC failed but the parity block rebuilt it
  kDamaged,   ///< payload CRC failed and no repair was possible
};

struct SectionHealth {
  std::string name;
  SectionState state = SectionState::kOk;
  std::uint64_t bytes = 0;
};

/// Forensic record of a deserialization: format version, parity status
/// and the per-section verdicts.
struct ReadReport {
  std::uint32_t version = 0;
  bool parity_present = false;
  bool parity_valid = false;
  std::vector<SectionHealth> sections;

  /// Every section is intact or was repaired.
  bool complete() const;
  /// At least one section was rebuilt from parity.
  bool repaired() const;
  /// Names of sections that are still damaged.
  std::vector<std::string> damaged() const;
};

/// Serialize to a flat byte buffer (format v3, or v4 when
/// options.with_chunk_index is set).
std::vector<std::uint8_t> serialize(const Container& container,
                                    const SerializeOptions& options = {});

/// Strict parse (accepts v2, v3 and v4).  Repairs a single corrupted
/// section via parity when present; throws ContainerError if anything
/// remains damaged.  `report`, when non-null, receives the integrity
/// record.
Container deserialize(std::span<const std::uint8_t> bytes,
                      ReadReport* report = nullptr);

/// Best-effort parse: damaged sections are dropped from the result (and
/// recorded in `report`) instead of aborting the whole read.  Throws only
/// when the envelope itself is unusable (bad magic, corrupt header, v2
/// whole-file checksum mismatch).
Container deserialize_salvage(std::span<const std::uint8_t> bytes,
                              ReadReport* report = nullptr);

/// If a well-formed container starts at bytes[0], returns its full
/// serialized footprint (used by SequenceReader's forward-scan index
/// rebuild); std::nullopt otherwise.  Never throws.
std::optional<std::size_t> probe_container(
    std::span<const std::uint8_t> bytes) noexcept;

/// File round trip.  Writes are atomic: a temp file is populated first
/// and renamed over `path`, so a crashed writer never leaves a torn
/// archive at the destination.
void write_container(const std::filesystem::path& path,
                     const Container& container,
                     const SerializeOptions& options = {});
Container read_container(const std::filesystem::path& path);
Container read_container_salvage(const std::filesystem::path& path,
                                 ReadReport* report = nullptr);

/// One entry of a seekable archive's chunk index.
struct SectionInfo {
  std::string name;
  std::uint64_t offset = 0;  ///< absolute file offset of the payload
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

/// Seekable archive reader: parses only the header, then serves
/// individual sections by positional read -- O(that section) bytes per
/// access instead of O(file).  Works on v4 (explicit chunk index) and v3
/// (offsets reconstructed from the directory's cumulative sizes); v2 has
/// a single whole-file integrity domain and is rejected with
/// kBadVersion.  All read methods are const and share one pread-backed
/// ReadFile, so a single reader serves N threads concurrently.
class ContainerFileReader {
 public:
  explicit ContainerFileReader(const std::filesystem::path& path,
                               const RetryPolicy& policy = {});

  std::uint32_t version() const noexcept { return version_; }
  /// Method + dims with no section payloads loaded.
  const Container& shell() const noexcept { return shell_; }
  const std::vector<SectionInfo>& sections() const noexcept {
    return sections_;
  }
  const SectionInfo* find(const std::string& name) const noexcept;
  std::uint64_t file_size() const noexcept { return file_.size(); }

  /// pread + CRC-verify one section payload.  Throws
  /// ContainerError{kSectionCorrupt} naming the section on mismatch.
  std::vector<std::uint8_t> read_section(const SectionInfo& info) const;
  std::vector<std::uint8_t> read_section(const std::string& name) const;

  /// Read and verify every section: the seekable equivalent of
  /// read_container (same bytes, section-at-a-time I/O).
  Container read_all() const;

 private:
  ReadFile file_;
  std::uint32_t version_ = 0;
  Container shell_;
  std::vector<SectionInfo> sections_;
};

}  // namespace rmp::io
