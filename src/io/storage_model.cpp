#include "io/storage_model.hpp"

#include <stdexcept>

namespace rmp::io {

double StorageModel::io_time(std::size_t writers,
                             double bytes_per_writer) const {
  if (filesystem_bandwidth <= 0.0) {
    throw std::invalid_argument("StorageModel: bandwidth must be positive");
  }
  const double total_bytes =
      static_cast<double>(writers) * bytes_per_writer;
  return write_latency + total_bytes / filesystem_bandwidth;
}

double StorageModel::staging_time(std::size_t writers,
                                  double bytes_per_writer) const {
  if (interconnect_bandwidth <= 0.0) {
    throw std::invalid_argument("StorageModel: bandwidth must be positive");
  }
  const double total_bytes =
      static_cast<double>(writers) * bytes_per_writer;
  return total_bytes / interconnect_bandwidth;
}

EndToEndRow make_row(const EndToEndScenario& scenario,
                     const std::string& method, double compression_time,
                     double compression_ratio) {
  if (compression_ratio <= 0.0) {
    throw std::invalid_argument("make_row: ratio must be positive");
  }
  EndToEndRow row;
  row.method = method;
  row.compression_time = compression_time;
  row.io_time = scenario.storage.io_time(
      scenario.writers, scenario.bytes_per_writer / compression_ratio);
  row.total_time = row.compression_time + row.io_time;
  return row;
}

EndToEndRow make_baseline_row(const EndToEndScenario& scenario) {
  EndToEndRow row;
  row.method = "Baseline (I/O with no compression)";
  row.compression_time = 0.0;
  row.io_time =
      scenario.storage.io_time(scenario.writers, scenario.bytes_per_writer);
  row.total_time = row.io_time;
  return row;
}

EndToEndRow make_staging_row(const EndToEndScenario& scenario,
                             const std::string& method) {
  EndToEndRow row;
  row.method = method;
  row.compression_time = 0.0;
  row.io_time = scenario.storage.staging_time(scenario.writers,
                                              scenario.bytes_per_writer);
  row.total_time = row.io_time;
  return row;
}

}  // namespace rmp::io
