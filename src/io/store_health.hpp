// Self-healing store maintenance for rmpd (DESIGN.md §14).  Three
// services over a store directory of published archives and in-flight
// sequence journals:
//
//  * Startup recovery (recover_store): after a crash, resume every torn
//    `<name>.part` journal via SequenceWriter::resume, CRC-verify and
//    parity-repair published archives, and move whatever cannot be made
//    whole into `quarantine/` with a JSON manifest entry -- the daemon
//    restarts over either a byte-identical resumable store or an
//    explicitly quarantined file, never a silently damaged one.
//
//  * Integrity scrubbing (scrub_store): the same verify/repair/quarantine
//    pass, run continuously by rmpd's background scrubber and on demand
//    via `rmpc client scrub`.  Per-section CRCs (and the sequence chunk
//    index where present) localize damage; single-section corruption is
//    rebuilt from XOR parity and the file atomically republished with
//    intact steps byte-identical.
//
//  * The request log (RequestLog): a tiny fsync'd sidecar journal of
//    (token, step) intents written *before* each sequence append.  On
//    recovery, an intent whose step lies below the journal's committed
//    step count proves that append durably committed -- the retried
//    request replays the cached outcome instead of re-executing, which is
//    what makes idempotent retries exactly-once across a daemon crash.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/container.hpp"
#include "io/file_ops.hpp"
#include "io/sequence_file.hpp"

namespace rmp::io {

// ---------------------------------------------------------------------------
// Quarantine

/// `<store_dir>/quarantine` -- where unrecoverable files are moved.
std::filesystem::path quarantine_dir(const std::filesystem::path& store_dir);

/// The quarantine manifest: one JSON object per line ("file", "reason",
/// "quarantined_as", "bytes"), appended as files are quarantined.
std::filesystem::path quarantine_manifest_path(
    const std::filesystem::path& store_dir);

/// Move `path` into the quarantine directory (durable rename; a name
/// collision gets a numeric suffix) and append a manifest entry.  Throws
/// ContainerError{kIoError} when the move itself fails; a manifest append
/// failure is recorded under "io.quarantine.manifest_failures" but does
/// not undo the quarantine.
void quarantine_file(const std::filesystem::path& store_dir,
                     const std::filesystem::path& path,
                     const std::string& reason);

// ---------------------------------------------------------------------------
// Request log (idempotent-retry intents)

/// Where a sequence's request log lives: "<path>.reqs".
std::filesystem::path request_log_path(
    const std::filesystem::path& sequence_path);

struct RequestLogEntry {
  std::uint64_t token = 0;  ///< client idempotency token (never 0)
  std::uint64_t step = 0;   ///< step index the append was about to create
};

/// Append-only fsync'd intent log, CRC'd per record so a torn tail is
/// ignored on scan.  Ordering contract: record() is called BEFORE the
/// sequence append it describes.  If the process dies between the two,
/// the intent's step equals the journal's committed count and recovery
/// discards it (the retry re-executes); if it dies after the append's
/// commit fsync, the step lies below the count and recovery replays.
class RequestLog {
 public:
  /// Open the log for `sequence_path`.  `fresh` truncates (a brand-new
  /// journal generation must not inherit a predecessor's intents);
  /// otherwise records append after any existing committed prefix.
  static RequestLog open(const std::filesystem::path& sequence_path,
                         bool fresh, const RetryPolicy& policy = {});

  RequestLog(RequestLog&&) noexcept = default;
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;
  RequestLog& operator=(RequestLog&&) = delete;

  /// Append one intent and fsync it.  Throws ContainerError{kIoError}; on
  /// failure the log is truncated back to its pre-record size (best
  /// effort) so a torn record never survives.
  void record(std::uint64_t token, std::uint64_t step);

  /// Withdraw the most recent intent (the append it described failed
  /// without committing, so the step index will be reused by a later
  /// request -- the stale intent must not alias it).  Best effort: a
  /// failure here is swallowed, because recovery additionally drops any
  /// intent whose step never committed.
  void rollback_last() noexcept;

  void set_retry(const RetryPolicy& policy) noexcept {
    file_.set_policy(policy);
  }

 private:
  RequestLog(DurableFile file, std::uint64_t size)
      : file_(std::move(file)), size_(size) {}
  DurableFile file_;
  std::uint64_t size_ = 0;  ///< committed log bytes (rollback target)
};

/// Committed-prefix scan of a request log: every CRC-valid record in
/// order, stopping at the first torn or corrupt one.  Never throws; a
/// missing or unreadable file yields an empty list.
std::vector<RequestLogEntry> scan_request_log(
    const std::filesystem::path& log_path) noexcept;

// ---------------------------------------------------------------------------
// Scrub

struct ScrubOptions {
  /// Applied to re-serialized (repaired) steps; parity/chunk-index are
  /// still inferred per archive from what the damaged file actually
  /// carried, so intact archives keep their exact format.
  RetryPolicy retry;
  /// Store file names to leave alone (e.g. destinations of sequences a
  /// live server is still appending to).
  std::vector<std::string> skip;
};

struct ScrubReport {
  std::uint64_t files_checked = 0;
  std::uint64_t sections_checked = 0;
  std::uint64_t sections_repaired = 0;
  std::uint64_t files_repaired = 0;     ///< atomically republished
  std::uint64_t files_quarantined = 0;  ///< moved to quarantine/ + manifest
  std::vector<std::string> notes;  ///< human-readable per-file findings

  void merge(const ScrubReport& other);
};

/// One verify/repair/quarantine pass over every published archive in
/// `dir` (journals `*.part`, request logs `*.reqs`, staging temps and
/// dot-files are skipped).  Damage contained to parity-repairable
/// sections is healed in place via atomic republish; anything else is
/// quarantined.  Per-file I/O failures are recorded as notes, never
/// thrown -- a scrub pass always completes.  Emits the "scrub.*" obs
/// counters.
ScrubReport scrub_store(const std::filesystem::path& dir,
                        const ScrubOptions& options = {});

// ---------------------------------------------------------------------------
// Startup recovery

struct RecoveredSequence {
  std::unique_ptr<SequenceWriter> writer;  ///< resumed, ready to append
  /// Steps already committed in the journal at resume time.
  std::vector<JournalScan::Entry> steps;
};

/// Proof (from the request log + journal scan) that a tokened request
/// already applied durably: recovery hands these to the server's dedup
/// window so a post-restart retry replays instead of re-executing.
struct ReplayableRequest {
  std::string sequence;  ///< store name
  std::uint64_t step = 0;
  std::uint64_t stored_bytes = 0;  ///< serialized size of the step
};

struct RecoveryReport {
  std::uint64_t journals_resumed = 0;
  std::uint64_t journals_quarantined = 0;
  std::uint64_t steps_recovered = 0;  ///< committed steps across journals
  std::uint64_t tokens_recovered = 0;
  ScrubReport scrub;  ///< published-file verification riding the pass
  std::vector<std::string> notes;
};

struct RecoveryResult {
  RecoveryReport report;
  /// Resumed journals by store name; the server adopts these as its live
  /// sequence writers so appends continue byte-identically.
  std::map<std::string, RecoveredSequence> sequences;
  std::map<std::uint64_t, ReplayableRequest> replayable;  ///< by token
};

/// Full crash recovery over a store directory: resume (or quarantine)
/// every journal, reload durable dedup intents, then scrub the published
/// files.  `options` must match the crashed run's serialize options for
/// resumed journals to stay byte-identical.  Never throws on per-file
/// damage; only an unusable directory itself raises
/// ContainerError{kIoError}.  Emits the "recovery.*" obs counters.
RecoveryResult recover_store(const std::filesystem::path& dir,
                             const SerializeOptions& options);

}  // namespace rmp::io
