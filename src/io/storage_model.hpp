// Analytic storage / staging time model for the Table IV end-to-end
// experiment.
//
// The paper measures, on Titan + Lustre with 64 writers of 16.7 GB each:
//   baseline (no compression)  I/O 52.48 s
//   ZFP+I/O                    compress 12.09 s + I/O 20.39 s
//   SZ+I/O                     compress  9.72 s + I/O 19.36 s
//   PCA(ZFP)+I/O               compress 44.87 s + I/O  9.23 s
//   PCA(SZ)+I/O                compress 42.95 s + I/O  9.00 s
//   Staging+PCA+I/O            transfer-only total 13.17 s
//
// We cannot run Lustre here, so the substitution is a bandwidth/latency
// model: every writer streams its (compressed) bytes at the file-system
// bandwidth share; staging instead ships raw bytes to a staging node over
// the interconnect and overlaps everything downstream.  Calibrated with
// the defaults below, the model reproduces the paper's rows; the bench
// feeds it compression times and ratios *measured* on this machine's
// codecs, so the crossover structure (who wins, when staging pays) is
// exercised rather than hard-coded.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rmp::io {

struct StorageModel {
  /// Aggregate parallel file-system bandwidth available to the job (B/s).
  double filesystem_bandwidth = 20.0e9;
  /// Per-write latency (metadata + open + sync), amortized per writer.
  double write_latency = 0.05;
  /// Interconnect bandwidth from compute to staging nodes (B/s).
  double interconnect_bandwidth = 80.0e9;

  /// Time for `writers` ranks to write `bytes_per_writer` each, N-to-N.
  double io_time(std::size_t writers, double bytes_per_writer) const;

  /// Time to ship data to the staging node; compression + file I/O then
  /// happen asynchronously off the critical path.
  double staging_time(std::size_t writers, double bytes_per_writer) const;
};

struct EndToEndRow {
  std::string method;
  double compression_time;  ///< seconds (0 for baseline / staging)
  double io_time;           ///< seconds
  double total_time;        ///< seconds
};

struct EndToEndScenario {
  std::size_t writers = 64;
  double bytes_per_writer = 16.7e9;
  StorageModel storage;
};

/// Compose one Table IV row: synchronous compression followed by the
/// write of the reduced-size data.
EndToEndRow make_row(const EndToEndScenario& scenario,
                     const std::string& method, double compression_time,
                     double compression_ratio);

/// Baseline row: raw write, no compression.
EndToEndRow make_baseline_row(const EndToEndScenario& scenario);

/// Staging row: only the transfer to the staging node is synchronous.
EndToEndRow make_staging_row(const EndToEndScenario& scenario,
                             const std::string& method);

}  // namespace rmp::io
