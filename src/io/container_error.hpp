// Typed error taxonomy for the archive layer.  Every failure mode of the
// container/sequence formats maps to a ContainerErrc so callers (CLI,
// salvage paths, tests) can dispatch on *what* went wrong and *which*
// section is damaged instead of string-matching std::runtime_error texts.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rmp::io {

enum class ContainerErrc : std::uint8_t {
  kTruncated = 1,        ///< input ends before the format says it should
  kBadMagic,             ///< not a container at all
  kBadVersion,           ///< version newer/older than this reader supports
  kChecksumMismatch,     ///< v2 whole-file CRC failed (single integrity domain)
  kHeaderCorrupt,        ///< v3 header/ directory CRC failed or flags invalid
  kSectionCorrupt,       ///< a section payload failed its CRC (unrepaired)
  kMissingSection,       ///< decode needs a section the container lacks
  kSectionMalformed,     ///< section present but its contents do not parse
  kIoError,              ///< open/read/write/rename on the underlying file failed
  kIndexCorrupt,         ///< sequence trailer/index unusable and rebuild failed
  kTrailingGarbage,      ///< buffer extends past the container footprint
  kUnrecoverable,        ///< best-effort salvage could not produce any field
  kDeadlineExceeded,     ///< the operation's wall-clock budget ran out
};

inline const char* to_string(ContainerErrc code) {
  switch (code) {
    case ContainerErrc::kTruncated: return "truncated";
    case ContainerErrc::kBadMagic: return "bad-magic";
    case ContainerErrc::kBadVersion: return "bad-version";
    case ContainerErrc::kChecksumMismatch: return "checksum-mismatch";
    case ContainerErrc::kHeaderCorrupt: return "header-corrupt";
    case ContainerErrc::kSectionCorrupt: return "section-corrupt";
    case ContainerErrc::kMissingSection: return "missing-section";
    case ContainerErrc::kSectionMalformed: return "section-malformed";
    case ContainerErrc::kIoError: return "io-error";
    case ContainerErrc::kIndexCorrupt: return "index-corrupt";
    case ContainerErrc::kTrailingGarbage: return "trailing-garbage";
    case ContainerErrc::kUnrecoverable: return "unrecoverable";
    case ContainerErrc::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

/// Carries the error code plus (when known) the name of the damaged
/// section.  Derives from std::runtime_error so pre-existing catch sites
/// keep working.
class ContainerError : public std::runtime_error {
 public:
  ContainerError(ContainerErrc code, const std::string& detail,
                 std::string section = {})
      : std::runtime_error(format(code, detail, section)),
        code_(code),
        section_(std::move(section)) {}

  ContainerErrc code() const noexcept { return code_; }
  const std::string& section() const noexcept { return section_; }

 private:
  static std::string format(ContainerErrc code, const std::string& detail,
                            const std::string& section) {
    std::string message = "container[";
    message += to_string(code);
    message += "]";
    if (!section.empty()) {
      message += " section '" + section + "'";
    }
    message += ": " + detail;
    return message;
  }

  ContainerErrc code_;
  std::string section_;
};

}  // namespace rmp::io
