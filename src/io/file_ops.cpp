#include "io/file_ops.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <system_error>
#include <thread>

#include "obs/obs.hpp"

namespace rmp::io {
namespace {

std::string errno_text(int err) {
  return std::error_code(err, std::generic_category()).message();
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kEintr: return "eintr";
    case FaultKind::kEagain: return "eagain";
    case FaultKind::kShort: return "short";
    case FaultKind::kEnospc: return "enospc";
    case FaultKind::kKill: return "kill";
    case FaultKind::kTorn: return "torn";
  }
  return "unknown";
}

class RealFileOps final : public FileOps {
 public:
  int open(const std::string& path, int flags,
           unsigned mode) noexcept override {
    const int fd = ::open(path.c_str(), flags, static_cast<mode_t>(mode));
    return fd >= 0 ? fd : -errno;
  }
  long write(int fd, const void* data, std::size_t size) noexcept override {
    const ssize_t n = ::write(fd, data, size);
    return n >= 0 ? static_cast<long>(n) : -errno;
  }
  long pread(int fd, void* data, std::size_t size,
             std::uint64_t offset) noexcept override {
    const ssize_t n = ::pread(fd, data, size, static_cast<off_t>(offset));
    return n >= 0 ? static_cast<long>(n) : -errno;
  }
  long fsize(int fd) noexcept override {
    struct stat st;
    if (::fstat(fd, &st) != 0) return -errno;
    return static_cast<long>(st.st_size);
  }
  int fsync(int fd) noexcept override {
    return ::fsync(fd) == 0 ? 0 : -errno;
  }
  int close(int fd) noexcept override {
    return ::close(fd) == 0 ? 0 : -errno;
  }
  int rename(const std::string& from, const std::string& to) noexcept override {
    return ::rename(from.c_str(), to.c_str()) == 0 ? 0 : -errno;
  }
  int unlink(const std::string& path) noexcept override {
    return ::unlink(path.c_str()) == 0 ? 0 : -errno;
  }
  int ftruncate(int fd, std::uint64_t size) noexcept override {
    return ::ftruncate(fd, static_cast<off_t>(size)) == 0 ? 0 : -errno;
  }
};

/// Resolved once from RMP_IO_INJECT; lives for the process.
FileOps& default_file_ops() noexcept {
  static RealFileOps real;
  static FileOps* resolved = [] {
    const char* env = std::getenv("RMP_IO_INJECT");
    if (env != nullptr && *env != '\0') {
      if (const auto spec = FaultSpec::parse(env)) {
        static FaultInjectingFileOps injected(*spec, real);
        return static_cast<FileOps*>(&injected);
      }
    }
    return static_cast<FileOps*>(&real);
  }();
  return *resolved;
}

std::atomic<FileOps*> g_override{nullptr};

}  // namespace

FileOps& real_file_ops() noexcept {
  static RealFileOps real;
  return real;
}

FileOps& file_ops() noexcept {
  FileOps* ops = g_override.load(std::memory_order_acquire);
  return ops != nullptr ? *ops : default_file_ops();
}

FileOps* set_file_ops(FileOps* ops) noexcept {
  return g_override.exchange(ops, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// FaultSpec

std::optional<FaultSpec> FaultSpec::parse(std::string_view text) noexcept {
  const std::size_t at_pos = text.find('@');
  if (at_pos == std::string_view::npos) return std::nullopt;
  const std::string_view kind_text = text.substr(0, at_pos);
  std::string_view rest = text.substr(at_pos + 1);

  FaultSpec spec;
  if (kind_text == "none") spec.kind = FaultKind::kNone;
  else if (kind_text == "eintr") spec.kind = FaultKind::kEintr;
  else if (kind_text == "eagain") spec.kind = FaultKind::kEagain;
  else if (kind_text == "short") spec.kind = FaultKind::kShort;
  else if (kind_text == "enospc") spec.kind = FaultKind::kEnospc;
  else if (kind_text == "kill") spec.kind = FaultKind::kKill;
  else if (kind_text == "torn") spec.kind = FaultKind::kTorn;
  else return std::nullopt;

  std::uint64_t repeat = 1;
  const std::size_t x_pos = rest.find('x');
  if (x_pos != std::string_view::npos) {
    const std::string_view repeat_text = rest.substr(x_pos + 1);
    const auto* begin = repeat_text.data();
    const auto* end = begin + repeat_text.size();
    const auto result = std::from_chars(begin, end, repeat);
    if (result.ec != std::errc{} || result.ptr != end || repeat == 0) {
      return std::nullopt;
    }
    rest = rest.substr(0, x_pos);
  }
  const auto* begin = rest.data();
  const auto* end = begin + rest.size();
  const auto result = std::from_chars(begin, end, spec.at);
  if (result.ec != std::errc{} || result.ptr != end || spec.at == 0) {
    return std::nullopt;
  }
  spec.repeat = repeat;
  return spec;
}

// ---------------------------------------------------------------------------
// FaultInjectingFileOps

std::optional<int> FaultInjectingFileOps::fault_for_op() noexcept {
  if (dead_) return -EIO;
  const std::uint64_t op = ++ops_;
  // kShort and kTorn only distort write(); kNone only counts.
  if (spec_.kind == FaultKind::kNone || spec_.kind == FaultKind::kTorn ||
      spec_.kind == FaultKind::kShort) {
    return std::nullopt;
  }
  if (op < spec_.at || op >= spec_.at + spec_.repeat) return std::nullopt;
  ++faults_;
  obs::count("io.fault.injected");
  obs::count(std::string("io.fault.") + fault_kind_name(spec_.kind));
  switch (spec_.kind) {
    case FaultKind::kEintr: return -EINTR;
    case FaultKind::kEagain: return -EAGAIN;
    case FaultKind::kEnospc: return -ENOSPC;
    case FaultKind::kKill:
      dead_ = true;
      return -EIO;
    default:
      return std::nullopt;
  }
}

int FaultInjectingFileOps::open(const std::string& path, int flags,
                                unsigned mode) noexcept {
  if (const auto fault = fault_for_op()) return *fault;
  return base_.open(path, flags, mode);
}

long FaultInjectingFileOps::write(int fd, const void* data,
                                  std::size_t size) noexcept {
  if (const auto fault = fault_for_op()) return *fault;
  const std::uint64_t op = ops_;  // the number fault_for_op just assigned
  std::size_t effective = size;
  if (spec_.kind == FaultKind::kShort && op >= spec_.at &&
      op < spec_.at + spec_.repeat && size > 1) {
    effective = size / 2;
    ++faults_;
    obs::count("io.fault.injected");
    obs::count("io.fault.short");
  }
  if (spec_.kind == FaultKind::kTorn) {
    // Byte budget: the write that crosses it lands only partially on
    // disk, then the "process" is dead.
    if (bytes_ + effective > spec_.at) {
      effective = static_cast<std::size_t>(spec_.at - bytes_);
      dead_ = true;
      ++faults_;
      obs::count("io.fault.injected");
      obs::count("io.fault.torn");
      if (effective == 0) return -EIO;
    }
  }
  const long n = base_.write(fd, data, effective);
  if (n > 0) bytes_ += static_cast<std::uint64_t>(n);
  return n;
}

long FaultInjectingFileOps::pread(int fd, void* data, std::size_t size,
                                  std::uint64_t offset) noexcept {
  // Reads are deliberately not faultable ops (see header): a decode in
  // the same process as a kill@N write sweep must not shift op numbers.
  if (dead_) return -EIO;
  return base_.pread(fd, data, size, offset);
}

long FaultInjectingFileOps::fsize(int fd) noexcept {
  if (dead_) return -EIO;
  return base_.fsize(fd);
}

int FaultInjectingFileOps::fsync(int fd) noexcept {
  if (const auto fault = fault_for_op()) return *fault;
  return base_.fsync(fd);
}

int FaultInjectingFileOps::close(int fd) noexcept {
  if (dead_) {
    // Still release the descriptor: the simulated process is gone, but
    // the test harness must not leak fds across thousands of kill points.
    base_.close(fd);
    return -EIO;
  }
  return base_.close(fd);
}

int FaultInjectingFileOps::rename(const std::string& from,
                                  const std::string& to) noexcept {
  if (const auto fault = fault_for_op()) return *fault;
  return base_.rename(from, to);
}

int FaultInjectingFileOps::unlink(const std::string& path) noexcept {
  if (dead_) return -EIO;
  return base_.unlink(path);
}

int FaultInjectingFileOps::ftruncate(int fd, std::uint64_t size) noexcept {
  if (dead_) return -EIO;
  return base_.ftruncate(fd, size);
}

// ---------------------------------------------------------------------------
// RetryPolicy

std::chrono::microseconds RetryPolicy::delay_for(int attempt) const noexcept {
  std::uint64_t delay = static_cast<std::uint64_t>(base_delay.count());
  for (int i = 1; i < attempt && delay < static_cast<std::uint64_t>(
                                             max_delay.count());
       ++i) {
    delay *= 2;
  }
  delay = std::min(delay, static_cast<std::uint64_t>(max_delay.count()));
  // Deterministic jitter (golden-ratio hash of the attempt number):
  // +-25% spread without a global RNG, so test runs are reproducible.
  const std::uint64_t hash =
      static_cast<std::uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL;
  const std::uint64_t jitter = (hash >> 32) % (delay / 2 + 1);
  return std::chrono::microseconds(delay * 3 / 4 + jitter);
}

bool is_transient_io_error(int err) noexcept {
  return err == EINTR || err == EAGAIN;
}

bool RetryPolicy::expired() const noexcept {
  return deadline && std::chrono::steady_clock::now() >= *deadline;
}

namespace {

void sleep_for(const RetryPolicy& policy, int attempt) {
  const auto delay = policy.delay_for(attempt);
  if (policy.sleeper != nullptr) {
    policy.sleeper(delay);
  } else {
    std::this_thread::sleep_for(delay);
  }
}

/// The deadline verdict for one more attempt (or backoff sleep): false
/// means proceed.  ETIMEDOUT is the in-band marker the throw path below
/// turns into ContainerError{kDeadlineExceeded} -- real disk syscalls
/// never produce it, so the two error streams cannot collide.
bool retry_deadline_spent(const RetryPolicy& policy) {
  if (!policy.expired()) return false;
  obs::count("io.retry.deadline_exceeded");
  return true;
}

[[noreturn]] void throw_io_error(const char* who, const std::string& action,
                                 const std::filesystem::path& path, int err) {
  if (err == ETIMEDOUT) {
    throw ContainerError(ContainerErrc::kDeadlineExceeded,
                         std::string(who) + ": " + action + " on " +
                             path.string() +
                             " abandoned: wall-clock deadline exceeded");
  }
  throw ContainerError(ContainerErrc::kIoError,
                       std::string(who) + ": " + action + " failed on " +
                           path.string() + ": " + errno_text(err));
}

/// Run `op` (returning 0/fd on success, -errno on failure) with bounded
/// retries on transient errors.  Returns the final op result.  Both the
/// attempt bound and the policy's wall-clock deadline cap the loop; a
/// spent deadline yields -ETIMEDOUT without starting another attempt.
template <typename Op>
long with_retries(Op&& op, const RetryPolicy& policy) {
  if (retry_deadline_spent(policy)) return -ETIMEDOUT;
  long result = op();
  for (int attempt = 1;
       result < 0 && is_transient_io_error(static_cast<int>(-result)) &&
       attempt < policy.max_attempts;
       ++attempt) {
    if (retry_deadline_spent(policy)) return -ETIMEDOUT;
    obs::count("io.retry.attempts");
    sleep_for(policy, attempt);
    result = op();
  }
  if (result < 0 && is_transient_io_error(static_cast<int>(-result))) {
    obs::count("io.retry.exhausted");
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// DurableFile

DurableFile::DurableFile(int fd, std::filesystem::path path, const char* who,
                         RetryPolicy policy) noexcept
    : fd_(fd), path_(std::move(path)), who_(who), policy_(policy) {}

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      who_(other.who_),
      policy_(other.policy_) {
  other.fd_ = -1;
}

DurableFile::~DurableFile() {
  if (fd_ >= 0) file_ops().close(fd_);
}

DurableFile DurableFile::create_truncate(const std::filesystem::path& path,
                                         const char* who,
                                         const RetryPolicy& policy) {
  const long fd = with_retries(
      [&] { return static_cast<long>(file_ops().open(
                path.string(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                0644)); },
      policy);
  if (fd < 0) throw_io_error(who, "open", path, static_cast<int>(-fd));
  return DurableFile(static_cast<int>(fd), path, who, policy);
}

DurableFile DurableFile::create_exclusive(const std::filesystem::path& path,
                                          const char* who,
                                          const RetryPolicy& policy) {
  // O_APPEND keeps writes glued to end-of-file even after a failed append
  // is truncated away, matching the journal's committed-prefix invariant.
  const long fd = with_retries(
      [&] { return static_cast<long>(file_ops().open(
                path.string(),
                O_WRONLY | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC, 0644)); },
      policy);
  if (fd < 0) {
    const int err = static_cast<int>(-fd);
    std::string action = "exclusive create";
    if (err == EEXIST) {
      action += " (already exists -- another writer is active, or a "
                "crashed run left it behind; resume or remove it)";
    }
    throw_io_error(who, action, path, err);
  }
  return DurableFile(static_cast<int>(fd), path, who, policy);
}

DurableFile DurableFile::open_append(const std::filesystem::path& path,
                                     const char* who,
                                     const RetryPolicy& policy) {
  const long fd = with_retries(
      [&] { return static_cast<long>(file_ops().open(
                path.string(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644)); },
      policy);
  if (fd < 0) throw_io_error(who, "open for append", path, static_cast<int>(-fd));
  return DurableFile(static_cast<int>(fd), path, who, policy);
}

void DurableFile::write_all(std::span<const std::uint8_t> bytes) {
  if (retry_deadline_spent(policy_)) {
    throw_io_error(who_, "write", path_, ETIMEDOUT);
  }
  std::size_t written = 0;
  int failures = 0;
  while (written < bytes.size()) {
    const long n = file_ops().write(fd_, bytes.data() + written,
                                    bytes.size() - written);
    if (n < 0) {
      const int err = static_cast<int>(-n);
      if (is_transient_io_error(err) && failures + 1 < policy_.max_attempts) {
        if (retry_deadline_spent(policy_)) {
          throw_io_error(who_, "write", path_, ETIMEDOUT);
        }
        ++failures;
        obs::count("io.retry.attempts");
        sleep_for(policy_, failures);
        continue;
      }
      if (is_transient_io_error(err)) obs::count("io.retry.exhausted");
      throw_io_error(who_, "write", path_, err);
    }
    if (static_cast<std::size_t>(n) < bytes.size() - written) {
      // Short write: not an error, but worth a counter -- the loop simply
      // continues from where the kernel stopped.
      obs::count("io.retry.short_writes");
    }
    written += static_cast<std::size_t>(n);
    failures = 0;  // progress resets the transient-failure budget
  }
}

void DurableFile::sync() {
  const long result =
      with_retries([&] { return static_cast<long>(file_ops().fsync(fd_)); },
                   policy_);
  if (result < 0) throw_io_error(who_, "fsync", path_, static_cast<int>(-result));
}

void DurableFile::truncate(std::uint64_t size) {
  const int result = file_ops().ftruncate(fd_, size);
  if (result < 0) throw_io_error(who_, "ftruncate", path_, -result);
  // ftruncate does not move the write cursor: without the reposition a
  // later write on a non-O_APPEND fd would land past the new end and
  // leave a zero-filled hole (O_APPEND fds ignore the offset, so this
  // is harmless there).  Pure fd-state manipulation, not a disk op, so
  // it stays outside the FileOps fault seam.
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0)
    throw_io_error(who_, "lseek", path_, errno);
}

void DurableFile::close() {
  if (fd_ < 0) return;
  const int fd = fd_;
  fd_ = -1;
  const int result = file_ops().close(fd);
  if (result < 0) throw_io_error(who_, "close", path_, -result);
}

// ---------------------------------------------------------------------------
// ReadFile

ReadFile::ReadFile(int fd, std::uint64_t size, std::filesystem::path path,
                   const char* who, RetryPolicy policy) noexcept
    : fd_(fd),
      size_(size),
      path_(std::move(path)),
      who_(who),
      policy_(policy) {}

ReadFile::ReadFile(ReadFile&& other) noexcept
    : fd_(other.fd_),
      size_(other.size_),
      path_(std::move(other.path_)),
      who_(other.who_),
      policy_(other.policy_) {
  other.fd_ = -1;
  other.size_ = 0;
}

ReadFile::~ReadFile() {
  if (fd_ >= 0) file_ops().close(fd_);
}

ReadFile ReadFile::open(const std::filesystem::path& path, const char* who,
                        const RetryPolicy& policy) {
  const long fd = with_retries(
      [&] { return static_cast<long>(file_ops().open(
                path.string(), O_RDONLY | O_CLOEXEC, 0)); },
      policy);
  if (fd < 0) {
    throw_io_error(who, "open for read", path, static_cast<int>(-fd));
  }
  const long size = file_ops().fsize(static_cast<int>(fd));
  if (size < 0) {
    file_ops().close(static_cast<int>(fd));
    throw_io_error(who, "stat", path, static_cast<int>(-size));
  }
  return ReadFile(static_cast<int>(fd), static_cast<std::uint64_t>(size),
                  path, who, policy);
}

std::size_t ReadFile::read_at(std::uint64_t offset, void* dst,
                              std::size_t size) const {
  std::size_t done = 0;
  int failures = 0;
  while (done < size) {
    const long n =
        file_ops().pread(fd_, static_cast<std::uint8_t*>(dst) + done,
                         size - done, offset + done);
    if (n < 0) {
      const int err = static_cast<int>(-n);
      if (is_transient_io_error(err) && failures + 1 < policy_.max_attempts) {
        ++failures;
        obs::count("io.retry.attempts");
        sleep_for(policy_, failures);
        continue;
      }
      if (is_transient_io_error(err)) obs::count("io.retry.exhausted");
      throw_io_error(who_, "read", path_, err);
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
    failures = 0;
  }
  if (done > 0) obs::count("io.bytes_read", done);
  return done;
}

void ReadFile::read_exact_at(std::uint64_t offset, void* dst,
                             std::size_t size) const {
  const std::size_t got = read_at(offset, dst, size);
  if (got != size) {
    throw ContainerError(
        ContainerErrc::kTruncated,
        std::string(who_) + ": unexpected end of file in " + path_.string() +
            " reading " + std::to_string(size) + " bytes at offset " +
            std::to_string(offset) + " (got " + std::to_string(got) + ")");
  }
}

// ---------------------------------------------------------------------------
// Durable helpers

std::filesystem::path unique_tmp_path(const std::filesystem::path& dest) {
  static std::atomic<std::uint64_t> counter{0};
  std::filesystem::path tmp = dest;
  tmp += ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  return tmp;
}

void fsync_parent_dir(const std::filesystem::path& path, const char* who,
                      const RetryPolicy& policy) {
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  const long fd = with_retries(
      [&] { return static_cast<long>(file_ops().open(
                dir.string(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0)); },
      policy);
  if (fd < 0) throw_io_error(who, "open parent dir", dir, static_cast<int>(-fd));
  const long synced = with_retries(
      [&] { return static_cast<long>(file_ops().fsync(static_cast<int>(fd))); },
      policy);
  file_ops().close(static_cast<int>(fd));
  if (synced < 0) {
    throw_io_error(who, "fsync parent dir", dir, static_cast<int>(-synced));
  }
}

void durable_rename(const std::filesystem::path& from,
                    const std::filesystem::path& to, const char* who,
                    const RetryPolicy& policy) {
  const long renamed = with_retries(
      [&] { return static_cast<long>(
                file_ops().rename(from.string(), to.string())); },
      policy);
  if (renamed < 0) {
    throw_io_error(who, "rename into " + to.string(), from,
                   static_cast<int>(-renamed));
  }
  fsync_parent_dir(to, who, policy);
}

void atomic_publish_bytes(const std::filesystem::path& path,
                          std::span<const std::uint8_t> bytes, const char* who,
                          const RetryPolicy& policy) {
  const std::filesystem::path tmp = unique_tmp_path(path);
  try {
    DurableFile file = DurableFile::create_truncate(tmp, who, policy);
    file.write_all(bytes);
    file.sync();
    file.close();
    durable_rename(tmp, path, who, policy);
  } catch (...) {
    // The staging file must never outlive a failed publish; the original
    // error (with its errno text) is what propagates.
    file_ops().unlink(tmp.string());
    throw;
  }
}

}  // namespace rmp::io
