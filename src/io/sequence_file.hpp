// Streaming multi-container archive: a sequence of containers (e.g. the
// temporal pipeline's keyframe + delta steps) appended to a single file
// with a trailing index, so individual steps can be read back without
// scanning the whole file.
//
// Layout:  [container 0][container 1]...[index][index size u64][magic]
// The index is a list of (offset, size) pairs.  Each embedded container
// carries its own CRC (io/container.cpp), so corruption is detected at
// step granularity.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "io/container.hpp"

namespace rmp::io {

class SequenceWriter {
 public:
  /// Opens (truncates) the file; throws on failure.
  explicit SequenceWriter(const std::filesystem::path& path);
  ~SequenceWriter();

  SequenceWriter(const SequenceWriter&) = delete;
  SequenceWriter& operator=(const SequenceWriter&) = delete;

  /// Append one container; returns its step index.
  std::size_t append(const Container& container);

  /// Write the trailing index and close.  Called by the destructor if not
  /// done explicitly; explicit calls surface errors.
  void finish();

  std::size_t steps_written() const noexcept { return index_.size(); }

 private:
  struct Entry {
    std::uint64_t offset;
    std::uint64_t size;
  };
  std::ofstream file_;
  std::filesystem::path path_;
  std::vector<Entry> index_;
  bool finished_ = false;
};

class SequenceReader {
 public:
  explicit SequenceReader(const std::filesystem::path& path);

  std::size_t step_count() const noexcept { return index_.size(); }

  /// Read one step (random access).  Throws on bad index or corruption.
  Container read_step(std::size_t step);

  /// Read all steps in order.
  std::vector<Container> read_all();

 private:
  struct Entry {
    std::uint64_t offset;
    std::uint64_t size;
  };
  std::ifstream file_;
  std::vector<Entry> index_;
};

}  // namespace rmp::io
