// Streaming multi-container archive: a sequence of containers (e.g. the
// temporal pipeline's keyframe + delta steps) appended to a single file
// with a trailing index, so individual steps can be read back without
// scanning the whole file.
//
// Layout:  [step 0][commit 0][step 1][commit 1]...[index][count u64][magic]
// Each step is a serialized container followed by a 32-byte CRC'd commit
// marker; the trailing index is a list of (offset, size, crc32) triples
// addressing (and checksumming) the containers -- the sequence-level
// chunk index that makes any step O(1) addressable and lets a fetcher
// validate a chunk without deserializing it (DESIGN.md §12).  Archives
// written before the CRC column (magic kSequenceMagic rather than
// kSequenceMagicV2) still read back unchanged.  Each embedded container
// additionally carries its own integrity metadata (io/container.cpp), so
// corruption is detected -- and, with parity, repaired -- at step
// granularity.
//
// Durability (DESIGN.md §10): the writer journals into `<path>.part` and
// fsyncs after every commit marker, so every *completed* append survives
// a crash; finish() writes the trailer, fsyncs, renames the journal over
// the destination and fsyncs the parent directory.  The destination is
// therefore always either the previous complete archive or the new
// complete archive, and the journal is always a resumable prefix.
// SequenceWriter::resume() reopens a crashed run's journal, validates the
// committed prefix, truncates any torn tail, and continues appending.
// The reader, when the trailer is missing or the index is implausible
// (e.g. a recovered journal), rebuilds the index by forward-scanning for
// container headers, and read_all_salvage() skips-and-reports corrupt
// steps instead of aborting.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "io/container.hpp"
#include "io/file_ops.hpp"

namespace rmp::io {

/// Bytes of the per-step commit marker: magic u64, step u64, size u64,
/// payload CRC-32, marker CRC-32 (see sequence_file.cpp).
inline constexpr std::size_t kSequenceCommitMarkerBytes = 8 + 8 + 8 + 4 + 4;

/// Where SequenceWriter journals steps before publishing: "<path>.part".
/// Deliberately deterministic (unlike write_container's unique temps) so
/// a later `resume` can find it; exclusive creation keeps two concurrent
/// writers from clobbering each other.
std::filesystem::path sequence_journal_path(const std::filesystem::path& path);

/// Committed-prefix scan of a journal (or any byte buffer): entries for
/// every [container][valid commit marker] pair from offset 0, stopping at
/// the first break in the chain.  `committed_bytes` is where the valid
/// prefix ends; anything beyond it is a torn tail from a crashed append
/// (or a partially written trailer).  Never throws.
struct JournalScan {
  struct Entry {
    std::uint64_t offset = 0;  ///< of the container, not the marker
    std::uint64_t size = 0;
    std::uint32_t crc = 0;  ///< payload CRC-32 (from the commit marker)
  };
  std::vector<Entry> entries;
  std::uint64_t committed_bytes = 0;
  std::uint64_t torn_bytes = 0;  ///< bytes past the committed prefix
};
JournalScan scan_sequence_journal(std::span<const std::uint8_t> bytes) noexcept;

class SequenceWriter {
 public:
  /// Starts a fresh journal at `<path>.part` (exclusive creation: throws
  /// ContainerError{kIoError} if one already exists, instead of silently
  /// clobbering a concurrent or crashed writer's work).  The destination
  /// only changes once finish() renames the journal over it.
  explicit SequenceWriter(const std::filesystem::path& path,
                          const SerializeOptions& options = {});

  /// Reopens a crashed run's journal: validates the committed prefix,
  /// truncates any torn tail, and returns a writer that continues
  /// appending after the last committed step.  `options` must match the
  /// original run for the final archive to be byte-identical to an
  /// uninterrupted one.  Throws ContainerError{kIoError} when no journal
  /// exists.
  static SequenceWriter resume(const std::filesystem::path& path,
                               const SerializeOptions& options = {});

  SequenceWriter(SequenceWriter&& other) noexcept;
  SequenceWriter(const SequenceWriter&) = delete;
  SequenceWriter& operator=(const SequenceWriter&) = delete;
  SequenceWriter& operator=(SequenceWriter&&) = delete;

  /// Commits the prefix: the journal keeps every completed append and
  /// stays on disk for resume().  finish() failures are recorded under
  /// the obs counter "io.sequence.destructor_finish_failures"; only an
  /// explicit finish() publishes and surfaces errors.
  ~SequenceWriter();

  /// Append one container and fsync its commit marker; returns its step
  /// index.  On failure the journal is truncated back to the committed
  /// prefix (best effort) and a typed error with the OS error text is
  /// thrown -- previously committed steps are never lost.
  std::size_t append(const Container& container);

  /// Write the trailing index, fsync, atomically rename the journal over
  /// the destination, and fsync the parent directory.
  void finish();

  /// Steps committed to the journal (including any resumed prefix).
  std::size_t steps_written() const noexcept { return index_.size(); }

  /// Swap the retry policy applied to subsequent appends and to
  /// finish().  Long-lived writers (rmpd's named sequences) use this to
  /// thread each request's wall-clock deadline into the journal's disk
  /// retries.  Never alters the serialized bytes.
  void set_retry(const RetryPolicy& policy) noexcept {
    options_.retry = policy;
    file_.set_policy(policy);
  }

 private:
  struct ResumeTag {};
  SequenceWriter(ResumeTag, const std::filesystem::path& path,
                 const SerializeOptions& options);

  DurableFile file_;
  std::filesystem::path path_;
  std::filesystem::path journal_path_;
  SerializeOptions options_;
  std::vector<JournalScan::Entry> index_;
  std::uint64_t committed_bytes_ = 0;
  bool finished_ = false;
  bool failed_ = false;
};

/// Atomically (re)write a sequence archive from raw per-step container
/// bytes: commit markers and the CRC'd trailing index are regenerated,
/// the bytes are staged in a unique temp next to `path` and durably
/// renamed over it.  The integrity scrubber uses this to replace
/// damaged-but-parity-repairable steps while keeping intact steps
/// byte-identical; a crash mid-rewrite leaves the old archive untouched.
void write_sequence_archive(
    const std::filesystem::path& path,
    const std::vector<std::vector<std::uint8_t>>& steps,
    const RetryPolicy& policy = {});

struct SequenceReadOptions {
  /// When the trailing index is missing or implausible, forward-scan the
  /// file for container headers instead of failing (crashed-writer
  /// recovery).  The reader still throws if no step can be located.
  bool allow_index_rebuild = true;
};

/// Per-step verdict from a salvage pass.
struct StepHealth {
  std::size_t step = 0;
  bool ok = false;
  std::string error;  ///< empty when ok
};

struct SequenceScanReport {
  bool index_rebuilt = false;
  std::vector<StepHealth> steps;
  std::size_t ok_count() const;
};

/// One sequence-level chunk-index entry: where step K lives, and (for
/// archives with the CRC'd trailer) its payload checksum.
struct StepInfo {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
  /// False for legacy (pre-CRC) trailers and magic-scan-recovered steps,
  /// where no chunk checksum is available.
  bool has_crc = false;
};

/// Thread-safe random-access reader.  All read methods are const and go
/// through stateless positional reads (io::ReadFile / FileOps::pread) --
/// there is no shared stream cursor, so ONE SequenceReader instance may
/// be shared by any number of threads decoding disjoint (or identical)
/// steps concurrently.  Reading step K costs O(step K's bytes): the
/// trailer parse at open touches only the index, never the step data.
class SequenceReader {
 public:
  explicit SequenceReader(const std::filesystem::path& path,
                          const SequenceReadOptions& options = {});

  std::size_t step_count() const noexcept { return index_.size(); }

  /// True when the trailing index was unusable and the step table was
  /// reconstructed by forward-scanning the file.
  bool index_rebuilt() const noexcept { return rebuilt_; }

  /// Chunk-index entry for one step (offset/size/crc).  Throws
  /// std::out_of_range on a bad step number.
  const StepInfo& step_info(std::size_t step) const;

  /// Raw serialized bytes of one step.  The entry's size is validated
  /// against the file footprint *before* allocating, so a hostile or
  /// stale trailer cannot force a multi-GB allocation (typed
  /// ContainerError{kIndexCorrupt}, never bad_alloc).
  std::vector<std::uint8_t> read_step_bytes(std::size_t step) const;

  /// Read one step (random access).  Throws ContainerError on corruption
  /// (repairing single-section damage via parity when present) and
  /// std::out_of_range on a bad step number.
  Container read_step(std::size_t step) const;

  /// Read all steps in order; throws on the first unreadable step.
  std::vector<Container> read_all() const;

  /// Read every step that can be decoded, skipping corrupt ones.  The
  /// optional report records a verdict for each step.
  std::vector<Container> read_all_salvage(
      SequenceScanReport* report = nullptr) const;

 private:
  void rebuild_index();

  ReadFile file_;
  std::vector<StepInfo> index_;
  bool rebuilt_ = false;
};

}  // namespace rmp::io
