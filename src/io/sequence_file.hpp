// Streaming multi-container archive: a sequence of containers (e.g. the
// temporal pipeline's keyframe + delta steps) appended to a single file
// with a trailing index, so individual steps can be read back without
// scanning the whole file.
//
// Layout:  [container 0][container 1]...[index][index size u64][magic]
// The index is a list of (offset, size) pairs.  Each embedded container
// carries its own integrity metadata (io/container.cpp), so corruption is
// detected -- and, with parity, repaired -- at step granularity.
//
// Robustness: the writer stages everything in a temp file and renames it
// into place on finish(), so a crashed writer never leaves a torn archive
// at the destination.  The reader, when the trailer is missing or the
// index is implausible (e.g. a recovered temp file from a crashed
// writer), rebuilds the index by forward-scanning for container headers,
// and read_all_salvage() skips-and-reports corrupt steps instead of
// aborting.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/container.hpp"

namespace rmp::io {

class SequenceWriter {
 public:
  /// Opens (truncates) a staging temp file; throws on failure.  The
  /// destination only appears once finish() renames the temp over it.
  explicit SequenceWriter(const std::filesystem::path& path,
                          const SerializeOptions& options = {});
  ~SequenceWriter();

  SequenceWriter(const SequenceWriter&) = delete;
  SequenceWriter& operator=(const SequenceWriter&) = delete;

  /// Append one container; returns its step index.
  std::size_t append(const Container& container);

  /// Write the trailing index, close, and atomically rename into place.
  /// Called by the destructor if not done explicitly; explicit calls
  /// surface errors.
  void finish();

  std::size_t steps_written() const noexcept { return index_.size(); }

 private:
  struct Entry {
    std::uint64_t offset;
    std::uint64_t size;
  };
  std::ofstream file_;
  std::filesystem::path path_;
  std::filesystem::path tmp_path_;
  SerializeOptions options_;
  std::vector<Entry> index_;
  bool finished_ = false;
};

struct SequenceReadOptions {
  /// When the trailing index is missing or implausible, forward-scan the
  /// file for container headers instead of failing (crashed-writer
  /// recovery).  The reader still throws if no step can be located.
  bool allow_index_rebuild = true;
};

/// Per-step verdict from a salvage pass.
struct StepHealth {
  std::size_t step = 0;
  bool ok = false;
  std::string error;  ///< empty when ok
};

struct SequenceScanReport {
  bool index_rebuilt = false;
  std::vector<StepHealth> steps;
  std::size_t ok_count() const;
};

class SequenceReader {
 public:
  explicit SequenceReader(const std::filesystem::path& path,
                          const SequenceReadOptions& options = {});

  std::size_t step_count() const noexcept { return index_.size(); }

  /// True when the trailing index was unusable and the step table was
  /// reconstructed by forward-scanning the file.
  bool index_rebuilt() const noexcept { return rebuilt_; }

  /// Read one step (random access).  Throws ContainerError on corruption
  /// (repairing single-section damage via parity when present) and
  /// std::out_of_range on a bad step number.
  Container read_step(std::size_t step);

  /// Read all steps in order; throws on the first unreadable step.
  std::vector<Container> read_all();

  /// Read every step that can be decoded, skipping corrupt ones.  The
  /// optional report records a verdict for each step.
  std::vector<Container> read_all_salvage(SequenceScanReport* report = nullptr);

 private:
  struct Entry {
    std::uint64_t offset;
    std::uint64_t size;
  };

  std::vector<std::uint8_t> read_step_bytes(std::size_t step);
  void rebuild_index(std::uint64_t file_size);

  std::ifstream file_;
  std::vector<Entry> index_;
  bool rebuilt_ = false;
};

}  // namespace rmp::io
