// Virtual-filesystem seam for every durable write the archive layer
// performs.  All container and sequence writes funnel through a FileOps
// instance, so tests (and the RMP_IO_INJECT environment hook) can swap in
// a fault-injecting implementation that produces short writes, EINTR,
// ENOSPC, a hard "process died" kill at the Nth syscall, or a torn write
// cut at byte K -- the failure modes a long-running simulation actually
// meets in production (DESIGN.md §10).
//
// The interface is deliberately POSIX-shaped (fd + errno) rather than
// iostream-shaped: durability needs fsync on the file *and* on the parent
// directory after a rename, which iostreams cannot express.  Methods are
// noexcept and return -errno on failure; the durable helpers below
// translate failures into typed ContainerError{kIoError} with the OS
// error text attached.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>

#include "io/container_error.hpp"

namespace rmp::io {

class FileOps {
 public:
  virtual ~FileOps() = default;

  /// open(2): returns a file descriptor >= 0, or -errno.
  virtual int open(const std::string& path, int flags,
                   unsigned mode) noexcept = 0;
  /// write(2): returns bytes written (possibly short), or -errno.
  virtual long write(int fd, const void* data, std::size_t size) noexcept = 0;
  /// pread(2): positional read, no shared file offset -- the primitive
  /// that makes one reader shareable by N threads.  Returns bytes read
  /// (possibly short, 0 at EOF), or -errno.
  virtual long pread(int fd, void* data, std::size_t size,
                     std::uint64_t offset) noexcept = 0;
  /// fstat(2) st_size: returns the file size in bytes, or -errno.
  virtual long fsize(int fd) noexcept = 0;
  virtual int fsync(int fd) noexcept = 0;
  virtual int close(int fd) noexcept = 0;
  virtual int rename(const std::string& from,
                     const std::string& to) noexcept = 0;
  virtual int unlink(const std::string& path) noexcept = 0;
  virtual int ftruncate(int fd, std::uint64_t size) noexcept = 0;
};

/// The pass-through POSIX implementation.
FileOps& real_file_ops() noexcept;

/// The process-wide instance all durable writes go through.  On first use
/// this consults RMP_IO_INJECT: when set to a valid fault spec, a
/// fault-injecting wrapper around the real ops is installed, so any CLI
/// invocation can be chaos-tested without recompiling.
FileOps& file_ops() noexcept;

/// Install `ops` (tests); nullptr restores the default (env-resolved)
/// instance.  Returns the previous override, or nullptr.
FileOps* set_file_ops(FileOps* ops) noexcept;

// ---------------------------------------------------------------------------
// Fault injection

enum class FaultKind : std::uint8_t {
  kNone,    ///< count ops, inject nothing (crash-harness calibration)
  kEintr,   ///< the scheduled op fails with EINTR (transient)
  kEagain,  ///< the scheduled op fails with EAGAIN (transient)
  kShort,   ///< the scheduled write writes only half its bytes
  kEnospc,  ///< the scheduled op fails with ENOSPC (permanent)
  kKill,    ///< the scheduled op and every later op fail with EIO
  kTorn,    ///< after K total payload bytes, cut mid-write and kill
};

/// One injected fault: `kind` strikes at 1-based op number `at` (ops =
/// open/write/fsync/rename) and repeats for `repeat` consecutive ops.
/// For kTorn, `at` is a byte budget over write payloads instead.
///
/// RMP_IO_INJECT grammar: "kind@n" with optional "xK" repeat, e.g.
///   RMP_IO_INJECT=enospc@3     third op fails with ENOSPC
///   RMP_IO_INJECT=eintr@2x3    ops 2-4 fail with EINTR, then succeed
///   RMP_IO_INJECT=short@5      fifth op is a half-length write
///   RMP_IO_INJECT=kill@7       op 7 onward all fail (simulated crash)
///   RMP_IO_INJECT=torn@512     writes die mid-syscall after 512 bytes
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  std::uint64_t at = 0;
  std::uint64_t repeat = 1;

  static std::optional<FaultSpec> parse(std::string_view text) noexcept;
};

/// Deterministic fault-injecting wrapper.  Counts faultable ops (open,
/// write, fsync, rename) and applies the spec; unlink/ftruncate/close
/// pass through so cleanup paths stay observable.  Reads (pread/fsize)
/// are NOT faultable ops -- they pass through untouched (except after a
/// kill/torn trip, where the dead "process" answers EIO like every other
/// call) so the kill@every-op crash sweeps keep stable op numbering no
/// matter how many reads a decode path issues.  Read-failure tests use a
/// bespoke FileOps subclass instead.  Injections are recorded under obs
/// counters "io.fault.injected" and "io.fault.<kind>".
class FaultInjectingFileOps : public FileOps {
 public:
  explicit FaultInjectingFileOps(FaultSpec spec,
                                 FileOps& base = real_file_ops()) noexcept
      : base_(base), spec_(spec) {}

  int open(const std::string& path, int flags, unsigned mode) noexcept override;
  long write(int fd, const void* data, std::size_t size) noexcept override;
  long pread(int fd, void* data, std::size_t size,
             std::uint64_t offset) noexcept override;
  long fsize(int fd) noexcept override;
  int fsync(int fd) noexcept override;
  int close(int fd) noexcept override;
  int rename(const std::string& from, const std::string& to) noexcept override;
  int unlink(const std::string& path) noexcept override;
  int ftruncate(int fd, std::uint64_t size) noexcept override;

  std::uint64_t ops_seen() const noexcept { return ops_; }
  std::uint64_t faults_injected() const noexcept { return faults_; }

 private:
  /// nullopt = op proceeds; otherwise the negative errno to return.
  std::optional<int> fault_for_op() noexcept;

  FileOps& base_;
  FaultSpec spec_;
  std::uint64_t ops_ = 0;          ///< faultable ops seen so far
  std::uint64_t bytes_ = 0;        ///< payload bytes written (kTorn budget)
  std::uint64_t faults_ = 0;
  bool dead_ = false;              ///< kKill/kTorn tripped: all ops fail
};

// ---------------------------------------------------------------------------
// Retry policy (transient failures only: EINTR / EAGAIN)

struct RetryPolicy {
  int max_attempts = 5;  ///< per syscall, counting the first try
  std::chrono::microseconds base_delay{100};
  std::chrono::microseconds max_delay{20'000};
  /// Injectable sleeper so tests do not pay real backoff time; nullptr
  /// sleeps for real.
  void (*sleeper)(std::chrono::microseconds) = nullptr;
  /// Total wall-clock budget: when set, no attempt starts (and no backoff
  /// sleep begins) at or past this instant.  The attempt bound caps how
  /// *often* we retry; the deadline caps how *long* -- so a request-level
  /// deadline threaded down here keeps disk backoff loops from outliving
  /// the request.  Exceeding it raises
  /// ContainerError{kDeadlineExceeded} and counts
  /// "io.retry.deadline_exceeded".
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Backoff before retry `attempt` (1-based): bounded exponential with
  /// deterministic jitter, so behaviour is reproducible under test.
  std::chrono::microseconds delay_for(int attempt) const noexcept;

  /// True once the wall-clock budget (if any) is spent.
  bool expired() const noexcept;
};

/// True for errno values worth retrying with backoff.
bool is_transient_io_error(int err) noexcept;

// ---------------------------------------------------------------------------
// Durable file helpers (all routed through file_ops())

/// RAII file descriptor with retrying full-write semantics.  Every method
/// throws ContainerError{kIoError} carrying the OS error text on
/// permanent failure; transient errors are retried per `policy` and
/// counted under "io.retry.*".
class DurableFile {
 public:
  /// O_WRONLY|O_CREAT|O_TRUNC -- staging files with unique names.
  static DurableFile create_truncate(const std::filesystem::path& path,
                                     const char* who,
                                     const RetryPolicy& policy = {});
  /// O_WRONLY|O_CREAT|O_EXCL -- refuses to clobber a concurrent writer's
  /// (or crashed predecessor's) file.
  static DurableFile create_exclusive(const std::filesystem::path& path,
                                      const char* who,
                                      const RetryPolicy& policy = {});
  /// O_WRONLY|O_APPEND on an existing file (journal resume).
  static DurableFile open_append(const std::filesystem::path& path,
                                 const char* who,
                                 const RetryPolicy& policy = {});

  DurableFile(DurableFile&& other) noexcept;
  DurableFile& operator=(DurableFile&&) = delete;
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;
  /// Best-effort close; use close() to surface errors.
  ~DurableFile();

  void write_all(std::span<const std::uint8_t> bytes);
  void sync();
  void truncate(std::uint64_t size);
  void close();

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::filesystem::path& path() const noexcept { return path_; }

  /// Swap the retry policy for subsequent operations -- how a request
  /// deadline is threaded into a long-lived file (e.g. a sequence
  /// journal) that outlives any single request.
  void set_policy(const RetryPolicy& policy) noexcept { policy_ = policy; }

 private:
  DurableFile(int fd, std::filesystem::path path, const char* who,
              RetryPolicy policy) noexcept;

  int fd_ = -1;
  std::filesystem::path path_;
  const char* who_ = "";
  RetryPolicy policy_;
};

/// RAII read-only file with stateless positional reads.  Unlike an
/// ifstream there is no seek cursor: every read names its own offset and
/// goes through FileOps::pread, so one ReadFile is safely shared by any
/// number of threads (the read methods are const and touch no mutable
/// state).  Transient errors (EINTR/EAGAIN) are retried per `policy`;
/// permanent failures throw ContainerError{kIoError} with the OS error
/// text.  Bytes read are counted under "io.bytes_read".
class ReadFile {
 public:
  /// O_RDONLY open; caches the file size (see size()).
  static ReadFile open(const std::filesystem::path& path, const char* who,
                       const RetryPolicy& policy = {});

  ReadFile() = default;
  ReadFile(ReadFile&& other) noexcept;
  ReadFile& operator=(ReadFile&&) = delete;
  ReadFile(const ReadFile&) = delete;
  ReadFile& operator=(const ReadFile&) = delete;
  ~ReadFile();

  /// Read exactly `size` bytes at `offset`.  EOF before `size` bytes
  /// throws ContainerError{kTruncated}.  Thread-safe.
  void read_exact_at(std::uint64_t offset, void* dst, std::size_t size) const;

  /// Read up to `size` bytes at `offset`; returns the count actually
  /// read (short only at EOF).  Thread-safe.  Callers that must treat
  /// truncation as data (e.g. trailer probing) use this and check the
  /// count instead of catching.
  std::size_t read_at(std::uint64_t offset, void* dst,
                      std::size_t size) const;

  /// File size at open time (archives are immutable once published).
  std::uint64_t size() const noexcept { return size_; }
  bool is_open() const noexcept { return fd_ >= 0; }
  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  ReadFile(int fd, std::uint64_t size, std::filesystem::path path,
           const char* who, RetryPolicy policy) noexcept;

  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::filesystem::path path_;
  const char* who_ = "";
  RetryPolicy policy_;
};

/// Unique staging-file name next to `dest`: "<dest>.tmp.<pid>.<counter>",
/// so concurrent writers to the same destination never share a temp file.
std::filesystem::path unique_tmp_path(const std::filesystem::path& dest);

/// fsync the directory containing `path`, making a just-renamed entry
/// durable.  Throws ContainerError{kIoError} on failure.
void fsync_parent_dir(const std::filesystem::path& path, const char* who,
                      const RetryPolicy& policy = {});

/// rename(from, to) with transient-error retries, then fsync the parent
/// directory of `to` so the new entry survives power loss.  Throws
/// ContainerError{kIoError} with the OS error text; `from` is left in
/// place on failure.
void durable_rename(const std::filesystem::path& from,
                    const std::filesystem::path& to, const char* who,
                    const RetryPolicy& policy = {});

/// The full durable atomic-publish protocol: write `bytes` to a unique
/// temp next to `path`, flush, fsync, rename over `path`, fsync the
/// parent directory.  The temp file is removed on every failure path; the
/// destination is only ever the old content or the complete new bytes.
void atomic_publish_bytes(const std::filesystem::path& path,
                          std::span<const std::uint8_t> bytes, const char* who,
                          const RetryPolicy& policy = {});

}  // namespace rmp::io
