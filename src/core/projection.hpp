// Projection-based preconditioners from the Heat3d case study (§IV):
//
//  * OneBase  -- the global mid Z-plane is the reduced model; every plane
//    stores its delta against it (Algorithm 1).
//  * MultiBase -- the grid is split into Z slabs and each slab uses its
//    own local mid-plane, avoiding the broadcast at the cost of storing
//    one plane per slab.
//  * DuoModel -- the prior-work baseline: a low-resolution version of the
//    field stands in for the reduced model and is upsampled (linearly) to
//    compute the delta.  True DuoModel re-runs the light simulation at
//    decode time instead of storing it; `store_reduced = false`
//    reproduces that (decode then needs the externally re-computed
//    reduced field).
//
// All three require 3D fields (the paper notes 1D Wave is "not relevant"
// for projection).
#pragma once

#include <cstddef>

#include "core/preconditioner.hpp"

namespace rmp::core {

class OneBasePreconditioner final : public Preconditioner {
 public:
  std::string name() const override { return "one-base"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;
};

class MultiBasePreconditioner final : public Preconditioner {
 public:
  /// `slabs` = number of Z sub-domains, each with a local mid-plane.
  explicit MultiBasePreconditioner(std::size_t slabs = 4);

  std::string name() const override { return "multi-base"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;

 private:
  std::size_t slabs_;
};

class DuoModelPreconditioner final : public Preconditioner {
 public:
  /// `factor` = resolution reduction per dimension.  `store_reduced`
  /// false reproduces the paper's DuoModel accounting (the reduced model
  /// is re-computed, not stored).
  explicit DuoModelPreconditioner(std::size_t factor = 4,
                                  bool store_reduced = true);

  std::string name() const override { return "duomodel"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;

  /// DuoModel proper: the reduced model is the output of a *separately
  /// run* coarse simulation (any shape; it is upsampled linearly to the
  /// full grid for the delta).  encode() defaults to the downsampled
  /// field, which is the data-only approximation.
  io::Container encode_with_reduced(const sim::Field& field,
                                    const sim::Field& reduced,
                                    const CodecPair& codecs,
                                    EncodeStats* stats) const;

  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;

  /// The reduced model encode() uses by default: the downsampled field.
  sim::Field make_reduced(const sim::Field& field) const;

 private:
  std::size_t factor_;
  bool store_reduced_;
};

}  // namespace rmp::core
