// Guard layer: degenerate-input hardening, NaN/Inf masking and a
// bound-verified fallback chain around the precondition -> compress
// pipeline.
//
// The paper's guarantee is a pointwise error bound on the reconstruction;
// this layer makes it enforceable end to end:
//
//   audit -> mask -> encode -> verify -> (demote and retry) -> provenance
//
// 1. *Audit*: a pre-flight census of the field (NaN/Inf/denormal counts,
//    constant-field and degenerate-shape detection) -- `DataAudit`.
// 2. *Mask*: nonfinite cells are lifted into a losslessly stored
//    "nanmask" container section and replaced by a neighbor-mean fill so
//    the covariance/Jacobi/SVD path only ever sees finite data; decode
//    restores every masked cell bit-exactly.
// 3. *Verify + demote*: after each candidate encode the container is
//    decoded back and |decoded - original| is checked on every finite
//    cell.  A failed bound, a thrown PreconditionError (eigen/SVD
//    non-convergence, rank failure) or any other data-shaped throw demotes
//    the request down a fallback chain that terminates at `raw` (lossless,
//    zero error) -- guarded_encode never throws for data-shaped reasons.
// 4. *Provenance*: the container records which model actually ran, every
//    demotion and why, and the verified max error, in a "guard" section
//    surfaced by `rmpc info` / `rmpc verify`.
//
// Containers without the new sections (all pre-guard archives) read back
// unchanged; the sections are advisory for every decoder except the
// nanmask restore applied by core::reconstruct.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/precond_error.hpp"
#include "core/preconditioner.hpp"

namespace rmp::core {

// ---------------------------------------------------------------------------
// Pre-flight data audit

struct DataAudit {
  std::size_t total = 0;
  std::size_t finite = 0;     ///< finite cells (subnormals included)
  std::size_t nans = 0;
  std::size_t pos_infs = 0;
  std::size_t neg_infs = 0;
  std::size_t denormals = 0;  ///< subnormal cells (they are finite)
  double finite_min = 0.0;    ///< over finite cells; 0 when none
  double finite_max = 0.0;
  double finite_mean = 0.0;
  bool constant_field = false;   ///< >= 1 finite cell and all of them equal
  bool degenerate_shape = false; ///< fewer than 2 cells

  std::size_t nonfinite() const noexcept { return nans + pos_infs + neg_infs; }
  bool all_nonfinite() const noexcept { return total > 0 && finite == 0; }
};

DataAudit audit_field(const sim::Field& field);

// ---------------------------------------------------------------------------
// Nonfinite masking

/// The exact IEEE-754 payloads of the nonfinite cells, keyed by flat index.
/// Round-trips bit-exactly (NaN payload bits included).
struct NanMask {
  std::vector<std::uint64_t> indices;
  std::vector<std::uint64_t> bits;

  bool empty() const noexcept { return indices.empty(); }
  std::size_t size() const noexcept { return indices.size(); }
};

/// Lift every nonfinite cell of `field` into the returned mask and replace
/// it in place with the mean of its finite grid neighbors (falling back to
/// the global finite mean, then 0.0).  The filled field is finite
/// everywhere.
NanMask extract_nonfinite(sim::Field& field);

/// Restore the masked cells bit-exactly.  Throws io::ContainerError
/// (kSectionMalformed) if an index is out of range for the field.
void apply_nanmask(sim::Field& field, const NanMask& mask);

/// Section payload codec for the "nanmask" section (losslessly compressed).
std::vector<std::uint8_t> nanmask_to_bytes(const NanMask& mask);
NanMask nanmask_from_bytes(std::span<const std::uint8_t> bytes);

/// Name of the container section holding the mask.
inline constexpr const char* kNanMaskSection = "nanmask";
/// Name of the container section holding the guard provenance record.
inline constexpr const char* kGuardSection = "guard";

// ---------------------------------------------------------------------------
// Provenance

struct Demotion {
  std::string from;    ///< method that was abandoned
  std::string reason;  ///< why (typed error slug or bound-verification text)
};

struct GuardProvenance {
  std::string requested;            ///< method the caller asked for
  std::string actual;               ///< method that produced the payload
  std::vector<Demotion> demotions;  ///< every step down the chain, in order
  std::size_t masked_cells = 0;     ///< nonfinite cells lifted into nanmask
  bool bound_checked = false;       ///< a bound-verification pass ran
  double bound = 0.0;               ///< the requested absolute bound
  bool bound_satisfied = false;     ///< |decoded - original| <= bound held
  double verified_max_error = 0.0;  ///< measured max error on finite cells
};

std::vector<std::uint8_t> provenance_to_bytes(const GuardProvenance& prov);
GuardProvenance provenance_from_bytes(std::span<const std::uint8_t> bytes);

/// Aligned text rendering for `rmpc info` / `rmpc verify`.
std::string format_provenance(const GuardProvenance& prov);

/// Parse the "guard" section of a container, if present.
std::optional<GuardProvenance> read_provenance(const io::Container& container);

// ---------------------------------------------------------------------------
// Guarded encode / decode

struct GuardOptions {
  /// Requested preconditioner.
  std::string method = "pca";
  /// Fallback chain appended after `method`; "raw" (lossless, zero error)
  /// is always ensured as the terminal entry so the chain cannot fail.
  std::vector<std::string> fallbacks = {"identity", "raw"};
  /// Absolute pointwise bound verified on every finite cell after each
  /// candidate encode; violation demotes.  Unset skips the demote-on-bound
  /// step but the achieved max error is still measured and recorded.
  std::optional<double> error_bound;
  /// Lift NaN/Inf cells into the nanmask section (on by default; turning
  /// it off hands nonfinite data straight to the preconditioner).
  bool mask_nonfinite = true;
  /// Preconditioner factory, overridable so tests can inject failing
  /// instances (e.g. a PCA with a zero eigen sweep budget).
  std::function<std::unique_ptr<Preconditioner>(const std::string&)> factory;
};

struct GuardedEncodeResult {
  io::Container container;
  GuardProvenance provenance;
  DataAudit audit;
  EncodeStats stats;
};

/// Audit, mask, encode with the first chain candidate that passes bound
/// verification, and stamp provenance.  Never throws for data-shaped
/// reasons (degenerate fields, non-convergence, bound violations); the
/// chain terminates at `raw` which always succeeds.  Throws
/// std::invalid_argument only for caller errors (unknown method names,
/// null codecs) and PreconditionError(kDegenerateInput) for empty fields.
///
/// Test hook: the environment variable RMP_GUARD_INJECT ("eigen", "svd" or
/// "bound") makes the *first* candidate fail with the corresponding
/// failure so the demotion path can be exercised end to end.
GuardedEncodeResult guarded_encode(const sim::Field& field,
                                   const CodecPair& codecs,
                                   const GuardOptions& options = {});

/// Decode a (possibly guarded) container: dispatch on container.method,
/// then restore the nanmask bit-exactly when present.  Equivalent to
/// core::reconstruct, re-exported here for symmetry.
sim::Field guarded_decode(const io::Container& container,
                          const CodecPair& codecs,
                          const sim::Field* external_reduced = nullptr);

}  // namespace rmp::core
