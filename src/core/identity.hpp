// Identity "preconditioner": compress the data directly with the
// original-grade codec.  This is the paper's baseline ("original") in
// every figure, wrapped in the same interface so the benches treat all
// methods uniformly.
#pragma once

#include "core/preconditioner.hpp"

namespace rmp::core {

class IdentityPreconditioner final : public Preconditioner {
 public:
  std::string name() const override { return "identity"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;
};

/// Lossless terminal of the guard layer's fallback chain: the raw IEEE-754
/// bytes run through the generic LZ+Huffman backend, ignoring both codecs.
/// Round-trips bit-exactly (NaN payloads included), never fails for
/// data-shaped reasons, and guarantees a zero pointwise error -- the one
/// model that can always honor a bound.
class RawPreconditioner final : public Preconditioner {
 public:
  std::string name() const override { return "raw"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;
};

}  // namespace rmp::core
