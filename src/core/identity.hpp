// Identity "preconditioner": compress the data directly with the
// original-grade codec.  This is the paper's baseline ("original") in
// every figure, wrapped in the same interface so the benches treat all
// methods uniformly.
#pragma once

#include "core/preconditioner.hpp"

namespace rmp::core {

class IdentityPreconditioner final : public Preconditioner {
 public:
  std::string name() const override { return "identity"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;
};

}  // namespace rmp::core
