#include "core/svd_precond.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/pca.hpp"  // components_for_target
#include "core/precond_error.hpp"
#include "core/reshape.hpp"
#include "core/serialize.hpp"
#include "la/svd.hpp"
#include "obs/obs.hpp"

namespace rmp::core {
namespace {

// U_k scaled by the singular values: the "dimension-reduced data".
la::Matrix scaled_leading(const la::SvdResult& svd, std::size_t k) {
  la::Matrix p(svd.u.rows(), k);
  for (std::size_t i = 0; i < svd.u.rows(); ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      p(i, j) = svd.u(i, j) * svd.sigma[j];
    }
  }
  return p;
}

la::Matrix leading_v(const la::SvdResult& svd, std::size_t k) {
  la::Matrix v(svd.v.rows(), k);
  for (std::size_t i = 0; i < svd.v.rows(); ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      v(i, j) = svd.v(i, j);
    }
  }
  return v;
}

}  // namespace

std::vector<double> svd_singular_proportions(const sim::Field& field) {
  la::Matrix a = as_matrix(field);
  const auto svd = la::jacobi_svd(a);
  double total = 0.0;
  for (double s : svd.sigma) total += s;
  std::vector<double> proportions(svd.sigma.size(), 0.0);
  if (total > 0.0) {
    for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
      proportions[i] = svd.sigma[i] / total;
    }
  } else if (!proportions.empty()) {
    proportions[0] = 1.0;
  }
  return proportions;
}

SvdPreconditioner::SvdPreconditioner(SvdOptionsPre options)
    : options_(options) {
  if (options_.energy_target <= 0.0 || options_.energy_target > 1.0) {
    throw std::invalid_argument("svd: energy_target must be in (0, 1]");
  }
}

io::Container SvdPreconditioner::encode(const sim::Field& field,
                                        const CodecPair& codecs,
                                        EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/svd");
  const la::Matrix a = as_matrix(field);
  const auto svd = la::jacobi_svd(a, options_.svd);
  if (!svd.converged) {
    throw PreconditionError(
        PrecondErrc::kSvdNonConvergence,
        "svd: column pairs still non-orthogonal (residual " +
            std::to_string(svd.max_off_orthogonality) + ") after " +
            std::to_string(options_.svd.max_sweeps) + " sweep(s)");
  }

  double total = 0.0;
  for (double s : svd.sigma) total += s;
  std::vector<double> proportions(svd.sigma.size(), 0.0);
  for (std::size_t i = 0; i < svd.sigma.size() && total > 0.0; ++i) {
    proportions[i] = svd.sigma[i] / total;
  }
  std::size_t k = components_for_target(proportions, options_.energy_target);
  k = std::max<std::size_t>(1, std::min(k, svd.sigma.size()));

  const la::Matrix p = scaled_leading(svd, k);  // (rows of internal U) x k
  const la::Matrix vk = leading_v(svd, k);

  const auto p_bytes =
      traced_compress(*codecs.reduced, "reduced-compress", p.flat(),
                      compress::Dims::d2(p.rows(), p.cols()));

  la::Matrix recon_p = p;
  if (options_.delta_against_decoded) {
    recon_p = la::Matrix(p.rows(), p.cols(),
                         codecs.reduced->decompress(p_bytes));
  }
  la::Matrix reconstruction = recon_p * vk.transposed();
  if (svd.transposed) reconstruction = reconstruction.transposed();

  const sim::Field delta = subtract(
      field,
      matrix_to_field(reconstruction, field.nx(), field.ny(), field.nz()));

  io::Container container;
  container.method = name();
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
  container.add("u_sigma", p_bytes);
  container.add("v", matrix_to_bytes(vk));
  container.add("delta",
                traced_compress(*codecs.delta, "delta-compress", delta.flat(),
                                {field.nx(), field.ny(), field.nz()}));
  const std::uint64_t meta[3] = {k, p.rows(), svd.transposed ? 1u : 0u};
  container.add("meta", u64s_to_bytes(meta));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->reduced_bytes = container.find("u_sigma")->bytes.size() +
                           container.find("v")->bytes.size();
    stats->delta_bytes = container.find("delta")->bytes.size();
  }
  return container;
}

sim::Field SvdPreconditioner::decode(const io::Container& container,
                                     const CodecPair& codecs,
                                     const sim::Field*) const {
  const obs::ScopedSpan span("svd");
  const auto& p_section = require_section(container, "u_sigma", "svd");
  const auto& v_section = require_section(container, "v", "svd");
  const auto& delta_section = require_section(container, "delta", "svd");
  const auto& meta_section = require_section(container, "meta", "svd");
  const auto meta = bytes_to_u64s(meta_section.bytes);
  const std::size_t k = meta.at(0);
  const std::size_t rows = meta.at(1);
  const bool transposed = meta.at(2) != 0;

  const la::Matrix vk = bytes_to_matrix(v_section.bytes);
  la::Matrix p(rows, k, codecs.reduced->decompress(p_section.bytes));

  la::Matrix reconstruction = p * vk.transposed();
  if (transposed) reconstruction = reconstruction.transposed();

  const auto delta_values = codecs.delta->decompress(delta_section.bytes);
  sim::Field out = sim::Field::from_data(container.nx, container.ny,
                                         container.nz, delta_values);
  return add(out, matrix_to_field(reconstruction, container.nx, container.ny,
                                  container.nz));
}

}  // namespace rmp::core
