// Temporal preconditioning of snapshot sequences -- the time-axis
// counterpart of one-base.  Scientific outputs "capture physical
// quantities in both space and time" (§V); successive snapshots of the
// same field are themselves an excellent reduced model of each other, so
// a sequence is stored as one keyframe (original-grade) plus per-step
// deltas against the *decoded* predecessor (delta-grade), keeping the
// error from accumulating across steps.
#pragma once

#include <vector>

#include "core/preconditioner.hpp"

namespace rmp::core {

struct TemporalSequence {
  /// One container per snapshot; [0] is the keyframe.
  std::vector<io::Container> steps;
  std::size_t total_bytes() const;
};

struct TemporalOptions {
  /// Insert a fresh keyframe every `keyframe_interval` snapshots (0 =
  /// only the first snapshot is a keyframe).
  std::size_t keyframe_interval = 0;
};

/// Encode a snapshot sequence (all snapshots must share a shape).
TemporalSequence temporal_encode(const std::vector<sim::Field>& snapshots,
                                 const CodecPair& codecs,
                                 const TemporalOptions& options = {});

/// Decode the full sequence.
std::vector<sim::Field> temporal_decode(const TemporalSequence& sequence,
                                        const CodecPair& codecs);

}  // namespace rmp::core
