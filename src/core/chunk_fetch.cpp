#include "core/chunk_fetch.hpp"

#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::core {

// ---------------------------------------------------------------------------
// ChunkCache

ChunkPtr ChunkCache::get(std::size_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  order_.splice(order_.begin(), order_, it->second.position);
  return it->second.value;
}

void ChunkCache::put(std::size_t key, ChunkPtr value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.value = std::move(value);
    order_.splice(order_.begin(), order_, it->second.position);
    return;
  }
  while (map_.size() >= capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  map_.emplace(key, Slot{std::move(value), order_.begin()});
}

bool ChunkCache::contains(std::size_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.find(key) != map_.end();
}

std::size_t ChunkCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

// ---------------------------------------------------------------------------
// SequentialPrefetcher

std::vector<std::size_t> SequentialPrefetcher::on_access(std::size_t index,
                                                         std::size_t total) {
  if (last_ != static_cast<std::size_t>(-1) && index == last_ + 1) {
    window_ = std::min(window_ * 2, max_window_);
  } else if (index != last_) {
    window_ = 1;
  }
  last_ = index;
  std::vector<std::size_t> ahead;
  if (max_window_ == 0) return ahead;
  ahead.reserve(window_);
  for (std::size_t k = 1; k <= window_ && index + k < total; ++k) {
    ahead.push_back(index + k);
  }
  return ahead;
}

// ---------------------------------------------------------------------------
// ChunkFetcher

ChunkFetcher::ChunkFetcher(std::size_t chunk_count, Loader loader,
                           const ChunkFetchOptions& options)
    : chunk_count_(chunk_count),
      loader_(std::move(loader)),
      options_(options),
      cache_(options.cache_chunks),
      // A cache-less fetcher has nowhere to keep prefetched chunks, so
      // scheduling them would be pure wasted decode work.
      prefetcher_(options.cache_chunks == 0 ? 0 : options.prefetch_window) {}

ChunkFetcher::~ChunkFetcher() { drain(); }

void ChunkFetcher::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [this] { return pending_tasks_ == 0; });
}

ChunkPtr ChunkFetcher::load_and_publish(
    std::size_t index, const std::shared_ptr<InFlight>& entry) {
  ChunkPtr chunk;
  try {
    const obs::ScopedSpan span("chunk-decode");
    chunk = loader_(index);
  } catch (...) {
    entry->promise.set_exception(std::current_exception());
    {
      // Failed loads must not pin the entry: a later demand for the same
      // chunk deserves a fresh attempt (transient I/O errors heal).
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = in_flight_.find(index);
      if (it != in_flight_.end() && it->second == entry) in_flight_.erase(it);
    }
    throw;
  }
  cache_.put(index, chunk);
  entry->promise.set_value(chunk);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = in_flight_.find(index);
    if (it != in_flight_.end() && it->second == entry) in_flight_.erase(it);
  }
  return chunk;
}

void ChunkFetcher::schedule_prefetch(const std::vector<std::size_t>& indices) {
  for (const std::size_t index : indices) {
    std::shared_ptr<InFlight> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (in_flight_.find(index) != in_flight_.end()) continue;
      if (cache_.contains(index)) continue;
      entry = std::make_shared<InFlight>();
      entry->future = entry->promise.get_future().share();
      in_flight_.emplace(index, entry);
    }
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      ++pending_tasks_;
    }
    obs::count("chunk.prefetch.issued");
    try {
      parallel::active_pool().submit([this, index, entry] {
        // Claim or concede: a demand thread may have stolen this chunk
        // between scheduling and execution.
        int expected = 0;
        if (entry->state.compare_exchange_strong(expected, 1)) {
          try {
            load_and_publish(index, entry);
          } catch (...) {
            // Already delivered through the entry's promise; nothing to
            // do here -- a background task has no caller to rethrow to.
          }
        } else {
          obs::count("chunk.prefetch.wasted");
        }
        std::lock_guard<std::mutex> lock(drain_mutex_);
        --pending_tasks_;
        drain_cv_.notify_all();
      });
    } catch (...) {
      // submit() failed (e.g. pool shutting down): roll the bookkeeping
      // back and forget the entry; the chunk will load on demand.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = in_flight_.find(index);
        if (it != in_flight_.end() && it->second == entry) {
          in_flight_.erase(it);
        }
      }
      std::lock_guard<std::mutex> lock(drain_mutex_);
      --pending_tasks_;
      drain_cv_.notify_all();
    }
  }
}

ChunkPtr ChunkFetcher::get(std::size_t index) {
  if (index >= chunk_count_) {
    throw std::out_of_range("ChunkFetcher: chunk index out of range");
  }
  std::vector<std::size_t> ahead;
  std::shared_ptr<InFlight> entry;
  ChunkPtr hit;
  bool claimed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ahead = prefetcher_.on_access(index, chunk_count_);
    hit = cache_.get(index);
    if (hit != nullptr) {
      obs::count("chunk.cache.hits");
    } else {
      obs::count("chunk.cache.misses");
      const auto it = in_flight_.find(index);
      if (it != in_flight_.end()) {
        entry = it->second;
      } else {
        entry = std::make_shared<InFlight>();
        entry->future = entry->promise.get_future().share();
        entry->state.store(1, std::memory_order_relaxed);  // born claimed
        in_flight_.emplace(index, entry);
        claimed = true;
      }
    }
  }
  schedule_prefetch(ahead);
  if (hit != nullptr) return hit;
  if (!claimed) {
    // Steal the queued task if it has not started: blocking on work that
    // is stuck *behind us* in the pool queue would deadlock the pool.
    int expected = 0;
    claimed = entry->state.compare_exchange_strong(expected, 1);
    if (!claimed) obs::count("chunk.prefetch.joined");
  }
  if (claimed) return load_and_publish(index, entry);
  return entry->future.get();  // actively decoding elsewhere: safe to wait
}

// ---------------------------------------------------------------------------
// Conveniences

ChunkFetcher make_sequence_fetcher(const io::SequenceReader& reader,
                                   const ChunkFetchOptions& options) {
  return ChunkFetcher(
      reader.step_count(),
      [&reader](std::size_t step) {
        return std::make_shared<const io::Container>(reader.read_step(step));
      },
      options);
}

std::vector<ChunkPtr> fetch_all(ChunkFetcher& fetcher) {
  const obs::ScopedSpan span("chunk-fetch-all");
  std::vector<ChunkPtr> chunks(fetcher.chunk_count());
  // Disjoint scatter: element c is only touched by the body for c.
  parallel::parallel_for(
      fetcher.chunk_count(), [&](std::size_t c) { chunks[c] = fetcher.get(c); },
      /*grain=*/1);
  return chunks;
}

}  // namespace rmp::core
