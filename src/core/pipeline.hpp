// End-to-end pipeline helpers: run (precondition -> compress) and
// (decompress -> reconstruct) with wall-clock timing and quality metrics.
// This is the surface the benches and examples talk to.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/preconditioner.hpp"

namespace rmp::core {

struct PipelineResult {
  std::string method;
  EncodeStats stats;
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  double rmse = 0.0;
  double max_error = 0.0;
  io::Container container;
};

/// Encode, then decode, then compare against the input.  For methods whose
/// reduced model is not stored (DuoModel with store_reduced = false), pass
/// the re-computed reduced field via `external_reduced`.
PipelineResult run_pipeline(const Preconditioner& preconditioner,
                            const sim::Field& field, const CodecPair& codecs,
                            const sim::Field* external_reduced = nullptr);

/// Reconstruct from a container by dispatching on container.method with
/// the default-constructed preconditioner of that name.  When the
/// container carries a guard-layer "nanmask" section, the original
/// nonfinite cells are restored bit-exactly after the decode.
sim::Field reconstruct(const io::Container& container, const CodecPair& codecs,
                       const sim::Field* external_reduced = nullptr);

/// Outcome of a graceful-degradation reconstruction.
struct BestEffortResult {
  sim::Field field;
  /// The archive decoded bit-for-bit (possibly after a parity repair).
  bool exact = false;
  /// Some payload was lost; `field` is an approximation (typically the
  /// reduced-model-only reconstruction with the delta treated as zero).
  bool approximate = false;
  /// Sections that were unrecoverable, from the read report.
  std::vector<std::string> damaged_sections;
  /// Human-readable damage/quality note for reports and CLI output.
  std::string detail;
};

/// Graceful degradation: decode as much as the damage allows.  A complete
/// (or parity-repaired) container decodes exactly; a container whose
/// "delta" section is unrecoverable falls back to the reduced-model-only
/// approximation; anything else throws io::ContainerError.  `container`
/// is a salvage read (damaged sections dropped) described by `report`.
BestEffortResult reconstruct_best_effort(
    const io::Container& container, const io::ReadReport& report,
    const CodecPair& codecs, const sim::Field* external_reduced = nullptr);

/// Convenience overload: salvage-parse `bytes` first.
BestEffortResult reconstruct_best_effort(
    std::span<const std::uint8_t> bytes, const CodecPair& codecs,
    const sim::Field* external_reduced = nullptr);

}  // namespace rmp::core
