// End-to-end pipeline helpers: run (precondition -> compress) and
// (decompress -> reconstruct) with wall-clock timing and quality metrics.
// This is the surface the benches and examples talk to.
#pragma once

#include <string>

#include "core/preconditioner.hpp"

namespace rmp::core {

struct PipelineResult {
  std::string method;
  EncodeStats stats;
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  double rmse = 0.0;
  double max_error = 0.0;
  io::Container container;
};

/// Encode, then decode, then compare against the input.  For methods whose
/// reduced model is not stored (DuoModel with store_reduced = false), pass
/// the re-computed reduced field via `external_reduced`.
PipelineResult run_pipeline(const Preconditioner& preconditioner,
                            const sim::Field& field, const CodecPair& codecs,
                            const sim::Field* external_reduced = nullptr);

/// Reconstruct from a container by dispatching on container.method with
/// the default-constructed preconditioner of that name.
sim::Field reconstruct(const io::Container& container, const CodecPair& codecs,
                       const sim::Field* external_reduced = nullptr);

}  // namespace rmp::core
