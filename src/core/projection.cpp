#include "core/projection.hpp"

#include <stdexcept>

#include "core/serialize.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::core {
namespace {

compress::Dims dims3(std::size_t nx, std::size_t ny, std::size_t nz) {
  return {nx, ny, nz};
}

void require_3d(const sim::Field& field, const char* who) {
  if (field.rank() != 3) {
    throw std::invalid_argument(std::string(who) +
                                ": projection methods need a 3D field");
  }
}

void base_container(io::Container& container, const sim::Field& field) {
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
}

// Per-plane loops fan out over X ranges once the field is big enough for
// the pool dispatch to pay for itself; below the cutoff they run inline.
constexpr std::size_t kParallelElementCutoff = 1u << 14;

void for_x_ranges(std::size_t nx, std::size_t total_elements,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (total_elements < kParallelElementCutoff) {
    body(0, nx);
  } else {
    parallel::parallel_for_ranges(nx, body);
  }
}

/// Z-slab extents for multi-base: slab s covers [begin, end).
struct Slab {
  std::size_t begin, end, mid;
};
std::vector<Slab> make_slabs(std::size_t nz, std::size_t count) {
  std::vector<Slab> slabs;
  slabs.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t begin = s * nz / count;
    const std::size_t end = (s + 1) * nz / count;
    slabs.push_back({begin, end, (begin + end) / 2});
  }
  return slabs;
}

}  // namespace

// ---------------------------------------------------------------------------
// OneBase

io::Container OneBasePreconditioner::encode(const sim::Field& field,
                                            const CodecPair& codecs,
                                            EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/one-base");
  require_3d(field, "one-base");
  const std::size_t mid = field.nz() / 2;
  const sim::Field plane = extract_z_plane(field, mid);

  // Algorithm 1: every plane's delta against the (broadcast) mid-plane.
  // X-ranges write disjoint regions of `delta`, so they fan out onto the
  // shared pool.
  sim::Field delta(field.nx(), field.ny(), field.nz());
  for_x_ranges(
      field.nx(), field.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < field.ny(); ++j) {
            const double base = plane.at(i, j);
            for (std::size_t k = 0; k < field.nz(); ++k) {
              delta.at(i, j, k) = field.at(i, j, k) - base;
            }
          }
        }
      });

  io::Container container;
  container.method = name();
  base_container(container, field);
  container.add("reduced",
                traced_compress(*codecs.reduced, "reduced-compress",
                                plane.flat(), dims3(field.nx(), field.ny(), 1)));
  container.add("delta",
                traced_compress(*codecs.delta, "delta-compress", delta.flat(),
                                dims3(field.nx(), field.ny(), field.nz())));
  const std::uint64_t meta[1] = {mid};
  container.add("meta", u64s_to_bytes(meta));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->reduced_bytes = container.find("reduced")->bytes.size();
    stats->delta_bytes = container.find("delta")->bytes.size();
  }
  return container;
}

sim::Field OneBasePreconditioner::decode(const io::Container& container,
                                         const CodecPair& codecs,
                                         const sim::Field*) const {
  const obs::ScopedSpan span("one-base");
  const auto& reduced = require_section(container, "reduced", "one-base");
  const auto& delta_section = require_section(container, "delta", "one-base");
  const auto plane_values = codecs.reduced->decompress(reduced.bytes);
  const auto delta_values = codecs.delta->decompress(delta_section.bytes);
  if (plane_values.size() != container.nx * container.ny) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             "one-base decode: reduced plane size mismatch",
                             "reduced");
  }
  if (delta_values.size() != container.nx * container.ny * container.nz) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             "one-base decode: delta size mismatch", "delta");
  }

  sim::Field out(container.nx, container.ny, container.nz);
  for_x_ranges(
      container.nx, container.nx * container.ny * container.nz,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < container.ny; ++j) {
            const double base = plane_values[i * container.ny + j];
            for (std::size_t k = 0; k < container.nz; ++k) {
              out.at(i, j, k) =
                  base +
                  delta_values[(i * container.ny + j) * container.nz + k];
            }
          }
        }
      });
  return out;
}

// ---------------------------------------------------------------------------
// MultiBase

MultiBasePreconditioner::MultiBasePreconditioner(std::size_t slabs)
    : slabs_(slabs) {
  if (slabs_ == 0) {
    throw std::invalid_argument("multi-base: slab count must be positive");
  }
}

io::Container MultiBasePreconditioner::encode(const sim::Field& field,
                                              const CodecPair& codecs,
                                              EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/multi-base");
  require_3d(field, "multi-base");
  const std::size_t count = std::min(slabs_, field.nz());
  const auto slabs = make_slabs(field.nz(), count);

  // Reduced model: the stack of per-slab mid-planes, an (nx, ny, count)
  // field -- no broadcast needed, each sub-domain is self-contained.
  sim::Field planes(field.nx(), field.ny(), count);
  for (std::size_t s = 0; s < count; ++s) {
    for (std::size_t i = 0; i < field.nx(); ++i) {
      for (std::size_t j = 0; j < field.ny(); ++j) {
        planes.at(i, j, s) = field.at(i, j, slabs[s].mid);
      }
    }
  }

  // X is the outer parallel axis (disjoint writes per i); each task walks
  // all slabs for its rows, which keeps the (i, j) plane lookups local.
  sim::Field delta(field.nx(), field.ny(), field.nz());
  for_x_ranges(
      field.nx(), field.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t s = 0; s < count; ++s) {
            for (std::size_t j = 0; j < field.ny(); ++j) {
              const double base = planes.at(i, j, s);
              for (std::size_t k = slabs[s].begin; k < slabs[s].end; ++k) {
                delta.at(i, j, k) = field.at(i, j, k) - base;
              }
            }
          }
        }
      });

  io::Container container;
  container.method = name();
  base_container(container, field);
  container.add("reduced",
                traced_compress(*codecs.reduced, "reduced-compress",
                                planes.flat(),
                                dims3(field.nx(), field.ny(), count)));
  container.add("delta",
                traced_compress(*codecs.delta, "delta-compress", delta.flat(),
                                dims3(field.nx(), field.ny(), field.nz())));
  const std::uint64_t meta[1] = {count};
  container.add("meta", u64s_to_bytes(meta));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->reduced_bytes = container.find("reduced")->bytes.size();
    stats->delta_bytes = container.find("delta")->bytes.size();
  }
  return container;
}

sim::Field MultiBasePreconditioner::decode(const io::Container& container,
                                           const CodecPair& codecs,
                                           const sim::Field*) const {
  const obs::ScopedSpan span("multi-base");
  const auto& reduced = require_section(container, "reduced", "multi-base");
  const auto& delta_section =
      require_section(container, "delta", "multi-base");
  const auto& meta = require_section(container, "meta", "multi-base");
  const auto meta_values = bytes_to_u64s(meta.bytes);
  const std::size_t count = meta_values.at(0);
  const auto slabs = make_slabs(container.nz, count);

  const auto plane_values = codecs.reduced->decompress(reduced.bytes);
  const auto delta_values = codecs.delta->decompress(delta_section.bytes);
  if (plane_values.size() != container.nx * container.ny * count) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             "multi-base decode: reduced size mismatch",
                             "reduced");
  }

  sim::Field out(container.nx, container.ny, container.nz);
  for_x_ranges(
      container.nx, container.nx * container.ny * container.nz,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t s = 0; s < count; ++s) {
            for (std::size_t j = 0; j < container.ny; ++j) {
              const double base =
                  plane_values[(i * container.ny + j) * count + s];
              for (std::size_t k = slabs[s].begin; k < slabs[s].end; ++k) {
                out.at(i, j, k) =
                    base +
                    delta_values[(i * container.ny + j) * container.nz + k];
              }
            }
          }
        }
      });
  return out;
}

// ---------------------------------------------------------------------------
// DuoModel

DuoModelPreconditioner::DuoModelPreconditioner(std::size_t factor,
                                               bool store_reduced)
    : factor_(factor), store_reduced_(store_reduced) {
  if (factor_ < 2) {
    throw std::invalid_argument("duomodel: factor must be >= 2");
  }
}

sim::Field DuoModelPreconditioner::make_reduced(const sim::Field& field) const {
  return downsample(field, factor_,
                    field.ny() > 1 ? factor_ : 1,
                    field.nz() > 1 ? factor_ : 1);
}

io::Container DuoModelPreconditioner::encode(const sim::Field& field,
                                             const CodecPair& codecs,
                                             EncodeStats* stats) const {
  return encode_with_reduced(field, make_reduced(field), codecs, stats);
}

io::Container DuoModelPreconditioner::encode_with_reduced(
    const sim::Field& field, const sim::Field& reduced,
    const CodecPair& codecs, EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/duomodel");
  const sim::Field reconstruction =
      upsample_linear(reduced, field.nx(), field.ny(), field.nz());
  const sim::Field delta = subtract(field, reconstruction);

  io::Container container;
  container.method = name();
  base_container(container, field);
  container.add("delta",
                traced_compress(*codecs.delta, "delta-compress", delta.flat(),
                                dims3(field.nx(), field.ny(), field.nz())));
  if (store_reduced_) {
    container.add("reduced",
                  traced_compress(
                      *codecs.reduced, "reduced-compress", reduced.flat(),
                      dims3(reduced.nx(), reduced.ny(), reduced.nz())));
  }
  const std::uint64_t meta[5] = {reduced.nx(), reduced.ny(), reduced.nz(),
                                 factor_, store_reduced_ ? 1u : 0u};
  container.add("meta", u64s_to_bytes(meta));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    const auto* r = container.find("reduced");
    stats->reduced_bytes = r != nullptr ? r->bytes.size() : 0;
    stats->delta_bytes = container.find("delta")->bytes.size();
  }
  return container;
}

sim::Field DuoModelPreconditioner::decode(
    const io::Container& container, const CodecPair& codecs,
    const sim::Field* external_reduced) const {
  const obs::ScopedSpan span("duomodel");
  const auto& delta_section = require_section(container, "delta", "duomodel");
  const auto& meta = require_section(container, "meta", "duomodel");
  const auto meta_values = bytes_to_u64s(meta.bytes);
  const std::size_t rnx = meta_values.at(0);
  const std::size_t rny = meta_values.at(1);
  const std::size_t rnz = meta_values.at(2);
  const bool stored = meta_values.at(4) != 0;

  sim::Field reduced;
  if (stored) {
    const auto& reduced_section =
        require_section(container, "reduced", "duomodel");
    reduced = sim::Field::from_data(
        rnx, rny, rnz, codecs.reduced->decompress(reduced_section.bytes));
  } else {
    // True DuoModel: the light simulation is re-run; the caller supplies
    // its output.
    if (external_reduced == nullptr) {
      throw std::invalid_argument(
          "duomodel decode: reduced model not stored; supply the re-computed "
          "reduced field");
    }
    if (external_reduced->nx() != rnx || external_reduced->ny() != rny ||
        external_reduced->nz() != rnz) {
      throw std::invalid_argument(
          "duomodel decode: external reduced field has the wrong shape");
    }
    reduced = *external_reduced;
  }

  const sim::Field reconstruction =
      upsample_linear(reduced, container.nx, container.ny, container.nz);
  const auto delta_values = codecs.delta->decompress(delta_section.bytes);
  sim::Field out = sim::Field::from_data(container.nx, container.ny,
                                         container.nz, delta_values);
  return add(out, reconstruction);
}

}  // namespace rmp::core
