// Partitioned-matrix PCA (the paper's first future-work item, §VII):
// split the canonical m x n matrix into `partitions` row blocks and run
// PCA independently on each.  Covariance and eigen work stay O(n^3) per
// block but the m n^2 score/reconstruction cost parallelizes and the
// per-block k adapts to local structure, cutting the compression overhead
// that dominates Fig. 12 / Table IV.
#pragma once

#include <cstddef>

#include "core/preconditioner.hpp"

namespace rmp::core {

struct PartitionedPcaOptions {
  std::size_t partitions = 4;
  double variance_target = 0.95;
};

class PartitionedPcaPreconditioner final : public Preconditioner {
 public:
  explicit PartitionedPcaPreconditioner(PartitionedPcaOptions options = {});

  std::string name() const override { return "pca-part"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;

  const PartitionedPcaOptions& options() const noexcept { return options_; }

 private:
  PartitionedPcaOptions options_;
};

}  // namespace rmp::core
