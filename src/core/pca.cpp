#include "core/pca.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/precond_error.hpp"
#include "core/reshape.hpp"
#include "core/serialize.hpp"
#include "la/covariance.hpp"
#include "la/eigen.hpp"
#include "obs/obs.hpp"

namespace rmp::core {
namespace {

la::Matrix leading_columns(const la::Matrix& m, std::size_t k) {
  la::Matrix out(m.rows(), k);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      out(i, j) = m(i, j);
    }
  }
  return out;
}

}  // namespace

std::size_t components_for_target(const std::vector<double>& proportions,
                                  double target) {
  double cumulative = 0.0;
  for (std::size_t k = 0; k < proportions.size(); ++k) {
    cumulative += proportions[k];
    if (cumulative >= target) return k + 1;
  }
  return proportions.empty() ? 0 : proportions.size();
}

std::vector<double> pca_variance_proportions(const sim::Field& field) {
  const la::Matrix a = as_matrix(field);
  const la::Matrix cov = la::covariance(a);
  const auto eig = la::jacobi_eigen(cov);
  double total = 0.0;
  std::vector<double> clamped;
  clamped.reserve(eig.values.size());
  for (double v : eig.values) {
    // Tiny negative eigenvalues are numerical noise.
    clamped.push_back(std::max(v, 0.0));
    total += clamped.back();
  }
  if (total <= 0.0) {
    // Constant data: the first "component" trivially carries everything.
    std::vector<double> proportions(clamped.size(), 0.0);
    if (!proportions.empty()) proportions[0] = 1.0;
    return proportions;
  }
  for (double& v : clamped) v /= total;
  return clamped;
}

PcaPreconditioner::PcaPreconditioner(PcaOptions options) : options_(options) {
  if (options_.variance_target <= 0.0 || options_.variance_target > 1.0) {
    throw std::invalid_argument("pca: variance_target must be in (0, 1]");
  }
}

io::Container PcaPreconditioner::encode(const sim::Field& field,
                                        const CodecPair& codecs,
                                        EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/pca");
  la::Matrix a = as_matrix(field);
  const auto means = la::column_means(a);
  la::Matrix centered = a;
  la::center_columns(centered, means);

  const la::Matrix cov = la::covariance(a);
  const auto eig = la::jacobi_eigen(cov, options_.jacobi);
  if (!eig.converged) {
    throw PreconditionError(
        PrecondErrc::kEigenNonConvergence,
        "pca: covariance eigendecomposition left off-diagonal residual " +
            std::to_string(eig.off_diagonal_residual) + " after " +
            std::to_string(options_.jacobi.max_sweeps) + " sweep(s)");
  }

  // k components covering the variance target.
  std::vector<double> proportions;
  proportions.reserve(eig.values.size());
  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  for (double v : eig.values) {
    proportions.push_back(total > 0.0 ? std::max(v, 0.0) / total : 0.0);
  }
  std::size_t k = components_for_target(proportions, options_.variance_target);
  k = std::max<std::size_t>(1, k);

  const la::Matrix basis = leading_columns(eig.vectors, k);  // n x k
  const la::Matrix scores = centered * basis;                // m x k

  const auto scores_bytes =
      traced_compress(*codecs.reduced, "reduced-compress", scores.flat(),
                      compress::Dims::d2(scores.rows(), scores.cols()));

  // Reconstruction used for the delta: clean scores by default (the
  // paper's pipeline), decoded scores when the ablation flag is set.
  la::Matrix recon_scores = scores;
  if (options_.delta_against_decoded) {
    recon_scores = la::Matrix(scores.rows(), scores.cols(),
                              codecs.reduced->decompress(scores_bytes));
  }
  la::Matrix reconstruction = recon_scores * basis.transposed();  // m x n
  la::uncenter_columns(reconstruction, means);

  sim::Field delta = subtract(
      field, matrix_to_field(reconstruction, field.nx(), field.ny(),
                             field.nz()));

  io::Container container;
  container.method = name();
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
  container.add("scores", scores_bytes);
  container.add("basis", matrix_to_bytes(basis));
  container.add("means", doubles_to_bytes(means));
  container.add("delta",
                traced_compress(*codecs.delta, "delta-compress", delta.flat(),
                                {field.nx(), field.ny(), field.nz()}));
  const std::uint64_t meta[2] = {k, scores.rows()};
  container.add("meta", u64s_to_bytes(meta));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->reduced_bytes = container.find("scores")->bytes.size() +
                           container.find("basis")->bytes.size() +
                           container.find("means")->bytes.size();
    stats->delta_bytes = container.find("delta")->bytes.size();
  }
  return container;
}

sim::Field PcaPreconditioner::decode(const io::Container& container,
                                     const CodecPair& codecs,
                                     const sim::Field*) const {
  const obs::ScopedSpan span("pca");
  const auto& scores_section = require_section(container, "scores", "pca");
  const auto& basis_section = require_section(container, "basis", "pca");
  const auto& means_section = require_section(container, "means", "pca");
  const auto& delta_section = require_section(container, "delta", "pca");
  const auto& meta_section = require_section(container, "meta", "pca");
  const auto meta = bytes_to_u64s(meta_section.bytes);
  const std::size_t k = meta.at(0);
  const std::size_t m = meta.at(1);

  const la::Matrix basis = bytes_to_matrix(basis_section.bytes);
  const auto means = bytes_to_doubles(means_section.bytes);
  la::Matrix scores(m, k, codecs.reduced->decompress(scores_section.bytes));

  la::Matrix reconstruction = scores * basis.transposed();
  la::uncenter_columns(reconstruction, means);

  const auto delta_values = codecs.delta->decompress(delta_section.bytes);
  sim::Field out = sim::Field::from_data(container.nx, container.ny,
                                         container.nz, delta_values);
  return add(out, matrix_to_field(reconstruction, container.nx, container.ny,
                                  container.nz));
}

}  // namespace rmp::core
