#include "core/temporal.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace rmp::core {
namespace {

compress::Dims dims_of(const sim::Field& f) {
  return {f.nx(), f.ny(), f.nz()};
}

io::Container encode_keyframe(const sim::Field& field,
                              const CodecPair& codecs) {
  io::Container container;
  container.method = "temporal-key";
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
  container.add("data", codecs.reduced->compress(field.flat(), dims_of(field)));
  return container;
}

io::Container encode_delta(const sim::Field& field,
                           const sim::Field& reference,
                           const CodecPair& codecs) {
  io::Container container;
  container.method = "temporal-delta";
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
  const sim::Field delta = subtract(field, reference);
  container.add("delta",
                codecs.delta->compress(delta.flat(), dims_of(field)));
  return container;
}

}  // namespace

std::size_t TemporalSequence::total_bytes() const {
  std::size_t total = 0;
  for (const auto& step : steps) total += step.payload_bytes();
  return total;
}

TemporalSequence temporal_encode(const std::vector<sim::Field>& snapshots,
                                 const CodecPair& codecs,
                                 const TemporalOptions& options) {
  const obs::ScopedSpan span("temporal/encode");
  TemporalSequence sequence;
  if (snapshots.empty()) return sequence;
  for (const auto& snapshot : snapshots) {
    if (snapshot.nx() != snapshots.front().nx() ||
        snapshot.ny() != snapshots.front().ny() ||
        snapshot.nz() != snapshots.front().nz()) {
      throw std::invalid_argument("temporal_encode: snapshot shapes differ");
    }
  }

  sequence.steps.reserve(snapshots.size());
  // The running reference is the *decoded* predecessor so decode-side
  // drift never accumulates.
  sim::Field reference;
  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    const bool keyframe =
        s == 0 || (options.keyframe_interval > 0 &&
                   s % options.keyframe_interval == 0);
    if (keyframe) {
      auto container = encode_keyframe(snapshots[s], codecs);
      reference = sim::Field::from_data(
          snapshots[s].nx(), snapshots[s].ny(), snapshots[s].nz(),
          codecs.reduced->decompress(container.find("data")->bytes));
      sequence.steps.push_back(std::move(container));
    } else {
      auto container = encode_delta(snapshots[s], reference, codecs);
      const auto delta_values =
          codecs.delta->decompress(container.find("delta")->bytes);
      sim::Field decoded_delta = sim::Field::from_data(
          snapshots[s].nx(), snapshots[s].ny(), snapshots[s].nz(),
          delta_values);
      reference = add(reference, decoded_delta);
      sequence.steps.push_back(std::move(container));
    }
  }
  return sequence;
}

std::vector<sim::Field> temporal_decode(const TemporalSequence& sequence,
                                        const CodecPair& codecs) {
  const obs::ScopedSpan span("temporal/decode");
  std::vector<sim::Field> snapshots;
  snapshots.reserve(sequence.steps.size());
  sim::Field reference;
  for (const auto& step : sequence.steps) {
    if (step.method == "temporal-key") {
      const auto& section = require_section(step, "data", "temporal_decode");
      reference = sim::Field::from_data(
          step.nx, step.ny, step.nz,
          codecs.reduced->decompress(section.bytes));
    } else if (step.method == "temporal-delta") {
      const auto& section = require_section(step, "delta", "temporal_decode");
      sim::Field delta = sim::Field::from_data(
          step.nx, step.ny, step.nz,
          codecs.delta->decompress(section.bytes));
      reference = add(reference, delta);
    } else {
      throw std::runtime_error("temporal_decode: unexpected method " +
                               step.method);
    }
    snapshots.push_back(reference);
  }
  return snapshots;
}

}  // namespace rmp::core
