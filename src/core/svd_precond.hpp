// SVD preconditioner (paper §V-A.2).
//
// Thin SVD of the canonical m x n matrix; the k triplets whose singular
// values cover >= `energy_target` of the total (paper: 95%, measured on
// the singular values directly, §V-B) are kept.  The m x k product
// U_k diag(sigma_k) is the dimension-reduced data (compressed at original
// grade); V_k and sigma_k are stored exactly.  Unlike PCA, SVD captures
// both row and column correlation (Table III).
#pragma once

#include <vector>

#include "core/preconditioner.hpp"
#include "la/svd.hpp"

namespace rmp::core {

struct SvdOptionsPre {
  double energy_target = 0.95;
  bool delta_against_decoded = false;  ///< see PcaOptions
  /// Sweep budget for the one-sided Jacobi SVD; a non-converged solve
  /// raises PreconditionError(kSvdNonConvergence) instead of storing
  /// unreliable triplets.
  la::SvdOptions svd = {};
};

class SvdPreconditioner final : public Preconditioner {
 public:
  explicit SvdPreconditioner(SvdOptionsPre options = {});

  std::string name() const override { return "svd"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;

  const SvdOptionsPre& options() const noexcept { return options_; }

 private:
  SvdOptionsPre options_;
};

/// Proportion of the singular-value sum carried by each singular value of
/// the field's canonical matrix, descending (Fig. 8).
std::vector<double> svd_singular_proportions(const sim::Field& field);

}  // namespace rmp::core
