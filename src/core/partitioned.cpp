#include "core/partitioned.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/pca.hpp"
#include "core/reshape.hpp"
#include "core/serialize.hpp"
#include "la/covariance.hpp"
#include "la/eigen.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::core {
namespace {

struct RowBlock {
  std::size_t begin, end;
};

std::vector<RowBlock> make_blocks(std::size_t rows, std::size_t count) {
  std::vector<RowBlock> blocks;
  blocks.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    blocks.push_back({b * rows / count, (b + 1) * rows / count});
  }
  return blocks;
}

la::Matrix rows_of(const la::Matrix& m, const RowBlock& block) {
  la::Matrix out(block.end - block.begin, m.cols());
  for (std::size_t i = block.begin; i < block.end; ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      out(i - block.begin, j) = m(i, j);
    }
  }
  return out;
}

}  // namespace

PartitionedPcaPreconditioner::PartitionedPcaPreconditioner(
    PartitionedPcaOptions options)
    : options_(options) {
  if (options_.partitions == 0) {
    throw std::invalid_argument("pca-part: partitions must be positive");
  }
  if (options_.variance_target <= 0.0 || options_.variance_target > 1.0) {
    throw std::invalid_argument("pca-part: variance_target must be in (0, 1]");
  }
}

io::Container PartitionedPcaPreconditioner::encode(const sim::Field& field,
                                                   const CodecPair& codecs,
                                                   EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/pca-part");
  const la::Matrix a = as_matrix(field);
  const std::size_t count = std::min(options_.partitions, a.rows());
  const auto blocks = make_blocks(a.rows(), count);

  la::Matrix reconstruction(a.rows(), a.cols());
  std::vector<std::uint64_t> meta(1 + 2 * count);
  meta[0] = count;

  io::Container container;
  container.method = name();
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();

  // Each block runs its whole PCA (covariance, Jacobi sweep, projection)
  // independently and writes a disjoint row range of `reconstruction`;
  // the serialized sections are collected per block and appended in block
  // order afterwards so the container is identical at every thread count.
  struct BlockSections {
    std::vector<std::uint8_t> scores, basis, means;
  };
  std::vector<BlockSections> sections(count);
  parallel::parallel_for(count, [&](std::size_t b) {
    la::Matrix block = rows_of(a, blocks[b]);
    const auto means = la::column_means(block);
    la::Matrix centered = block;
    la::center_columns(centered, means);

    const auto eig = la::jacobi_eigen(la::covariance(block));
    double total = 0.0;
    for (double v : eig.values) total += std::max(v, 0.0);
    std::vector<double> proportions;
    proportions.reserve(eig.values.size());
    for (double v : eig.values) {
      proportions.push_back(total > 0.0 ? std::max(v, 0.0) / total : 0.0);
    }
    std::size_t k =
        std::max<std::size_t>(1, components_for_target(
                                     proportions, options_.variance_target));

    la::Matrix basis(eig.vectors.rows(), k);
    for (std::size_t i = 0; i < basis.rows(); ++i) {
      for (std::size_t j = 0; j < k; ++j) basis(i, j) = eig.vectors(i, j);
    }
    const la::Matrix scores = centered * basis;

    la::Matrix block_recon = scores * basis.transposed();
    la::uncenter_columns(block_recon, means);
    for (std::size_t i = blocks[b].begin; i < blocks[b].end; ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        reconstruction(i, j) = block_recon(i - blocks[b].begin, j);
      }
    }

    sections[b].scores = codecs.reduced->compress(
        scores.flat(), compress::Dims::d2(scores.rows(), scores.cols()));
    sections[b].basis = matrix_to_bytes(basis);
    sections[b].means = doubles_to_bytes(means);
    meta[1 + 2 * b] = k;
    meta[2 + 2 * b] = scores.rows();
  });

  std::size_t reduced_bytes = 0;
  for (std::size_t b = 0; b < count; ++b) {
    const std::string suffix = std::to_string(b);
    reduced_bytes += sections[b].scores.size() + sections[b].basis.size() +
                     sections[b].means.size();
    container.add("scores" + suffix, std::move(sections[b].scores));
    container.add("basis" + suffix, std::move(sections[b].basis));
    container.add("means" + suffix, std::move(sections[b].means));
  }

  const sim::Field delta = subtract(
      field,
      matrix_to_field(reconstruction, field.nx(), field.ny(), field.nz()));
  container.add("delta",
                traced_compress(*codecs.delta, "delta-compress", delta.flat(),
                                {field.nx(), field.ny(), field.nz()}));
  container.add("meta", u64s_to_bytes(meta));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->reduced_bytes = reduced_bytes;
    stats->delta_bytes = container.find("delta")->bytes.size();
  }
  return container;
}

sim::Field PartitionedPcaPreconditioner::decode(
    const io::Container& container, const CodecPair& codecs,
    const sim::Field*) const {
  const obs::ScopedSpan span("pca-part");
  const auto& meta_section = require_section(container, "meta", "pca-part");
  const auto& delta_section = require_section(container, "delta", "pca-part");
  const auto meta = bytes_to_u64s(meta_section.bytes);
  const std::size_t count = meta.at(0);

  // Total rows = sum of block rows recorded in the meta stream.
  std::size_t total_rows = 0;
  for (std::size_t b = 0; b < count; ++b) total_rows += meta.at(2 + 2 * b);
  const std::size_t cols =
      container.nx * container.ny * container.nz / total_rows;

  // First row of each block: prefix sums of the per-block row counts, so
  // the per-block decodes can scatter into disjoint ranges concurrently.
  std::vector<std::size_t> row_offset(count, 0);
  for (std::size_t b = 1; b < count; ++b) {
    row_offset[b] = row_offset[b - 1] + meta.at(2 + 2 * (b - 1));
  }

  la::Matrix reconstruction(total_rows, cols);
  parallel::parallel_for(count, [&](std::size_t b) {
    const std::size_t k = meta.at(1 + 2 * b);
    const std::size_t rows = meta.at(2 + 2 * b);
    const std::string suffix = std::to_string(b);
    const auto& scores_section =
        require_section(container, "scores" + suffix, "pca-part");
    const auto& basis_section =
        require_section(container, "basis" + suffix, "pca-part");
    const auto& means_section =
        require_section(container, "means" + suffix, "pca-part");
    la::Matrix scores(rows, k,
                      codecs.reduced->decompress(scores_section.bytes));
    const la::Matrix basis = bytes_to_matrix(basis_section.bytes);
    const auto means = bytes_to_doubles(means_section.bytes);

    la::Matrix block_recon = scores * basis.transposed();
    la::uncenter_columns(block_recon, means);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        reconstruction(row_offset[b] + i, j) = block_recon(i, j);
      }
    }
  });

  const auto delta_values = codecs.delta->decompress(delta_section.bytes);
  sim::Field out = sim::Field::from_data(container.nx, container.ny,
                                         container.nz, delta_values);
  return add(out, matrix_to_field(reconstruction, container.nx, container.ny,
                                  container.nz));
}

}  // namespace rmp::core
