// Haar-wavelet preconditioner (paper §V-A.3).
//
// The canonical matrix is fully transformed (standard decomposition,
// rows then columns); coefficients with |c| <= theta = threshold_fraction
// * max|c| are zeroed (paper: 5%); the surviving sparse matrix -- stored
// CSR and lossless-compressed -- is the reduced representation, and the
// delta against its inverse transform is compressed at delta grade.
#pragma once

#include "core/preconditioner.hpp"

namespace rmp::core {

struct WaveletOptions {
  double threshold_fraction = 0.05;
  /// Use the separable 3D transform on 3D fields instead of the paper's
  /// 2D matrix view -- an extension that decorrelates along Z as well
  /// (ablation: bench/ablation_wavelet).
  bool transform_3d = false;
};

class WaveletPreconditioner final : public Preconditioner {
 public:
  explicit WaveletPreconditioner(WaveletOptions options = {});

  std::string name() const override { return "wavelet"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;

  const WaveletOptions& options() const noexcept { return options_; }

 private:
  WaveletOptions options_;
};

}  // namespace rmp::core
