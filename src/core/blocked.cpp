#include "core/blocked.hpp"

#include <stdexcept>

#include "core/reshape.hpp"
#include "core/serialize.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::core {
namespace {

struct RowBlock {
  std::size_t begin, end;
};

std::vector<RowBlock> make_blocks(std::size_t rows, std::size_t count) {
  std::vector<RowBlock> blocks;
  blocks.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    blocks.push_back({b * rows / count, (b + 1) * rows / count});
  }
  return blocks;
}

}  // namespace

BlockedPreconditioner::BlockedPreconditioner(const std::string& inner,
                                             std::size_t partitions)
    : inner_name_(inner),
      partitions_(partitions),
      inner_(make_preconditioner(inner)) {
  if (partitions_ == 0) {
    throw std::invalid_argument("blocked: partitions must be positive");
  }
  if (inner.rfind("blocked-", 0) == 0 ||
      inner.find('>') != std::string::npos) {
    throw std::invalid_argument("blocked: inner stage cannot nest");
  }
}

io::Container BlockedPreconditioner::encode(const sim::Field& field,
                                            const CodecPair& codecs,
                                            EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/blocked");
  const auto [rows, cols] = matrix_shape(field);
  const std::size_t count = std::min(partitions_, rows);
  const auto blocks = make_blocks(rows, count);
  const auto flat = field.flat();

  io::Container container;
  container.method = name();
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();

  // Blocks are independent: encode them on the shared pool, then append
  // the serialized results in block order so the container layout (and
  // its bytes) is the same at every thread count.
  std::vector<std::vector<std::uint8_t>> encoded(count);
  std::vector<EncodeStats> block_stats(count);
  parallel::parallel_for(count, [&](std::size_t b) {
    // Row block as a 2D field: contiguous in the canonical layout.
    const std::size_t block_rows = blocks[b].end - blocks[b].begin;
    sim::Field block = sim::Field::from_data(
        block_rows, cols, 1,
        std::vector<double>(flat.begin() + blocks[b].begin * cols,
                            flat.begin() + blocks[b].end * cols));
    encoded[b] = io::serialize(inner_->encode(block, codecs, &block_stats[b]));
  });

  std::size_t reduced_bytes = 0, delta_bytes = 0;
  for (std::size_t b = 0; b < count; ++b) {
    reduced_bytes += block_stats[b].reduced_bytes;
    delta_bytes += block_stats[b].delta_bytes;
    container.add("block" + std::to_string(b), std::move(encoded[b]));
  }
  const std::uint64_t meta[3] = {count, rows, cols};
  container.add("meta", u64s_to_bytes(meta));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->reduced_bytes = reduced_bytes;
    stats->delta_bytes = delta_bytes;
  }
  return container;
}

sim::Field BlockedPreconditioner::decode(const io::Container& container,
                                         const CodecPair& codecs,
                                         const sim::Field*) const {
  const obs::ScopedSpan span("blocked");
  const auto& meta_section = require_section(container, "meta", "blocked");
  const auto meta = bytes_to_u64s(meta_section.bytes);
  const std::size_t count = meta.at(0);
  const std::size_t rows = meta.at(1);
  const std::size_t cols = meta.at(2);
  const auto blocks = make_blocks(rows, count);

  // Block row ranges are disjoint, so each task scatters into its own
  // region of `values`; decode errors propagate out of parallel_for.
  std::vector<double> values(rows * cols);
  parallel::parallel_for(count, [&](std::size_t b) {
    const std::string block_name = "block" + std::to_string(b);
    const auto& section = require_section(container, block_name, "blocked");
    const sim::Field block =
        inner_->decode(io::deserialize(section.bytes), codecs, nullptr);
    const std::size_t expected = (blocks[b].end - blocks[b].begin) * cols;
    if (block.size() != expected) {
      throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                               "blocked decode: block size mismatch",
                               block_name);
    }
    std::copy(block.flat().begin(), block.flat().end(),
              values.begin() + blocks[b].begin * cols);
  });
  return sim::Field::from_data(container.nx, container.ny, container.nz,
                               std::move(values));
}

}  // namespace rmp::core
