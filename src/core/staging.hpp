// Asynchronous staging node (Table IV's winning configuration, §V-B.4):
// the application hands its field to the staging service and returns to
// computing immediately; a background worker preconditions, compresses
// and "writes" (via the storage model or a real directory) off the
// critical path.  This is the working-code counterpart of
// make_staging_row()'s arithmetic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/preconditioner.hpp"
#include "sim/field.hpp"

namespace rmp::core {

struct StagingOptions {
  /// Preconditioner applied on the staging node ("pca" in the paper row).
  std::string method = "pca";
  /// Directory for the output containers; unset = keep in memory only.
  std::optional<std::filesystem::path> output_dir;
  /// Backpressure: enqueue blocks once this many fields are waiting.
  std::size_t max_queue = 8;
};

struct StagingStats {
  std::size_t fields_submitted = 0;
  std::size_t fields_completed = 0;
  /// Fields whose encode or durable write failed.  The worker records the
  /// failure and keeps serving the queue: one full disk must not take the
  /// whole staging service (and the submitting simulation) down with it.
  std::size_t fields_failed = 0;
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  double total_compress_seconds = 0.0;
  /// Wall time the *submitter* spent blocked in submit() -- the only cost
  /// on the application's critical path.
  double submit_block_seconds = 0.0;
  /// what() of the most recent failure; empty when fields_failed == 0.
  std::string last_error;
};

class StagingNode {
 public:
  /// Codecs must outlive the node.
  StagingNode(const core::CodecPair& codecs, StagingOptions options = {});
  ~StagingNode();

  StagingNode(const StagingNode&) = delete;
  StagingNode& operator=(const StagingNode&) = delete;

  /// Hand a field to the staging service.  Returns the sequence id.
  /// Blocks only when the queue is full (backpressure).
  std::size_t submit(sim::Field field);

  /// Wait until every submitted field has been processed.
  void drain();

  /// Snapshot of the statistics (valid any time; exact after drain()).
  StagingStats stats() const;

  /// In-memory results (when no output_dir was configured), in completion
  /// order.  Call after drain().
  const std::vector<io::Container>& results() const { return results_; }

 private:
  void worker_loop();

  const core::CodecPair codecs_;
  StagingOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable space_ready_;
  std::condition_variable drained_;
  std::deque<std::pair<std::size_t, sim::Field>> queue_;
  bool stopping_ = false;
  std::size_t in_flight_ = 0;

  StagingStats stats_;
  std::vector<io::Container> results_;
  std::thread worker_;
};

}  // namespace rmp::core
