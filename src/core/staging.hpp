// Asynchronous staging node (Table IV's winning configuration, §V-B.4):
// the application hands its field to the staging service and returns to
// computing immediately; a background worker preconditions, compresses
// and "writes" (via the storage model or a real directory) off the
// critical path.  This is the working-code counterpart of
// make_staging_row()'s arithmetic.
//
// The node is also rmpd's in-process write-behind worker: jobs may carry
// an already-encoded container (the daemon encodes on the compute pool,
// then stages only the durable write), a target name, a per-job
// io::RetryPolicy (threading the request deadline into disk backoff
// loops) and a completion callback invoked once the write is durable --
// which is what lets the daemon answer a store request only after the
// bytes actually survive a crash.  try_submit() is the non-blocking
// admission flavour: a full queue yields rejection (the caller sheds
// load with a typed BUSY) instead of blocking the session thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/preconditioner.hpp"
#include "io/container.hpp"
#include "sim/field.hpp"

namespace rmp::core {

struct StagingOptions {
  /// Preconditioner applied on the staging node ("pca" in the paper row).
  std::string method = "pca";
  /// Directory for the output containers; unset = keep in memory only.
  std::optional<std::filesystem::path> output_dir;
  /// Backpressure: enqueue blocks once this many fields are waiting.
  std::size_t max_queue = 8;
  /// Serialization (parity, default retry policy) for durable writes.
  io::SerializeOptions serialize;
};

/// Coarse classification of a failed job, so callers (the daemon's
/// response path) can map failures onto their own taxonomy without
/// string-matching the error text.
enum class StagingErrorKind : std::uint8_t {
  kNone = 0,
  kIoError,           ///< durable write failed (disk full, EIO, ...)
  kDeadlineExceeded,  ///< the job's retry deadline ran out mid-write
  kPrecondition,      ///< model failure (eigen/SVD non-convergence, ...)
  kOther,
};

/// Completion record handed to a job's on_complete callback (and, for
/// failures, summarized in StagingStats).
struct StagingJobResult {
  std::size_t id = 0;
  bool ok = false;
  StagingErrorKind error_kind = StagingErrorKind::kNone;
  std::string error;  ///< what() of the failure; empty when ok
  std::string method;  ///< preconditioner that ran (field jobs)
  std::size_t bytes_out = 0;
  std::filesystem::path path;  ///< where the container landed, if written
  double seconds = 0.0;        ///< encode + write wall time
};

/// One unit of staging work.  Exactly one of `field` (encode + write) or
/// `container` (write only) must be set.
struct StagingJob {
  std::optional<sim::Field> field;
  std::optional<io::Container> container;
  /// Output file name (sanitized by the caller); empty = "field_<id>.rmp".
  std::string name;
  /// Preconditioner override for field jobs; empty = StagingOptions.method.
  std::string method;
  /// Per-job retry/deadline policy for the durable write; overrides the
  /// node-level StagingOptions.serialize.retry.
  std::optional<io::RetryPolicy> retry;
  /// Invoked from the worker thread after the job completes (durably, for
  /// written jobs) or fails.  Must not throw.  May be empty.
  std::function<void(const StagingJobResult&)> on_complete;
};

struct StagingStats {
  std::size_t fields_submitted = 0;
  std::size_t fields_completed = 0;
  /// Fields whose encode or durable write failed.  The worker records the
  /// failure and keeps serving the queue: one full disk must not take the
  /// whole staging service (and the submitting simulation) down with it.
  std::size_t fields_failed = 0;
  /// try_submit() calls refused because the queue was at capacity.
  std::size_t fields_rejected = 0;
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  double total_compress_seconds = 0.0;
  /// Wall time the *submitter* spent blocked in submit() -- the only cost
  /// on the application's critical path.
  double submit_block_seconds = 0.0;
  /// what() of the most recent failure; empty when fields_failed == 0.
  std::string last_error;
};

class StagingNode {
 public:
  /// Codecs must outlive the node.
  StagingNode(const core::CodecPair& codecs, StagingOptions options = {});
  ~StagingNode();

  StagingNode(const StagingNode&) = delete;
  StagingNode& operator=(const StagingNode&) = delete;

  /// Hand a field to the staging service.  Returns the sequence id.
  /// Blocks only when the queue is full (backpressure).
  std::size_t submit(sim::Field field);

  /// General form: blocks when the queue is full.
  std::size_t submit(StagingJob job);

  /// Non-blocking admission: nullopt when the queue is at capacity (the
  /// rejection is counted under fields_rejected / staging.rejected).
  /// Throws only after shutdown.
  std::optional<std::size_t> try_submit(StagingJob job);

  /// Wait until every submitted field has been processed.
  void drain();

  /// Snapshot of the statistics (valid any time; exact after drain()).
  StagingStats stats() const;

  /// In-memory results (when no output_dir was configured), in completion
  /// order.  Call after drain().
  const std::vector<io::Container>& results() const { return results_; }

 private:
  void worker_loop();
  std::size_t enqueue_locked(std::unique_lock<std::mutex>& lock,
                             StagingJob&& job);

  const core::CodecPair codecs_;
  StagingOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable space_ready_;
  std::condition_variable drained_;
  std::deque<std::pair<std::size_t, StagingJob>> queue_;
  bool stopping_ = false;
  std::size_t in_flight_ = 0;

  StagingStats stats_;
  std::vector<io::Container> results_;
  std::thread worker_;
};

}  // namespace rmp::core
