// PCA preconditioner (paper §V-A.1).
//
// The field, viewed as an m x n matrix, is centered; the eigenvectors of
// the n x n column covariance give the principal directions.  The k
// leading components covering >= `variance_target` of the variance (paper:
// 95%) are kept: the dimension-reduced scores (m x k, compressed at
// original grade) plus the basis and column means (stored exactly) form
// the reduced representation; the delta against the rank-k reconstruction
// is compressed at delta grade.
#pragma once

#include <vector>

#include "core/preconditioner.hpp"
#include "la/eigen.hpp"

namespace rmp::core {

struct PcaOptions {
  double variance_target = 0.95;
  /// When true, the delta is computed against the reconstruction from the
  /// *decompressed* scores, so the reduced-representation loss cancels at
  /// decode time.  The paper computes the delta against the clean
  /// reconstruction (false), which is what amplifies RMSE in Fig. 10; the
  /// ablation bench flips this.
  bool delta_against_decoded = false;
  /// Eigensolver budget for the covariance diagonalization.  Exposed so
  /// tests (and cautious callers) can tighten it; a non-converged solve
  /// raises PreconditionError(kEigenNonConvergence) instead of encoding
  /// with a half-rotated basis.
  la::JacobiOptions jacobi = {};
};

class PcaPreconditioner final : public Preconditioner {
 public:
  explicit PcaPreconditioner(PcaOptions options = {});

  std::string name() const override { return "pca"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;

  const PcaOptions& options() const noexcept { return options_; }

 private:
  PcaOptions options_;
};

/// Proportion of total variance captured by each principal component of
/// the field's canonical matrix, descending (Fig. 7).
std::vector<double> pca_variance_proportions(const sim::Field& field);

/// Components needed to reach `target` cumulative proportion.
std::size_t components_for_target(const std::vector<double>& proportions,
                                  double target);

}  // namespace rmp::core
