// Cascade preconditioning: run a second preconditioner on the *delta* of
// the first.  The paper's closing observation -- no single reduced model
// fits all data -- invites composition: e.g. one-base strips the
// dominant Z structure and PCA then strips the remaining (x, y)
// correlation from the residual.  The second stage's container is nested
// verbatim inside the first stage's "delta slot".
#pragma once

#include <memory>

#include "core/preconditioner.hpp"

namespace rmp::core {

class CascadePreconditioner final : public Preconditioner {
 public:
  /// Both stages are resolved by name via make_preconditioner so the
  /// cascade itself can be reconstructed from the container ("a>b").
  CascadePreconditioner(const std::string& first, const std::string& second);

  std::string name() const override { return first_name_ + ">" + second_name_; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;

 private:
  std::string first_name_;
  std::string second_name_;
  std::unique_ptr<Preconditioner> first_;
  std::unique_ptr<Preconditioner> second_;
};

/// Parse "first>second" into a cascade (used by make_preconditioner-style
/// dispatch in decode paths and the CLI).
std::unique_ptr<Preconditioner> make_cascade(const std::string& spec);

}  // namespace rmp::core
