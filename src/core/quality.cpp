#include "core/quality.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "stats/metrics.hpp"

namespace rmp::core {

QualityReport compare_fields(const sim::Field& original,
                             const sim::Field& reconstructed) {
  QualityReport report;
  report.nonfinite_original =
      stats::nonfinite_census(original.flat()).nonfinite();
  report.nonfinite_reconstructed =
      stats::nonfinite_census(reconstructed.flat()).nonfinite();
  report.original_bytes = original.size() * sizeof(double);

  if (report.nonfinite_original == 0 && report.nonfinite_reconstructed == 0) {
    report.rmse = stats::rmse(original.flat(), reconstructed.flat());
    report.nrmse = stats::nrmse(original.flat(), reconstructed.flat());
    report.max_error =
        stats::max_abs_error(original.flat(), reconstructed.flat());
    report.psnr_db = stats::psnr(original.flat(), reconstructed.flat());
    report.gradient_rmse =
        stats::gradient_rmse(original.flat(), reconstructed.flat());
    report.decile_distance =
        stats::decile_distance(original.flat(), reconstructed.flat());
    return report;
  }

  // Nonfinite-aware path: pointwise errors honor the "finite original
  // cell broken into NaN/Inf = infinite error" convention; the shape and
  // range metrics are computed over the pairs where both sides are finite
  // (empty set -> zeros).
  report.rmse = stats::finite_rmse(original.flat(), reconstructed.flat());
  report.max_error =
      stats::finite_max_abs_error(original.flat(), reconstructed.flat());

  std::vector<double> fa, fb;
  fa.reserve(original.size());
  fb.reserve(original.size());
  for (std::size_t n = 0; n < original.size(); ++n) {
    const double a = original.flat()[n];
    const double b = reconstructed.flat()[n];
    if (std::isfinite(a) && std::isfinite(b)) {
      fa.push_back(a);
      fb.push_back(b);
    }
  }
  if (!fa.empty()) {
    report.nrmse = stats::nrmse(fa, fb);
    report.psnr_db = stats::psnr(fa, fb);
    report.gradient_rmse = stats::gradient_rmse(fa, fb);
    report.decile_distance = stats::decile_distance(fa, fb);
  }
  return report;
}

QualityReport assess_quality(const Preconditioner& preconditioner,
                             const sim::Field& field, const CodecPair& codecs,
                             const sim::Field* external_reduced) {
  EncodeStats stats;
  const io::Container container =
      preconditioner.encode(field, codecs, &stats);
  const sim::Field decoded =
      preconditioner.decode(container, codecs, external_reduced);

  QualityReport report = compare_fields(field, decoded);
  report.method = preconditioner.name();
  report.compression_ratio = stats.compression_ratio;
  report.stored_bytes = stats.total_bytes;
  return report;
}

std::string format_report(const QualityReport& report) {
  char buffer[512];
  std::snprintf(buffer, sizeof buffer,
                "method:            %s\n"
                "compression ratio: %.2fx (%zu -> %zu bytes)\n"
                "rmse:              %.6e  (nrmse %.3e)\n"
                "max error:         %.6e\n",
                report.method.c_str(), report.compression_ratio,
                report.original_bytes, report.stored_bytes, report.rmse,
                report.nrmse, report.max_error);
  std::string text = buffer;

  // A non-finite PSNR is printed for what it is: "inf" means a bit-exact
  // reconstruction, "undefined" a degenerate comparison.  Masking either
  // as a large decibel number would read as "excellent" -- a lie.
  if (std::isnan(report.psnr_db)) {
    text += "psnr:              undefined\n";
  } else if (std::isinf(report.psnr_db)) {
    text += report.psnr_db > 0.0 ? "psnr:              inf (exact)\n"
                                 : "psnr:              -inf\n";
  } else {
    std::snprintf(buffer, sizeof buffer, "psnr:              %.1f dB\n",
                  report.psnr_db);
    text += buffer;
  }

  std::snprintf(buffer, sizeof buffer,
                "gradient rmse:     %.6e\n"
                "decile distance:   %.6e\n",
                report.gradient_rmse, report.decile_distance);
  text += buffer;

  if (report.nonfinite_original > 0 || report.nonfinite_reconstructed > 0) {
    std::snprintf(buffer, sizeof buffer,
                  "nonfinite samples: %zu original, %zu reconstructed\n",
                  report.nonfinite_original, report.nonfinite_reconstructed);
    text += buffer;
  }
  return text;
}

}  // namespace rmp::core
