#include "core/quality.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "stats/metrics.hpp"

namespace rmp::core {

QualityReport compare_fields(const sim::Field& original,
                             const sim::Field& reconstructed) {
  QualityReport report;
  report.rmse = stats::rmse(original.flat(), reconstructed.flat());
  report.nrmse = stats::nrmse(original.flat(), reconstructed.flat());
  report.max_error =
      stats::max_abs_error(original.flat(), reconstructed.flat());
  report.psnr_db = stats::psnr(original.flat(), reconstructed.flat());
  report.gradient_rmse =
      stats::gradient_rmse(original.flat(), reconstructed.flat());
  report.decile_distance =
      stats::decile_distance(original.flat(), reconstructed.flat());
  report.original_bytes = original.size() * sizeof(double);
  return report;
}

QualityReport assess_quality(const Preconditioner& preconditioner,
                             const sim::Field& field, const CodecPair& codecs,
                             const sim::Field* external_reduced) {
  EncodeStats stats;
  const io::Container container =
      preconditioner.encode(field, codecs, &stats);
  const sim::Field decoded =
      preconditioner.decode(container, codecs, external_reduced);

  QualityReport report = compare_fields(field, decoded);
  report.method = preconditioner.name();
  report.compression_ratio = stats.compression_ratio;
  report.stored_bytes = stats.total_bytes;
  return report;
}

std::string format_report(const QualityReport& report) {
  char buffer[512];
  const double psnr_shown =
      std::isfinite(report.psnr_db) ? report.psnr_db : 999.0;
  std::snprintf(buffer, sizeof buffer,
                "method:            %s\n"
                "compression ratio: %.2fx (%zu -> %zu bytes)\n"
                "rmse:              %.6e  (nrmse %.3e)\n"
                "max error:         %.6e\n"
                "psnr:              %.1f dB\n"
                "gradient rmse:     %.6e\n"
                "decile distance:   %.6e\n",
                report.method.c_str(), report.compression_ratio,
                report.original_bytes, report.stored_bytes, report.rmse,
                report.nrmse, report.max_error, psnr_shown,
                report.gradient_rmse, report.decile_distance);
  return buffer;
}

}  // namespace rmp::core
