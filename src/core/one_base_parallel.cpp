#include "core/one_base_parallel.hpp"

#include <mutex>
#include <stdexcept>

#include "obs/obs.hpp"
#include "parallel/decomposition.hpp"

namespace rmp::core {
namespace {

constexpr int kPlaneTag = 41;  // Algorithm 1 line 2: broadcast of u(m_z/2)

// Slab of the global field owned by one rank: planes [begin, end).
std::vector<double> slab_planes(const sim::Field& field, std::size_t begin,
                                std::size_t end) {
  std::vector<double> out;
  out.reserve(field.nx() * field.ny() * (end - begin));
  for (std::size_t i = 0; i < field.nx(); ++i) {
    for (std::size_t j = 0; j < field.ny(); ++j) {
      for (std::size_t k = begin; k < end; ++k) {
        out.push_back(field.at(i, j, k));
      }
    }
  }
  return out;
}

}  // namespace

std::size_t DistributedOneBaseResult::total_bytes() const {
  std::size_t total = plane_bytes.size();
  for (const auto& container : rank_containers) {
    total += container.payload_bytes();
  }
  return total;
}

DistributedOneBaseResult one_base_encode_parallel(const sim::Field& field,
                                                  const CodecPair& codecs,
                                                  int ranks) {
  const obs::ScopedSpan span("precondition/one-base-parallel");
  if (field.rank() != 3) {
    throw std::invalid_argument("one_base_encode_parallel: field must be 3D");
  }
  if (ranks <= 0 || static_cast<std::size_t>(ranks) > field.nz()) {
    throw std::invalid_argument("one_base_encode_parallel: bad rank count");
  }

  const std::size_t mid = field.nz() / 2;
  parallel::CartesianDecomposition decomp({field.nz(), 1, 1}, {ranks, 1, 1});

  DistributedOneBaseResult result;
  result.nx = field.nx();
  result.ny = field.ny();
  result.nz = field.nz();
  result.rank_containers.resize(ranks);
  std::mutex result_mutex;

  parallel::run_ranks(ranks, [&](parallel::Communicator& comm) {
    const auto box = decomp.local_box(comm.rank());
    const std::size_t z_low = box[0].begin;
    const std::size_t z_high = box[0].end;

    // --- Algorithm 1, lines 1-5: the owner of the mid-plane broadcasts it.
    const bool owns_mid = mid >= z_low && mid < z_high;
    std::vector<double> plane(field.nx() * field.ny());
    if (owns_mid) {
      for (std::size_t i = 0; i < field.nx(); ++i) {
        for (std::size_t j = 0; j < field.ny(); ++j) {
          plane[i * field.ny() + j] = field.at(i, j, mid);
        }
      }
      for (int r = 0; r < comm.size(); ++r) {
        if (r != comm.rank()) comm.send<double>(r, kPlaneTag, plane);
      }
      // Compress the reference plane once, on its owner.
      auto bytes = codecs.reduced->compress(
          plane, compress::Dims::d2(field.nx(), field.ny()));
      std::lock_guard lock(result_mutex);
      result.plane_bytes = std::move(bytes);
    } else {
      // Find the owner rank to receive from.
      int owner = -1;
      for (int r = 0; r < comm.size(); ++r) {
        const auto rbox = decomp.local_box(r);
        if (mid >= rbox[0].begin && mid < rbox[0].end) owner = r;
      }
      plane = comm.recv<double>(owner, kPlaneTag);
    }

    // --- Algorithm 1, lines 6-8: local delta against the broadcast plane.
    std::vector<double> delta = slab_planes(field, z_low, z_high);
    const std::size_t local_nz = z_high - z_low;
    std::size_t n = 0;
    for (std::size_t i = 0; i < field.nx(); ++i) {
      for (std::size_t j = 0; j < field.ny(); ++j) {
        const double base = plane[i * field.ny() + j];
        for (std::size_t k = 0; k < local_nz; ++k, ++n) {
          delta[n] -= base;
        }
      }
    }

    // --- Algorithm 1, line 9 ("gather the delta"), N-to-N style: each
    // rank compresses its slab independently and deposits the container.
    io::Container container;
    container.method = "one-base-slab";
    container.nx = field.nx();
    container.ny = field.ny();
    container.nz = local_nz;
    container.add("delta",
                  codecs.delta->compress(
                      delta, {field.nx(), field.ny(), local_nz}));
    {
      std::lock_guard lock(result_mutex);
      result.rank_containers[comm.rank()] = std::move(container);
    }
  });
  return result;
}

sim::Field one_base_decode_parallel(const DistributedOneBaseResult& encoded,
                                    const CodecPair& codecs, int ranks) {
  const obs::ScopedSpan span("one-base-parallel");
  if (encoded.rank_containers.size() != static_cast<std::size_t>(ranks)) {
    throw std::invalid_argument(
        "one_base_decode_parallel: rank count does not match containers");
  }
  parallel::CartesianDecomposition decomp({encoded.nz, 1, 1},
                                          {ranks, 1, 1});

  // The reference plane is decoded once, then shared read-only.
  const auto plane = codecs.reduced->decompress(encoded.plane_bytes);
  if (plane.size() != encoded.nx * encoded.ny) {
    throw std::runtime_error("one_base_decode_parallel: bad plane size");
  }

  sim::Field out(encoded.nx, encoded.ny, encoded.nz);
  std::mutex out_mutex;

  parallel::run_ranks(ranks, [&](parallel::Communicator& comm) {
    const auto box = decomp.local_box(comm.rank());
    const std::size_t z_low = box[0].begin;
    const std::size_t local_nz = box[0].count();

    const auto& container = encoded.rank_containers[comm.rank()];
    const auto& section =
        require_section(container, "delta", "one_base_decode_parallel");
    const auto delta = codecs.delta->decompress(section.bytes);
    if (delta.size() != encoded.nx * encoded.ny * local_nz) {
      throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                               "one_base_decode_parallel: bad delta size",
                               "delta");
    }

    // Ranks write disjoint slabs; the lock only guards the Field object's
    // shared metadata view for the sanitizer's sake.
    std::lock_guard lock(out_mutex);
    std::size_t n = 0;
    for (std::size_t i = 0; i < encoded.nx; ++i) {
      for (std::size_t j = 0; j < encoded.ny; ++j) {
        const double base = plane[i * encoded.ny + j];
        for (std::size_t k = 0; k < local_nz; ++k, ++n) {
          out.at(i, j, z_low + k) = base + delta[n];
        }
      }
    }
  });
  return out;
}

}  // namespace rmp::core
