// Typed error taxonomy for data-shaped preconditioner failures.
//
// A PreconditionError means "this model cannot faithfully represent this
// data" -- eigen/SVD sweeps that ran out before converging, rank selection
// collapsing to nothing, inputs too degenerate to factor.  It is the
// signal the guard layer (core/guard.hpp) listens for to demote a request
// down its fallback chain instead of surfacing an exception to the user;
// genuinely impossible inputs (empty fields) use kDegenerateInput, which
// the guard also absorbs but model selection re-throws.
#pragma once

#include <stdexcept>
#include <string>

namespace rmp::core {

enum class PrecondErrc {
  kEigenNonConvergence,  ///< Jacobi eigen sweep budget exhausted
  kSvdNonConvergence,    ///< one-sided Jacobi SVD sweep budget exhausted
  kRankFailure,          ///< rank/component selection produced nothing usable
  kDegenerateInput,      ///< input has no usable data (empty, zero-extent)
};

/// Human-readable slug for logs and provenance records.
inline const char* precond_errc_name(PrecondErrc code) {
  switch (code) {
    case PrecondErrc::kEigenNonConvergence:
      return "eigen-non-convergence";
    case PrecondErrc::kSvdNonConvergence:
      return "svd-non-convergence";
    case PrecondErrc::kRankFailure:
      return "rank-failure";
    case PrecondErrc::kDegenerateInput:
      return "degenerate-input";
  }
  return "unknown";
}

class PreconditionError : public std::runtime_error {
 public:
  PreconditionError(PrecondErrc code, const std::string& message)
      : std::runtime_error(std::string(precond_errc_name(code)) + ": " +
                           message),
        code_(code) {}

  PrecondErrc code() const noexcept { return code_; }

 private:
  PrecondErrc code_;
};

}  // namespace rmp::core
