#include "core/preconditioner.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

#include "core/blocked.hpp"
#include "core/cascade.hpp"
#include "core/identity.hpp"
#include "core/partitioned.hpp"
#include "core/pca.hpp"
#include "core/projection.hpp"
#include "core/svd_precond.hpp"
#include "core/tucker.hpp"
#include "core/wavelet_precond.hpp"

namespace rmp::core {

std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name) {
  // "first>second" composes two stages (core/cascade.hpp).
  if (name.find('>') != std::string::npos) return make_cascade(name);
  // "blocked-<inner>" partitions the canonical matrix (core/blocked.hpp).
  if (name.rfind("blocked-", 0) == 0) {
    return std::make_unique<BlockedPreconditioner>(name.substr(8));
  }
  if (name == "identity") return std::make_unique<IdentityPreconditioner>();
  if (name == "raw") return std::make_unique<RawPreconditioner>();
  if (name == "one-base") return std::make_unique<OneBasePreconditioner>();
  if (name == "multi-base") return std::make_unique<MultiBasePreconditioner>();
  if (name == "duomodel") return std::make_unique<DuoModelPreconditioner>();
  if (name == "pca") return std::make_unique<PcaPreconditioner>();
  if (name == "svd") return std::make_unique<SvdPreconditioner>();
  if (name == "wavelet") return std::make_unique<WaveletPreconditioner>();
  if (name == "pca-part") {
    return std::make_unique<PartitionedPcaPreconditioner>();
  }
  if (name == "tucker") return std::make_unique<TuckerPreconditioner>();
  throw std::invalid_argument("make_preconditioner: unknown name " + name);
}

const std::vector<std::string>& preconditioner_names() {
  static const std::vector<std::string> names = {
      "identity", "raw",     "one-base", "multi-base", "duomodel",
      "pca",      "svd",     "wavelet",  "pca-part",   "tucker"};
  return names;
}

const io::Section& require_section(const io::Container& container,
                                   const std::string& name,
                                   const char* decoder) {
  const io::Section* section = container.find(name);
  if (section == nullptr) {
    throw io::ContainerError(io::ContainerErrc::kMissingSection,
                             std::string(decoder) +
                                 " decode: required section absent",
                             name);
  }
  return *section;
}

std::vector<std::uint8_t> traced_compress(const compress::Compressor& codec,
                                          const char* stage,
                                          std::span<const double> data,
                                          const compress::Dims& dims) {
  const obs::ScopedSpan span(stage);
  auto bytes = codec.compress(data, dims);
  obs::count(std::string("encode.bytes.") + stage, bytes.size());
  return bytes;
}

std::vector<double> traced_decompress(const compress::Compressor& codec,
                                      const char* stage,
                                      std::span<const std::uint8_t> bytes) {
  const obs::ScopedSpan span(stage);
  obs::count(std::string("decode.bytes.") + stage, bytes.size());
  return codec.decompress(bytes);
}

void fill_stats(const io::Container& container, std::size_t element_count,
                EncodeStats* stats) {
  if (stats == nullptr) return;
  stats->total_bytes = container.payload_bytes();
  stats->original_bytes = element_count * sizeof(double);
  stats->compression_ratio =
      stats->total_bytes > 0
          ? static_cast<double>(stats->original_bytes) /
                static_cast<double>(stats->total_bytes)
          : 0.0;
}

}  // namespace rmp::core
