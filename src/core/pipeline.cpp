#include "core/pipeline.hpp"

#include <algorithm>

#include "core/guard.hpp"
#include "obs/obs.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

PipelineResult run_pipeline(const Preconditioner& preconditioner,
                            const sim::Field& field, const CodecPair& codecs,
                            const sim::Field* external_reduced) {
  PipelineResult result;
  result.method = preconditioner.name();

  {
    const obs::ScopedSpan span("pipeline/encode");
    result.container = preconditioner.encode(field, codecs, &result.stats);
    result.encode_seconds = span.elapsed_seconds();
  }
  obs::count("pipeline.encodes");
  obs::count("pipeline.bytes.original", result.stats.original_bytes);
  obs::count("pipeline.bytes.compressed", result.stats.total_bytes);

  const obs::ScopedSpan decode_span("pipeline/decode");
  const sim::Field decoded =
      preconditioner.decode(result.container, codecs, external_reduced);
  result.decode_seconds = decode_span.elapsed_seconds();
  obs::count("pipeline.decodes");

  result.rmse = stats::rmse(field.flat(), decoded.flat());
  result.max_error = stats::max_abs_error(field.flat(), decoded.flat());
  return result;
}

sim::Field reconstruct(const io::Container& container, const CodecPair& codecs,
                       const sim::Field* external_reduced) {
  const obs::ScopedSpan span("pipeline/reconstruct");
  const auto preconditioner = make_preconditioner(container.method);
  sim::Field field =
      preconditioner->decode(container, codecs, external_reduced);
  // Guarded archives carry the original nonfinite cells in a lossless
  // side section; restore them bit-exactly.  Pre-guard archives have no
  // such section and decode unchanged.
  if (const io::Section* section = container.find(kNanMaskSection)) {
    apply_nanmask(field, nanmask_from_bytes(section->bytes));
  }
  return field;
}

BestEffortResult reconstruct_best_effort(const io::Container& container,
                                         const io::ReadReport& report,
                                         const CodecPair& codecs,
                                         const sim::Field* external_reduced) {
  BestEffortResult result;
  result.damaged_sections = report.damaged();

  if (result.damaged_sections.empty()) {
    result.field = reconstruct(container, codecs, external_reduced);
    result.exact = true;
    result.detail = report.repaired()
                        ? "intact (single-section damage repaired via parity)"
                        : "intact";
    return result;
  }

  // The delta is the one payload we can substitute: dropping it yields the
  // pure reduced-model approximation, exactly the quality the paper's
  // reduced representation guarantees on its own.
  io::Container patched = container;
  const bool delta_lost =
      std::find(result.damaged_sections.begin(), result.damaged_sections.end(),
                "delta") != result.damaged_sections.end() &&
      container.find("delta") == nullptr;
  if (delta_lost && codecs.delta != nullptr) {
    const sim::Field zeros(container.nx, container.ny, container.nz);
    patched.add("delta",
                codecs.delta->compress(
                    zeros.flat(), {container.nx, container.ny, container.nz}));
  }

  try {
    result.field = reconstruct(patched, codecs, external_reduced);
  } catch (const io::ContainerError&) {
    throw;
  } catch (const std::exception& e) {
    throw io::ContainerError(
        io::ContainerErrc::kUnrecoverable,
        "best-effort decode failed after losing section(s) " +
            join(result.damaged_sections) + ": " + e.what());
  }
  result.approximate = true;
  result.detail = delta_lost
                      ? "reduced-model-only approximation (delta section "
                        "unrecoverable, treated as zero)"
                      : "decoded without damaged advisory section(s): " +
                            join(result.damaged_sections);
  return result;
}

BestEffortResult reconstruct_best_effort(std::span<const std::uint8_t> bytes,
                                         const CodecPair& codecs,
                                         const sim::Field* external_reduced) {
  io::ReadReport report;
  const io::Container container = io::deserialize_salvage(bytes, &report);
  return reconstruct_best_effort(container, report, codecs, external_reduced);
}

}  // namespace rmp::core
