#include "core/pipeline.hpp"

#include <chrono>

#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

PipelineResult run_pipeline(const Preconditioner& preconditioner,
                            const sim::Field& field, const CodecPair& codecs,
                            const sim::Field* external_reduced) {
  PipelineResult result;
  result.method = preconditioner.name();

  const auto encode_start = std::chrono::steady_clock::now();
  result.container = preconditioner.encode(field, codecs, &result.stats);
  result.encode_seconds = seconds_since(encode_start);

  const auto decode_start = std::chrono::steady_clock::now();
  const sim::Field decoded =
      preconditioner.decode(result.container, codecs, external_reduced);
  result.decode_seconds = seconds_since(decode_start);

  result.rmse = stats::rmse(field.flat(), decoded.flat());
  result.max_error = stats::max_abs_error(field.flat(), decoded.flat());
  return result;
}

sim::Field reconstruct(const io::Container& container, const CodecPair& codecs,
                       const sim::Field* external_reduced) {
  const auto preconditioner = make_preconditioner(container.method);
  return preconditioner->decode(container, codecs, external_reduced);
}

}  // namespace rmp::core
