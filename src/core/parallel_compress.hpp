// Thread-parallel whole-field compression: the N-to-N pattern of the
// paper's Table IV experiment ("each processor compresses and writes
// independently"), mapped onto the thread pool.  The field is split into
// Z slabs; each slab is compressed independently with the same codec and
// stored as its own container section, so slabs can also be decompressed
// selectively.
#pragma once

#include <cstddef>

#include "compress/compressor.hpp"
#include "io/container.hpp"
#include "sim/field.hpp"

namespace rmp::core {

struct ParallelCompressOptions {
  std::size_t slabs = 4;    ///< clamped to the Z extent
  /// threads <= 1 runs the per-slab loop inline (serial baseline);
  /// anything larger fans out onto the shared pool (parallel::global_pool,
  /// or a ScopedPoolOverride) -- the pool's worker count, not this value,
  /// bounds the actual parallelism.  Output bytes are identical either way.
  std::size_t threads = 4;
};

io::Container compress_field_parallel(const sim::Field& field,
                                      const compress::Compressor& codec,
                                      const ParallelCompressOptions& options = {});

sim::Field decompress_field_parallel(const io::Container& container,
                                     const compress::Compressor& codec,
                                     std::size_t threads = 4);

/// Region-of-interest decoding: decompress only slab `slab` of a
/// parallel-slabs container.  Returns the slab as its own field together
/// with its global Z offset -- analysis can pull one subdomain without
/// paying for the rest.
struct SlabView {
  sim::Field field;      ///< shape (nx, ny, slab_nz)
  std::size_t z_offset;  ///< global index of the slab's first Z plane
};
SlabView decompress_slab(const io::Container& container,
                         const compress::Compressor& codec, std::size_t slab);

/// Number of slabs stored in a parallel-slabs container.
std::size_t slab_count(const io::Container& container);

}  // namespace rmp::core
