#include "core/tucker.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "core/pca.hpp"  // components_for_target
#include "core/precond_error.hpp"
#include "core/reshape.hpp"
#include "core/serialize.hpp"
#include "la/eigen.hpp"
#include "obs/obs.hpp"

namespace rmp::core {
namespace {

// Tensor stored flat with shape (d0, d1, d2), index (i*d1 + j)*d2 + k --
// the Field layout.
struct Shape3 {
  std::size_t d0, d1, d2;
  std::size_t count() const { return d0 * d1 * d2; }
};

std::size_t flat(const Shape3& s, std::size_t i, std::size_t j,
                 std::size_t k) {
  return (i * s.d1 + j) * s.d2 + k;
}

// Gram matrix of the mode-m unfolding: G(a, b) = sum over the other two
// indices of T[a at mode m] * T[b at mode m].  Its eigenvectors are the
// HOSVD factor matrix for that mode, eigenvalues the squared singular
// values.
la::Matrix mode_gram(const std::vector<double>& t, const Shape3& s,
                     unsigned mode) {
  const std::size_t n = mode == 0 ? s.d0 : (mode == 1 ? s.d1 : s.d2);
  la::Matrix g(n, n);
  // Fiber-wise accumulation: for every fixed off-mode position, gather
  // the mode fiber and add its outer product, G += fiber * fiber^T.
  const std::size_t strides[3] = {s.d1 * s.d2, s.d2, 1};
  const std::size_t counts[3] = {s.d0, s.d1, s.d2};
  const unsigned o1 = mode == 0 ? 1 : 0;
  const unsigned o2 = mode == 2 ? 1 : 2;
  std::vector<double> fiber(n);
  for (std::size_t p = 0; p < counts[o1]; ++p) {
    for (std::size_t q = 0; q < counts[o2]; ++q) {
      const std::size_t base = p * strides[o1] + q * strides[o2];
      for (std::size_t a = 0; a < n; ++a) {
        fiber[a] = t[base + a * strides[mode]];
      }
      for (std::size_t a = 0; a < n; ++a) {
        const double fa = fiber[a];
        if (fa == 0.0) continue;
        for (std::size_t b = a; b < n; ++b) {
          g(a, b) += fa * fiber[b];
        }
      }
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < a; ++b) {
      g(a, b) = g(b, a);
    }
  }
  return g;
}

// Multiply tensor T by matrix M (r x d_mode) along `mode`; the mode's
// extent becomes r.
std::vector<double> mode_multiply(const std::vector<double>& t,
                                  const Shape3& s, unsigned mode,
                                  const la::Matrix& m, Shape3& out_shape) {
  const std::size_t r = m.rows();
  out_shape = s;
  (mode == 0 ? out_shape.d0 : mode == 1 ? out_shape.d1 : out_shape.d2) = r;
  std::vector<double> out(out_shape.count(), 0.0);

  const std::size_t n = mode == 0 ? s.d0 : (mode == 1 ? s.d1 : s.d2);
  for (std::size_t i = 0; i < out_shape.d0; ++i) {
    for (std::size_t j = 0; j < out_shape.d1; ++j) {
      for (std::size_t k = 0; k < out_shape.d2; ++k) {
        double sum = 0.0;
        const std::size_t row = mode == 0 ? i : (mode == 1 ? j : k);
        for (std::size_t a = 0; a < n; ++a) {
          const std::size_t si = mode == 0 ? a : i;
          const std::size_t sj = mode == 1 ? a : j;
          const std::size_t sk = mode == 2 ? a : k;
          sum += m(row, a) * t[flat(s, si, sj, sk)];
        }
        out[flat(out_shape, i, j, k)] = sum;
      }
    }
  }
  return out;
}

// Leading-k eigenvector block, transposed into a (k x n) projection.
la::Matrix projection_of(const la::EigenDecomposition& eig, std::size_t k) {
  la::Matrix p(k, eig.vectors.rows());
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < eig.vectors.rows(); ++c) {
      p(r, c) = eig.vectors(c, r);
    }
  }
  return p;
}

std::vector<double> sigma_proportions(const la::EigenDecomposition& eig) {
  std::vector<double> sigma;
  sigma.reserve(eig.values.size());
  double total = 0.0;
  for (double v : eig.values) {
    const double s = std::sqrt(std::max(v, 0.0));
    sigma.push_back(s);
    total += s;
  }
  if (total <= 0.0) {
    std::vector<double> proportions(sigma.size(), 0.0);
    if (!proportions.empty()) proportions[0] = 1.0;
    return proportions;
  }
  for (double& s : sigma) s /= total;
  return sigma;
}

Shape3 canonical_shape(const sim::Field& field) {
  if (field.rank() == 3) return {field.nx(), field.ny(), field.nz()};
  if (field.rank() == 2) return {field.nx(), field.ny(), 1};
  const auto [m, n] = matrix_shape(field);
  return {m, n, 1};
}

}  // namespace

std::vector<std::vector<double>> tucker_mode_proportions(
    const sim::Field& field) {
  const Shape3 shape = canonical_shape(field);
  const std::vector<double> tensor(field.flat().begin(), field.flat().end());
  std::vector<std::vector<double>> proportions;
  for (unsigned mode = 0; mode < 3; ++mode) {
    const auto eig = la::jacobi_eigen(mode_gram(tensor, shape, mode));
    proportions.push_back(sigma_proportions(eig));
  }
  return proportions;
}

TuckerPreconditioner::TuckerPreconditioner(TuckerOptions options)
    : options_(options) {
  if (options_.energy_target <= 0.0 || options_.energy_target > 1.0) {
    throw std::invalid_argument("tucker: energy_target must be in (0, 1]");
  }
}

io::Container TuckerPreconditioner::encode(const sim::Field& field,
                                           const CodecPair& codecs,
                                           EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/tucker");
  const Shape3 shape = canonical_shape(field);
  std::vector<double> tensor(field.flat().begin(), field.flat().end());

  // Per-mode factors by Gram-matrix eigendecomposition.
  std::array<la::Matrix, 3> factors;   // k_m x d_m projections
  std::array<std::size_t, 3> ranks{};
  for (unsigned mode = 0; mode < 3; ++mode) {
    const std::size_t extent =
        mode == 0 ? shape.d0 : (mode == 1 ? shape.d1 : shape.d2);
    if (extent == 1) {
      ranks[mode] = 1;
      factors[mode] = la::Matrix::identity(1);
      continue;
    }
    const auto eig = la::jacobi_eigen(mode_gram(tensor, shape, mode));
    if (!eig.converged) {
      throw PreconditionError(
          PrecondErrc::kEigenNonConvergence,
          "tucker: mode-" + std::to_string(mode) +
              " gram eigendecomposition left off-diagonal residual " +
              std::to_string(eig.off_diagonal_residual));
    }
    std::size_t k = components_for_target(sigma_proportions(eig),
                                          options_.energy_target);
    if (k == 0) {
      throw PreconditionError(PrecondErrc::kRankFailure,
                              "tucker: mode-" + std::to_string(mode) +
                                  " rank selection produced no components");
    }
    ranks[mode] = k;
    factors[mode] = projection_of(eig, k);
  }

  // Core tensor: project along every mode.
  Shape3 core_shape = shape;
  std::vector<double> core = tensor;
  for (unsigned mode = 0; mode < 3; ++mode) {
    Shape3 next{};
    core = mode_multiply(core, core_shape, mode, factors[mode], next);
    core_shape = next;
  }

  const auto core_bytes =
      traced_compress(*codecs.reduced, "reduced-compress", core,
                      {core_shape.d0, core_shape.d1, core_shape.d2});

  // Reconstruction (clean core, paper-style) and delta.
  Shape3 recon_shape = core_shape;
  std::vector<double> recon = core;
  for (unsigned mode = 0; mode < 3; ++mode) {
    Shape3 next{};
    recon = mode_multiply(recon, recon_shape, mode,
                          factors[mode].transposed(), next);
    recon_shape = next;
  }
  sim::Field delta = field;
  {
    auto d = delta.flat();
    for (std::size_t n = 0; n < d.size(); ++n) d[n] -= recon[n];
  }

  io::Container container;
  container.method = name();
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
  container.add("core", core_bytes);
  container.add("u0", matrix_to_bytes(factors[0]));
  container.add("u1", matrix_to_bytes(factors[1]));
  container.add("u2", matrix_to_bytes(factors[2]));
  container.add("delta",
                traced_compress(*codecs.delta, "delta-compress", delta.flat(),
                                {field.nx(), field.ny(), field.nz()}));
  const std::uint64_t meta[6] = {ranks[0], ranks[1], ranks[2],
                                 shape.d0,  shape.d1, shape.d2};
  container.add("meta", u64s_to_bytes(meta));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->reduced_bytes = container.find("core")->bytes.size() +
                           container.find("u0")->bytes.size() +
                           container.find("u1")->bytes.size() +
                           container.find("u2")->bytes.size();
    stats->delta_bytes = container.find("delta")->bytes.size();
  }
  return container;
}

sim::Field TuckerPreconditioner::decode(const io::Container& container,
                                        const CodecPair& codecs,
                                        const sim::Field*) const {
  const obs::ScopedSpan span("tucker");
  const auto& core_section = require_section(container, "core", "tucker");
  const auto& delta_section = require_section(container, "delta", "tucker");
  const auto& meta_section = require_section(container, "meta", "tucker");
  const auto meta = bytes_to_u64s(meta_section.bytes);
  const Shape3 core_shape{meta.at(0), meta.at(1), meta.at(2)};

  std::array<la::Matrix, 3> factors;
  for (unsigned mode = 0; mode < 3; ++mode) {
    const auto& section =
        require_section(container, "u" + std::to_string(mode), "tucker");
    factors[mode] = bytes_to_matrix(section.bytes);
  }

  std::vector<double> recon = codecs.reduced->decompress(core_section.bytes);
  Shape3 shape = core_shape;
  for (unsigned mode = 0; mode < 3; ++mode) {
    Shape3 next{};
    recon = mode_multiply(recon, shape, mode, factors[mode].transposed(),
                          next);
    shape = next;
  }

  const auto delta_values = codecs.delta->decompress(delta_section.bytes);
  if (delta_values.size() != recon.size()) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             "tucker decode: delta size mismatch", "delta");
  }
  std::vector<double> values(recon.size());
  for (std::size_t n = 0; n < values.size(); ++n) {
    values[n] = recon[n] + delta_values[n];
  }
  return sim::Field::from_data(container.nx, container.ny, container.nz,
                               std::move(values));
}

}  // namespace rmp::core
