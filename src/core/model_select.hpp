// Model selection (the paper's second future-work item, §VII): "there is
// no single reduced method that is the best for all datasets", so try a
// set of candidate preconditioners and keep the one with the smallest
// stored payload (optionally subject to an RMSE budget).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace rmp::core {

struct SelectionOptions {
  /// Candidate names resolved via make_preconditioner.  3D-only methods
  /// are skipped automatically for lower-rank fields.
  std::vector<std::string> candidates = {"identity", "one-base", "multi-base",
                                         "pca", "svd", "wavelet", "tucker"};
  /// When set, candidates whose round-trip RMSE exceeds this are rejected.
  std::optional<double> rmse_budget;
};

struct SelectionResult {
  std::string best;                       ///< winning method name
  PipelineResult best_result;
  std::vector<PipelineResult> all;        ///< every evaluated candidate
  /// "name: reason" for every candidate that was rejected (over budget) or
  /// failed outright (non-convergence, shape mismatch); empty on a clean
  /// selection.
  std::vector<std::string> rejections;
  /// True when no candidate qualified and the identity baseline was used
  /// instead of throwing -- `rejections` records why each one fell.
  bool fell_back = false;
};

/// Evaluate every candidate on the field and pick the smallest container
/// within the RMSE budget.  A candidate that throws for data-shaped
/// reasons is recorded in `rejections` and skipped; when *no* candidate
/// qualifies the selection degrades to the identity baseline
/// (fell_back = true) instead of throwing.  Only genuinely impossible
/// inputs raise PreconditionError(kDegenerateInput).
SelectionResult select_best_model(const sim::Field& field,
                                  const CodecPair& codecs,
                                  const SelectionOptions& options = {});

}  // namespace rmp::core
