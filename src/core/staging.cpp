#include "core/staging.hpp"

#include "obs/obs.hpp"

namespace rmp::core {

StagingNode::StagingNode(const core::CodecPair& codecs, StagingOptions options)
    : codecs_(codecs), options_(std::move(options)) {
  if (options_.max_queue == 0) options_.max_queue = 1;
  worker_ = std::thread([this] { worker_loop(); });
}

StagingNode::~StagingNode() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  worker_.join();
}

std::size_t StagingNode::submit(sim::Field field) {
  const obs::ScopedSpan span("staging/submit");
  std::unique_lock lock(mutex_);
  space_ready_.wait(lock, [this] {
    return queue_.size() < options_.max_queue || stopping_;
  });
  if (stopping_) {
    throw std::runtime_error("StagingNode: submit after shutdown");
  }
  const std::size_t id = stats_.fields_submitted++;
  stats_.bytes_in += field.size() * sizeof(double);
  stats_.submit_block_seconds += span.elapsed_seconds();
  obs::count("staging.fields_submitted");
  obs::count("staging.bytes_in", field.size() * sizeof(double));
  obs::gauge_max("staging.queue_depth", queue_.size() + 1);
  queue_.emplace_back(id, std::move(field));
  ++in_flight_;
  lock.unlock();
  work_ready_.notify_one();
  return id;
}

void StagingNode::drain() {
  std::unique_lock lock(mutex_);
  drained_.wait(lock, [this] { return in_flight_ == 0 && queue_.empty(); });
}

StagingStats StagingNode::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void StagingNode::worker_loop() {
  const auto preconditioner = core::make_preconditioner(options_.method);
  for (;;) {
    std::pair<std::size_t, sim::Field> item;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    space_ready_.notify_one();

    // A failed encode or write must not escape the worker thread (that
    // would std::terminate the process mid-simulation): record it, keep
    // draining the queue, and let the application read the verdict from
    // stats().  write_container's durable atomic publish guarantees a
    // failed write leaves no torn archive behind.
    try {
      core::EncodeStats encode_stats;
      io::Container container;
      double elapsed = 0.0;
      {
        const obs::ScopedSpan span("staging/encode");
        container = preconditioner->encode(item.second, codecs_, &encode_stats);
        elapsed = span.elapsed_seconds();
      }
      obs::count("staging.fields_completed");
      obs::count("staging.bytes_out", encode_stats.total_bytes);

      if (options_.output_dir) {
        io::write_container(*options_.output_dir /
                            ("field_" + std::to_string(item.first) + ".rmp"),
                        container);
      }

      {
        std::lock_guard lock(mutex_);
        stats_.fields_completed++;
        stats_.bytes_out += encode_stats.total_bytes;
        stats_.total_compress_seconds += elapsed;
        if (!options_.output_dir) {
          results_.push_back(std::move(container));
        }
      }
    } catch (const std::exception& e) {
      obs::count("staging.fields_failed");
      std::lock_guard lock(mutex_);
      stats_.fields_failed++;
      stats_.last_error = e.what();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    drained_.notify_all();
  }
}

}  // namespace rmp::core
