#include "core/staging.hpp"

#include <map>

#include "core/precond_error.hpp"
#include "obs/obs.hpp"

namespace rmp::core {

StagingNode::StagingNode(const core::CodecPair& codecs, StagingOptions options)
    : codecs_(codecs), options_(std::move(options)) {
  if (options_.max_queue == 0) options_.max_queue = 1;
  worker_ = std::thread([this] { worker_loop(); });
}

StagingNode::~StagingNode() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  worker_.join();
}

std::size_t StagingNode::enqueue_locked(std::unique_lock<std::mutex>& lock,
                                        StagingJob&& job) {
  const std::size_t id = stats_.fields_submitted++;
  const std::size_t bytes_in =
      job.field ? job.field->size() * sizeof(double)
                : (job.container ? job.container->payload_bytes() : 0);
  stats_.bytes_in += bytes_in;
  obs::count("staging.fields_submitted");
  obs::count("staging.bytes_in", bytes_in);
  obs::gauge_max("staging.queue_depth", queue_.size() + 1);
  queue_.emplace_back(id, std::move(job));
  ++in_flight_;
  lock.unlock();
  work_ready_.notify_one();
  return id;
}

std::size_t StagingNode::submit(sim::Field field) {
  StagingJob job;
  job.field = std::move(field);
  return submit(std::move(job));
}

std::size_t StagingNode::submit(StagingJob job) {
  const obs::ScopedSpan span("staging/submit");
  std::unique_lock lock(mutex_);
  space_ready_.wait(lock, [this] {
    return queue_.size() < options_.max_queue || stopping_;
  });
  if (stopping_) {
    throw std::runtime_error("StagingNode: submit after shutdown");
  }
  stats_.submit_block_seconds += span.elapsed_seconds();
  return enqueue_locked(lock, std::move(job));
}

std::optional<std::size_t> StagingNode::try_submit(StagingJob job) {
  std::unique_lock lock(mutex_);
  if (stopping_) {
    throw std::runtime_error("StagingNode: submit after shutdown");
  }
  if (queue_.size() >= options_.max_queue) {
    ++stats_.fields_rejected;
    obs::count("staging.rejected");
    return std::nullopt;
  }
  return enqueue_locked(lock, std::move(job));
}

void StagingNode::drain() {
  std::unique_lock lock(mutex_);
  drained_.wait(lock, [this] { return in_flight_ == 0 && queue_.empty(); });
}

StagingStats StagingNode::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

namespace {

StagingErrorKind classify_failure(const std::exception& e) {
  if (const auto* container_error = dynamic_cast<const io::ContainerError*>(&e)) {
    if (container_error->code() == io::ContainerErrc::kDeadlineExceeded) {
      return StagingErrorKind::kDeadlineExceeded;
    }
    return StagingErrorKind::kIoError;
  }
  if (dynamic_cast<const PreconditionError*>(&e) != nullptr) {
    return StagingErrorKind::kPrecondition;
  }
  return StagingErrorKind::kOther;
}

}  // namespace

void StagingNode::worker_loop() {
  // Preconditioners are cached per method: the common case is one method
  // for the whole run, but daemon jobs may override per request.
  std::map<std::string, std::unique_ptr<Preconditioner>> preconditioners;
  const auto preconditioner_for =
      [&](const std::string& name) -> Preconditioner& {
    auto it = preconditioners.find(name);
    if (it == preconditioners.end()) {
      it = preconditioners.emplace(name, core::make_preconditioner(name)).first;
    }
    return *it->second;
  };

  for (;;) {
    std::pair<std::size_t, StagingJob> item;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    space_ready_.notify_one();

    StagingJob& job = item.second;
    StagingJobResult result;
    result.id = item.first;

    // A failed encode or write must not escape the worker thread (that
    // would std::terminate the process mid-simulation): record it, keep
    // draining the queue, and let the application read the verdict from
    // stats() or the job callback.  write_container's durable atomic
    // publish guarantees a failed write leaves no torn archive behind.
    try {
      const obs::ScopedSpan span("staging/encode");
      io::Container container;
      std::size_t bytes_out = 0;
      if (job.field) {
        core::EncodeStats encode_stats;
        const std::string& method =
            job.method.empty() ? options_.method : job.method;
        container =
            preconditioner_for(method).encode(*job.field, codecs_,
                                              &encode_stats);
        bytes_out = encode_stats.total_bytes;
        result.method = method;
      } else if (job.container) {
        container = std::move(*job.container);
        bytes_out = container.payload_bytes();
        result.method = container.method;
      } else {
        throw std::runtime_error("StagingNode: job carries neither field "
                                 "nor container");
      }
      obs::count("staging.bytes_out", bytes_out);

      if (options_.output_dir) {
        io::SerializeOptions serialize = options_.serialize;
        if (job.retry) serialize.retry = *job.retry;
        const std::string name =
            job.name.empty() ? "field_" + std::to_string(item.first) + ".rmp"
                             : job.name;
        result.path = *options_.output_dir / name;
        io::write_container(result.path, container, serialize);
      }

      result.ok = true;
      result.bytes_out = bytes_out;
      result.seconds = span.elapsed_seconds();
      obs::count("staging.fields_completed");

      {
        std::lock_guard lock(mutex_);
        stats_.fields_completed++;
        stats_.bytes_out += bytes_out;
        stats_.total_compress_seconds += result.seconds;
        if (!options_.output_dir) {
          results_.push_back(std::move(container));
        }
      }
    } catch (const std::exception& e) {
      obs::count("staging.fields_failed");
      result.ok = false;
      result.error = e.what();
      result.error_kind = classify_failure(e);
      std::lock_guard lock(mutex_);
      stats_.fields_failed++;
      stats_.last_error = e.what();
    }

    // The callback runs before the job is counted out of in_flight_, so
    // drain() returning guarantees every completion has been delivered.
    if (job.on_complete) job.on_complete(result);

    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    drained_.notify_all();
  }
}

}  // namespace rmp::core
