#include "core/guard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "compress/lossless.hpp"
#include "core/pipeline.hpp"
#include "core/serialize.hpp"
#include "obs/obs.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Mean of the finite axis neighbors of (i, j, k); nullopt when every
// neighbor is nonfinite (or out of range).
std::optional<double> neighbor_mean(const sim::Field& field, std::size_t i,
                                    std::size_t j, std::size_t k) {
  double sum = 0.0;
  std::size_t count = 0;
  auto consider = [&](std::size_t x, std::size_t y, std::size_t z) {
    const double v = field.at(x, y, z);
    if (std::isfinite(v)) {
      sum += v;
      ++count;
    }
  };
  if (i > 0) consider(i - 1, j, k);
  if (i + 1 < field.nx()) consider(i + 1, j, k);
  if (j > 0) consider(i, j - 1, k);
  if (j + 1 < field.ny()) consider(i, j + 1, k);
  if (k > 0) consider(i, j, k - 1);
  if (k + 1 < field.nz()) consider(i, j, k + 1);
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

bool env_inject_is(const char* what) {
  const char* inject = std::getenv("RMP_GUARD_INJECT");
  return inject != nullptr && std::strcmp(inject, what) == 0;
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

}  // namespace

// ---------------------------------------------------------------------------
// Audit

DataAudit audit_field(const sim::Field& field) {
  DataAudit audit;
  audit.total = field.size();
  audit.degenerate_shape = field.size() < 2;

  double sum = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double v : field.flat()) {
    switch (std::fpclassify(v)) {
      case FP_NAN:
        ++audit.nans;
        continue;
      case FP_INFINITE:
        ++(v > 0.0 ? audit.pos_infs : audit.neg_infs);
        continue;
      case FP_SUBNORMAL:
        ++audit.denormals;
        break;
      default:
        break;
    }
    ++audit.finite;
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (audit.finite > 0) {
    audit.finite_min = lo;
    audit.finite_max = hi;
    audit.finite_mean = sum / static_cast<double>(audit.finite);
    audit.constant_field = lo == hi;
  }
  return audit;
}

// ---------------------------------------------------------------------------
// Nonfinite masking

NanMask extract_nonfinite(sim::Field& field) {
  NanMask mask;
  // First pass: record payloads (fill values must not contaminate the
  // neighbor means computed below, so nothing is replaced yet).
  for (std::size_t n = 0; n < field.size(); ++n) {
    const double v = field.flat()[n];
    if (!std::isfinite(v)) {
      mask.indices.push_back(n);
      mask.bits.push_back(double_bits(v));
    }
  }
  if (mask.empty()) return mask;

  double finite_sum = 0.0;
  std::size_t finite_count = 0;
  for (double v : field.flat()) {
    if (std::isfinite(v)) {
      finite_sum += v;
      ++finite_count;
    }
  }
  const double global_fill =
      finite_count > 0 ? finite_sum / static_cast<double>(finite_count) : 0.0;

  std::vector<double> fills(mask.size());
  for (std::size_t m = 0; m < mask.size(); ++m) {
    const std::size_t n = mask.indices[m];
    const std::size_t i = n / (field.ny() * field.nz());
    const std::size_t j = (n / field.nz()) % field.ny();
    const std::size_t k = n % field.nz();
    fills[m] = neighbor_mean(field, i, j, k).value_or(global_fill);
  }
  for (std::size_t m = 0; m < mask.size(); ++m) {
    field.flat()[mask.indices[m]] = fills[m];
  }
  return mask;
}

void apply_nanmask(sim::Field& field, const NanMask& mask) {
  if (mask.indices.size() != mask.bits.size()) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             "nanmask: index/payload count mismatch",
                             kNanMaskSection);
  }
  for (std::size_t m = 0; m < mask.size(); ++m) {
    if (mask.indices[m] >= field.size()) {
      throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                               "nanmask: cell index out of range",
                               kNanMaskSection);
    }
    field.flat()[mask.indices[m]] = bits_double(mask.bits[m]);
  }
}

std::vector<std::uint8_t> nanmask_to_bytes(const NanMask& mask) {
  std::vector<std::uint64_t> words;
  words.reserve(1 + 2 * mask.size());
  words.push_back(mask.size());
  words.insert(words.end(), mask.indices.begin(), mask.indices.end());
  words.insert(words.end(), mask.bits.begin(), mask.bits.end());
  return compress::lossless_compress(u64s_to_bytes(words));
}

NanMask nanmask_from_bytes(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint64_t> words;
  try {
    words = bytes_to_u64s(compress::lossless_decompress(bytes));
  } catch (const std::exception& e) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             std::string("nanmask: undecodable payload: ") +
                                 e.what(),
                             kNanMaskSection);
  }
  if (words.empty() || words[0] != (words.size() - 1) / 2 ||
      (words.size() - 1) % 2 != 0) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             "nanmask: cell count disagrees with payload size",
                             kNanMaskSection);
  }
  NanMask mask;
  const std::size_t count = static_cast<std::size_t>(words[0]);
  mask.indices.assign(words.begin() + 1, words.begin() + 1 + count);
  mask.bits.assign(words.begin() + 1 + count, words.end());
  return mask;
}

// ---------------------------------------------------------------------------
// Provenance (text key=value lines; tiny, human-greppable, stored raw)

std::vector<std::uint8_t> provenance_to_bytes(const GuardProvenance& prov) {
  std::string text;
  text += "requested=" + prov.requested + "\n";
  text += "actual=" + prov.actual + "\n";
  text += "masked=" + std::to_string(prov.masked_cells) + "\n";
  text += "bound_checked=" + std::string(prov.bound_checked ? "1" : "0") + "\n";
  if (prov.bound_checked) {
    text += "bound=" + format_double(prov.bound) + "\n";
    text += "bound_satisfied=" +
            std::string(prov.bound_satisfied ? "1" : "0") + "\n";
  }
  text += "max_error=" + format_double(prov.verified_max_error) + "\n";
  for (const auto& demotion : prov.demotions) {
    text += "demotion=" + demotion.from + "|" + demotion.reason + "\n";
  }
  return {text.begin(), text.end()};
}

GuardProvenance provenance_from_bytes(std::span<const std::uint8_t> bytes) {
  GuardProvenance prov;
  std::string text(bytes.begin(), bytes.end());
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;  // tolerate unknown/garbled lines
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "requested") {
      prov.requested = value;
    } else if (key == "actual") {
      prov.actual = value;
    } else if (key == "masked") {
      prov.masked_cells = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "bound_checked") {
      prov.bound_checked = value == "1";
    } else if (key == "bound") {
      prov.bound = std::strtod(value.c_str(), nullptr);
    } else if (key == "bound_satisfied") {
      prov.bound_satisfied = value == "1";
    } else if (key == "max_error") {
      prov.verified_max_error = std::strtod(value.c_str(), nullptr);
    } else if (key == "demotion") {
      const std::size_t bar = value.find('|');
      if (bar == std::string::npos) {
        prov.demotions.push_back({value, ""});
      } else {
        prov.demotions.push_back(
            {value.substr(0, bar), value.substr(bar + 1)});
      }
    }
  }
  return prov;
}

std::string format_provenance(const GuardProvenance& prov) {
  std::string out;
  out += "guard: requested " + prov.requested + ", ran " + prov.actual + "\n";
  if (prov.masked_cells > 0) {
    out += "guard: " + std::to_string(prov.masked_cells) +
           " nonfinite cell(s) masked (restored bit-exact on decode)\n";
  }
  if (prov.bound_checked) {
    out += "guard: bound " + format_double(prov.bound) +
           (prov.bound_satisfied ? " SATISFIED" : " NOT satisfied") +
           ", verified max error " + format_double(prov.verified_max_error) +
           "\n";
  } else {
    out += "guard: verified max error " +
           format_double(prov.verified_max_error) + " (no bound requested)\n";
  }
  for (const auto& demotion : prov.demotions) {
    out += "guard: demoted from " + demotion.from + ": " + demotion.reason +
           "\n";
  }
  return out;
}

std::optional<GuardProvenance> read_provenance(const io::Container& container) {
  const io::Section* section = container.find(kGuardSection);
  if (section == nullptr) return std::nullopt;
  return provenance_from_bytes(section->bytes);
}

// ---------------------------------------------------------------------------
// Guarded encode

GuardedEncodeResult guarded_encode(const sim::Field& field,
                                   const CodecPair& codecs,
                                   const GuardOptions& options) {
  if (field.size() == 0) {
    throw PreconditionError(PrecondErrc::kDegenerateInput,
                            "guarded_encode: empty field");
  }
  if (codecs.reduced == nullptr || codecs.delta == nullptr) {
    throw std::invalid_argument("guarded_encode: both codecs are required");
  }
  const auto factory = options.factory
                           ? options.factory
                           : [](const std::string& name) {
                               return make_preconditioner(name);
                             };

  GuardedEncodeResult result;
  {
    const obs::ScopedSpan span("audit");
    result.audit = audit_field(field);
  }
  result.provenance.requested = options.method;

  // Mask: the chain below only ever sees finite data.
  sim::Field masked = field;
  NanMask mask;
  if (options.mask_nonfinite && result.audit.nonfinite() > 0) {
    const obs::ScopedSpan span("mask");
    mask = extract_nonfinite(masked);
  }
  result.provenance.masked_cells = mask.size();
  if (!mask.empty()) obs::count("guard.masked_cells", mask.size());

  // Build the chain: requested method, then the fallbacks, deduplicated,
  // with the lossless terminal always present.
  std::vector<std::string> chain{options.method};
  for (const auto& name : options.fallbacks) {
    if (std::find(chain.begin(), chain.end(), name) == chain.end()) {
      chain.push_back(name);
    }
  }
  if (chain.back() != "raw") chain.push_back("raw");

  // Audit-driven pre-demotion: reduced models need variance to find and at
  // least a handful of cells to factor; route degenerate data straight to
  // the cheap end of the chain.
  std::size_t first = 0;
  if (options.method != "identity" && options.method != "raw") {
    std::string reason;
    if (result.audit.degenerate_shape) {
      reason = "audit: degenerate shape (" +
               std::to_string(result.audit.total) + " cell(s))";
    } else if (result.audit.all_nonfinite()) {
      reason = "audit: no finite cells";
    } else if (result.audit.constant_field) {
      reason = "audit: constant field (zero variance)";
    }
    if (!reason.empty()) {
      while (first < chain.size() - 1 && chain[first] != "identity" &&
             chain[first] != "raw") {
        result.provenance.demotions.push_back({chain[first], reason});
        ++first;
      }
    }
  }

  // Resolve every chain entry upfront: an unknown name is a caller bug
  // and throws here, before any data-shaped handling starts.
  std::vector<std::unique_ptr<Preconditioner>> preconditioners;
  preconditioners.reserve(chain.size());
  for (const auto& name : chain) preconditioners.push_back(factory(name));

  for (std::size_t c = first; c < chain.size(); ++c) {
    const std::string& name = chain[c];
    const bool is_first_attempt = c == first;
    const bool terminal = c + 1 == chain.size();
    try {
      if (is_first_attempt && env_inject_is("eigen")) {
        throw PreconditionError(
            PrecondErrc::kEigenNonConvergence,
            "injected via RMP_GUARD_INJECT for fault testing");
      }
      if (is_first_attempt && env_inject_is("svd")) {
        throw PreconditionError(
            PrecondErrc::kSvdNonConvergence,
            "injected via RMP_GUARD_INJECT for fault testing");
      }
      EncodeStats stats;
      io::Container container;
      {
        const obs::ScopedSpan span("precondition");
        container = preconditioners[c]->encode(masked, codecs, &stats);
      }

      // Mandatory post-encode verification: decode back and measure the
      // pointwise error on every cell that was finite in the original.
      const obs::ScopedSpan verify_span("verify");
      const sim::Field decoded = preconditioners[c]->decode(container, codecs);
      double max_error =
          stats::finite_max_abs_error(field.flat(), decoded.flat());
      if (is_first_attempt && env_inject_is("bound")) {
        max_error = std::numeric_limits<double>::infinity();
      }
      const bool bound_ok =
          !options.error_bound.has_value() || max_error <= *options.error_bound;
      if (!bound_ok && !terminal) {
        obs::count("guard.bound_failures");
        obs::count("guard.demotions");
        result.provenance.demotions.push_back(
            {name, "bound verification failed: max error " +
                       format_double(max_error) + " > bound " +
                       format_double(*options.error_bound)});
        continue;
      }

      result.container = std::move(container);
      result.stats = stats;
      result.provenance.actual = name;
      result.provenance.verified_max_error = max_error;
      result.provenance.bound_checked = options.error_bound.has_value();
      result.provenance.bound = options.error_bound.value_or(0.0);
      result.provenance.bound_satisfied = bound_ok;
      break;
    } catch (const std::exception& e) {
      // Data-shaped failure (typed non-convergence, shape rejection,
      // codec/section trouble): record and demote.  The terminal `raw`
      // stage is lossless and shape-agnostic; if even it throws, that is
      // a real bug and must surface.
      if (terminal) throw;
      result.provenance.demotions.push_back({name, e.what()});
      obs::count("guard.demotions");
    }
  }

  if (!mask.empty()) {
    result.container.add(kNanMaskSection, nanmask_to_bytes(mask));
  }
  result.container.add(kGuardSection,
                       provenance_to_bytes(result.provenance));
  // Refresh the totals so the advisory sections are accounted for.
  const std::size_t reduced_bytes = result.stats.reduced_bytes;
  const std::size_t delta_bytes = result.stats.delta_bytes;
  fill_stats(result.container, field.size(), &result.stats);
  result.stats.reduced_bytes = reduced_bytes;
  result.stats.delta_bytes = delta_bytes;
  return result;
}

sim::Field guarded_decode(const io::Container& container,
                          const CodecPair& codecs,
                          const sim::Field* external_reduced) {
  return reconstruct(container, codecs, external_reduced);
}

}  // namespace rmp::core
