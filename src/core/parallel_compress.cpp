#include "core/parallel_compress.hpp"

#include <stdexcept>

#include "core/preconditioner.hpp"
#include "core/serialize.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::core {
namespace {

struct SlabExtent {
  std::size_t begin, end;
};

std::vector<SlabExtent> slab_extents(std::size_t nz, std::size_t count) {
  std::vector<SlabExtent> extents;
  extents.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    extents.push_back({s * nz / count, (s + 1) * nz / count});
  }
  return extents;
}

// Read and validate the slab count from the meta section.  The container
// may come off disk, so the value is untrusted: 0 would silently decode
// an all-zero field, and a huge value would drive unbounded section
// lookups -- both are malformed, not crashes.
std::size_t validated_slab_count(const io::Container& container,
                                 const char* who) {
  const auto& meta_section = require_section(container, "meta", who);
  std::vector<std::uint64_t> values;
  try {
    values = bytes_to_u64s(meta_section.bytes);
  } catch (const std::exception&) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             std::string(who) + ": meta does not parse",
                             "meta");
  }
  if (values.empty()) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             std::string(who) + ": meta is empty", "meta");
  }
  const std::uint64_t slabs = values[0];
  if (slabs == 0 || slabs > container.nz) {
    throw io::ContainerError(
        io::ContainerErrc::kSectionMalformed,
        std::string(who) + ": slab count " + std::to_string(slabs) +
            " outside [1, nz=" + std::to_string(container.nz) + "]",
        "meta");
  }
  return static_cast<std::size_t>(slabs);
}

// Per-slab loops run serially when the caller asks for one thread,
// otherwise on the shared pool (parallel::global_pool(), or the pool a
// ScopedPoolOverride installed) -- no per-call thread spawn/join.
void for_each_slab(std::size_t slabs, std::size_t threads,
                   const std::function<void(std::size_t)>& body) {
  if (threads <= 1) {
    for (std::size_t s = 0; s < slabs; ++s) body(s);
  } else {
    parallel::parallel_for(slabs, body);
  }
}

}  // namespace

io::Container compress_field_parallel(const sim::Field& field,
                                      const compress::Compressor& codec,
                                      const ParallelCompressOptions& options) {
  if (field.empty()) {
    throw std::invalid_argument("compress_field_parallel: empty field");
  }
  const std::size_t slabs =
      std::max<std::size_t>(1, std::min(options.slabs, field.nz()));
  const auto extents = slab_extents(field.nz(), slabs);

  io::Container container;
  container.method = "parallel-slabs";
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();

  std::vector<std::vector<std::uint8_t>> slab_bytes(slabs);
  for_each_slab(slabs, options.threads, [&](std::size_t s) {
    const auto [z_low, z_high] = extents[s];
    const std::size_t local_nz = z_high - z_low;
    std::vector<double> slab;
    slab.reserve(field.nx() * field.ny() * local_nz);
    for (std::size_t i = 0; i < field.nx(); ++i) {
      for (std::size_t j = 0; j < field.ny(); ++j) {
        for (std::size_t k = z_low; k < z_high; ++k) {
          slab.push_back(field.at(i, j, k));
        }
      }
    }
    slab_bytes[s] =
        codec.compress(slab, {field.nx(), field.ny(), local_nz});
  });

  for (std::size_t s = 0; s < slabs; ++s) {
    container.add("slab" + std::to_string(s), std::move(slab_bytes[s]));
  }
  const std::uint64_t meta[1] = {slabs};
  container.add("meta", u64s_to_bytes(meta));
  return container;
}

sim::Field decompress_field_parallel(const io::Container& container,
                                     const compress::Compressor& codec,
                                     std::size_t threads) {
  const std::size_t slabs =
      validated_slab_count(container, "decompress_field_parallel");
  const auto extents = slab_extents(container.nz, slabs);

  sim::Field out(container.nx, container.ny, container.nz);

  for_each_slab(slabs, threads, [&](std::size_t s) {
    const std::string slab_name = "slab" + std::to_string(s);
    const auto& section =
        require_section(container, slab_name, "decompress_field_parallel");
    const auto slab = codec.decompress(section.bytes);
    const auto [z_low, z_high] = extents[s];
    const std::size_t local_nz = z_high - z_low;
    if (slab.size() != container.nx * container.ny * local_nz) {
      throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                               "decompress_field_parallel: bad slab size",
                               slab_name);
    }
    // Slab Z-ranges tile [0, nz) without overlap, so every (i, j, k)
    // below is written by exactly one task -- no lock needed, and decode
    // scales with the slab count.
    std::size_t n = 0;
    for (std::size_t i = 0; i < container.nx; ++i) {
      for (std::size_t j = 0; j < container.ny; ++j) {
        for (std::size_t k = z_low; k < z_high; ++k, ++n) {
          out.at(i, j, k) = slab[n];
        }
      }
    }
  });
  return out;
}

std::size_t slab_count(const io::Container& container) {
  return validated_slab_count(container, "slab_count");
}

SlabView decompress_slab(const io::Container& container,
                         const compress::Compressor& codec,
                         std::size_t slab) {
  const std::size_t slabs = slab_count(container);
  if (slab >= slabs) {
    throw std::out_of_range("decompress_slab: slab index out of range");
  }
  const auto extents = slab_extents(container.nz, slabs);
  const std::string slab_name = "slab" + std::to_string(slab);
  const auto& section =
      require_section(container, slab_name, "decompress_slab");
  const auto values = codec.decompress(section.bytes);
  const auto [z_low, z_high] = extents[slab];
  const std::size_t local_nz = z_high - z_low;
  if (values.size() != container.nx * container.ny * local_nz) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             "decompress_slab: bad slab size", slab_name);
  }
  return {sim::Field::from_data(container.nx, container.ny, local_nz,
                                values),
          z_low};
}

}  // namespace rmp::core
