#include "core/parallel_compress.hpp"

#include <mutex>
#include <stdexcept>

#include "core/preconditioner.hpp"
#include "core/serialize.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::core {
namespace {

struct SlabExtent {
  std::size_t begin, end;
};

std::vector<SlabExtent> slab_extents(std::size_t nz, std::size_t count) {
  std::vector<SlabExtent> extents;
  extents.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    extents.push_back({s * nz / count, (s + 1) * nz / count});
  }
  return extents;
}

}  // namespace

io::Container compress_field_parallel(const sim::Field& field,
                                      const compress::Compressor& codec,
                                      const ParallelCompressOptions& options) {
  if (field.empty()) {
    throw std::invalid_argument("compress_field_parallel: empty field");
  }
  const std::size_t slabs =
      std::max<std::size_t>(1, std::min(options.slabs, field.nz()));
  const auto extents = slab_extents(field.nz(), slabs);

  io::Container container;
  container.method = "parallel-slabs";
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();

  std::vector<std::vector<std::uint8_t>> slab_bytes(slabs);
  parallel::ThreadPool pool(std::max<std::size_t>(1, options.threads));
  pool.parallel_for(slabs, [&](std::size_t s) {
    const auto [z_low, z_high] = extents[s];
    const std::size_t local_nz = z_high - z_low;
    std::vector<double> slab;
    slab.reserve(field.nx() * field.ny() * local_nz);
    for (std::size_t i = 0; i < field.nx(); ++i) {
      for (std::size_t j = 0; j < field.ny(); ++j) {
        for (std::size_t k = z_low; k < z_high; ++k) {
          slab.push_back(field.at(i, j, k));
        }
      }
    }
    slab_bytes[s] =
        codec.compress(slab, {field.nx(), field.ny(), local_nz});
  });

  for (std::size_t s = 0; s < slabs; ++s) {
    container.add("slab" + std::to_string(s), std::move(slab_bytes[s]));
  }
  const std::uint64_t meta[1] = {slabs};
  container.add("meta", u64s_to_bytes(meta));
  return container;
}

sim::Field decompress_field_parallel(const io::Container& container,
                                     const compress::Compressor& codec,
                                     std::size_t threads) {
  const auto& meta_section =
      require_section(container, "meta", "decompress_field_parallel");
  const std::size_t slabs = bytes_to_u64s(meta_section.bytes).at(0);
  const auto extents = slab_extents(container.nz, slabs);

  sim::Field out(container.nx, container.ny, container.nz);
  std::mutex out_mutex;

  parallel::ThreadPool pool(std::max<std::size_t>(1, threads));
  pool.parallel_for(slabs, [&](std::size_t s) {
    const std::string slab_name = "slab" + std::to_string(s);
    const auto& section =
        require_section(container, slab_name, "decompress_field_parallel");
    const auto slab = codec.decompress(section.bytes);
    const auto [z_low, z_high] = extents[s];
    const std::size_t local_nz = z_high - z_low;
    if (slab.size() != container.nx * container.ny * local_nz) {
      throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                               "decompress_field_parallel: bad slab size",
                               slab_name);
    }
    std::lock_guard lock(out_mutex);  // slabs are disjoint; lock is belt+braces
    std::size_t n = 0;
    for (std::size_t i = 0; i < container.nx; ++i) {
      for (std::size_t j = 0; j < container.ny; ++j) {
        for (std::size_t k = z_low; k < z_high; ++k, ++n) {
          out.at(i, j, k) = slab[n];
        }
      }
    }
  });
  return out;
}

std::size_t slab_count(const io::Container& container) {
  const auto& meta_section = require_section(container, "meta", "slab_count");
  return bytes_to_u64s(meta_section.bytes).at(0);
}

SlabView decompress_slab(const io::Container& container,
                         const compress::Compressor& codec,
                         std::size_t slab) {
  const std::size_t slabs = slab_count(container);
  if (slab >= slabs) {
    throw std::out_of_range("decompress_slab: slab index out of range");
  }
  const auto extents = slab_extents(container.nz, slabs);
  const std::string slab_name = "slab" + std::to_string(slab);
  const auto& section =
      require_section(container, slab_name, "decompress_slab");
  const auto values = codec.decompress(section.bytes);
  const auto [z_low, z_high] = extents[slab];
  const std::size_t local_nz = z_high - z_low;
  if (values.size() != container.nx * container.ny * local_nz) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             "decompress_slab: bad slab size", slab_name);
  }
  return {sim::Field::from_data(container.nx, container.ny, local_nz,
                                values),
          z_low};
}

}  // namespace rmp::core
