// Generic partitioned-matrix wrapper (paper future work #1, generalized):
// split the canonical m x n matrix into row blocks and run *any* inner
// preconditioner independently on each block, viewed as a 2D field.
//
// This is the second half of "implement the proposed reduced methods in
// partitioned matrix": PartitionedPcaPreconditioner specializes PCA with
// per-block rank adaptation; BlockedPreconditioner makes the same
// transformation available to SVD, Wavelet, Tucker, ... (registry names:
// "blocked-svd", "blocked-wavelet", ...).  Blocks parallelize and each
// block's spectral work drops from O(m n^2) to O((m/p) n^2).
#pragma once

#include <memory>

#include "core/preconditioner.hpp"

namespace rmp::core {

class BlockedPreconditioner final : public Preconditioner {
 public:
  /// `inner` is resolved by name ("svd", "wavelet", ...; must not itself
  /// be blocked or a cascade).
  BlockedPreconditioner(const std::string& inner, std::size_t partitions = 4);

  std::string name() const override { return "blocked-" + inner_name_; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;

 private:
  std::string inner_name_;
  std::size_t partitions_;
  std::unique_ptr<Preconditioner> inner_;
};

}  // namespace rmp::core
