// Predictive model selection: the paper's §VII second future-work item
// done without brute force.  select_best_model() compresses with every
// candidate; this module instead extracts cheap statistics -- the same
// signals the paper's analysis surfaces -- and picks a method *before*
// any compression:
//
//  * zero fraction      -- Fish-like data (many exact zeros) is hurt by
//                          every preconditioner (Fig. 6): pick identity.
//  * mid-plane affinity -- how well the global mid Z-plane explains every
//                          other plane (the §IV one-base signal).
//  * PC1 dominance      -- proportion of variance in the first principal
//                          component (the Fig. 7 signal: dominant PC1 =>
//                          big PCA/SVD win), estimated on a row sample.
#pragma once

#include <cstddef>
#include <string>

#include "sim/field.hpp"

namespace rmp::core {

struct ModelFeatures {
  double zero_fraction = 0.0;      ///< exact zeros / size
  double mid_plane_affinity = 0.0; ///< 0..1, 3D fields only (else 0)
  double pc1_proportion = 0.0;     ///< variance share of PC1 (sampled)
  double value_range = 0.0;
};

struct PredictOptions {
  /// Row sample cap for the covariance estimate (keeps prediction O(n^2)).
  std::size_t max_sample_rows = 256;
  double zero_fraction_cutoff = 0.5;
  double affinity_cutoff = 0.9;
  double pc1_cutoff = 0.6;
};

struct ModelPrediction {
  std::string method;  ///< "identity", "one-base" or "pca"
  ModelFeatures features;
};

ModelFeatures extract_features(const sim::Field& field,
                               const PredictOptions& options = {});

/// Pick a preconditioner from the features alone (no compression runs).
ModelPrediction predict_best_model(const sim::Field& field,
                                   const PredictOptions& options = {});

}  // namespace rmp::core
