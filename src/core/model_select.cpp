#include "core/model_select.hpp"

#include <limits>
#include <stdexcept>

namespace rmp::core {

SelectionResult select_best_model(const sim::Field& field,
                                  const CodecPair& codecs,
                                  const SelectionOptions& options) {
  SelectionResult selection;
  std::size_t best_bytes = std::numeric_limits<std::size_t>::max();

  for (const auto& name : options.candidates) {
    // Projection methods need a Z dimension to project along.
    const bool needs_3d =
        name == "one-base" || name == "multi-base" || name == "duomodel";
    if (needs_3d && field.rank() != 3) continue;

    const auto preconditioner = make_preconditioner(name);
    PipelineResult result = run_pipeline(*preconditioner, field, codecs);
    const bool within_budget =
        !options.rmse_budget.has_value() ||
        result.rmse <= *options.rmse_budget;
    if (within_budget && result.stats.total_bytes < best_bytes) {
      best_bytes = result.stats.total_bytes;
      selection.best = name;
      selection.best_result = result;
    }
    selection.all.push_back(std::move(result));
  }

  if (selection.best.empty()) {
    throw std::runtime_error(
        "select_best_model: no candidate met the constraints");
  }
  return selection;
}

}  // namespace rmp::core
