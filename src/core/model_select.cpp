#include "core/model_select.hpp"

#include <limits>

#include "core/precond_error.hpp"

namespace rmp::core {

SelectionResult select_best_model(const sim::Field& field,
                                  const CodecPair& codecs,
                                  const SelectionOptions& options) {
  if (field.size() == 0) {
    throw PreconditionError(PrecondErrc::kDegenerateInput,
                            "select_best_model: empty field");
  }

  SelectionResult selection;
  std::size_t best_bytes = std::numeric_limits<std::size_t>::max();
  std::size_t identity_index = std::numeric_limits<std::size_t>::max();

  for (const auto& name : options.candidates) {
    // Projection methods need a Z dimension to project along.
    const bool needs_3d =
        name == "one-base" || name == "multi-base" || name == "duomodel";
    if (needs_3d && field.rank() != 3) continue;

    PipelineResult result;
    try {
      const auto preconditioner = make_preconditioner(name);
      result = run_pipeline(*preconditioner, field, codecs);
    } catch (const std::invalid_argument&) {
      throw;  // unknown candidate name is a caller bug, not a data problem
    } catch (const std::exception& e) {
      selection.rejections.push_back(name + ": " + e.what());
      continue;
    }

    const bool within_budget =
        !options.rmse_budget.has_value() || result.rmse <= *options.rmse_budget;
    if (!within_budget) {
      selection.rejections.push_back(
          name + ": rmse " + std::to_string(result.rmse) +
          " exceeds budget " + std::to_string(*options.rmse_budget));
    } else if (result.stats.total_bytes < best_bytes) {
      best_bytes = result.stats.total_bytes;
      selection.best = name;
      selection.best_result = result;
    }
    selection.all.push_back(std::move(result));
    if (name == "identity") identity_index = selection.all.size() - 1;
  }

  if (selection.best.empty()) {
    // Nothing qualified: degrade to the identity baseline with the
    // rejection record intact rather than throwing for a data-shaped
    // outcome.  Reuse the evaluated run when identity was a candidate.
    selection.fell_back = true;
    if (identity_index != std::numeric_limits<std::size_t>::max()) {
      selection.best = "identity";
      selection.best_result = selection.all[identity_index];
      return selection;
    }
    try {
      selection.best_result =
          run_pipeline(*make_preconditioner("identity"), field, codecs);
    } catch (const std::exception& e) {
      throw PreconditionError(
          PrecondErrc::kDegenerateInput,
          std::string("select_best_model: every candidate failed and the "
                      "identity fallback did too: ") +
              e.what());
    }
    selection.best = "identity";
  }
  return selection;
}

}  // namespace rmp::core
