// Field <-> matrix reshaping for the dimension-reduction preconditioners.
//
// The paper treats a dataset as an m x n matrix with columns as variables.
// Convention here (DESIGN.md §5): a 3D field (nx, ny, nz) becomes the
// (nx*ny) x nz matrix whose rows are (x, y) samples; a 2D field maps
// directly; a 1D signal is folded into the most nearly square m x n
// factorization so PCA/SVD remain meaningful.
#pragma once

#include <cstddef>
#include <utility>

#include "la/matrix.hpp"
#include "sim/field.hpp"

namespace rmp::core {

/// Matrix shape a field will be viewed as.
std::pair<std::size_t, std::size_t> matrix_shape(const sim::Field& field);

/// Most nearly square factorization m x n = count with m >= n.
std::pair<std::size_t, std::size_t> near_square_factors(std::size_t count);

/// View the field's data as the canonical matrix (copies).
la::Matrix as_matrix(const sim::Field& field);

/// Inverse of as_matrix: rebuild a field of the given shape.
sim::Field matrix_to_field(const la::Matrix& m, std::size_t nx, std::size_t ny,
                           std::size_t nz);

}  // namespace rmp::core
