// Chunked parallel read pipeline for seekable archives (DESIGN.md §12).
//
// The rapidgzip decomposition, adapted to containers: a **fetcher** that
// serves chunk N on demand, a **sequential prefetcher** that watches the
// access pattern and schedules upcoming chunks onto the shared thread
// pool before they are asked for, and a **bounded LRU cache** holding
// decoded chunks so repeated and near-past accesses are free.  A "chunk"
// here is one independently-decodable io::Container -- a step of a
// sequence archive, or any unit a custom loader produces.
//
// Concurrency model: one ChunkFetcher is shared by N threads.  Demand
// fetches never block on a *queued-but-unstarted* background task (the
// classic pool deadlock when every worker waits on work stuck behind it
// in the queue); instead the demand thread atomically claims the pending
// entry and decodes it inline, and the background task, finding its work
// claimed, simply exits.  Waiting happens only on chunks that are
// actively being decoded on another thread.  Results are byte-identical
// to serial decode: the cache stores immutable decoded containers and
// claim/steal only changes *who* decodes, never *what*.
//
// Obs counters: "chunk.cache.hits", "chunk.cache.misses",
// "chunk.prefetch.issued", "chunk.prefetch.wasted".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "io/container.hpp"
#include "io/sequence_file.hpp"

namespace rmp::core {

using ChunkPtr = std::shared_ptr<const io::Container>;

struct ChunkFetchOptions {
  /// Decoded chunks the LRU cache retains.  0 disables caching (every
  /// get decodes; prefetch is disabled too, having nowhere to land).
  std::size_t cache_chunks = 32;
  /// Upper bound on chunks scheduled ahead of a sequential reader.  The
  /// live window starts at 1 and doubles per confirmed sequential access
  /// up to this cap; any non-sequential access collapses it back.
  std::size_t prefetch_window = 8;
};

/// Bounded LRU of decoded chunks, keyed by chunk index.  Thread-safe.
class ChunkCache {
 public:
  explicit ChunkCache(std::size_t capacity) : capacity_(capacity) {}

  /// nullptr on miss; refreshes recency on hit.
  ChunkPtr get(std::size_t key);
  void put(std::size_t key, ChunkPtr value);
  bool contains(std::size_t key) const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Most-recent at the front; evictions pop the back.
  std::list<std::size_t> order_;
  struct Slot {
    ChunkPtr value;
    std::list<std::size_t>::iterator position;
  };
  std::unordered_map<std::size_t, Slot> map_;
};

/// Streak detector: feeds on the sequence of demanded chunk indices and
/// answers "which chunks should be scheduled ahead right now".  A run of
/// consecutive indices doubles the window (1, 2, 4, ... up to the cap);
/// a random access resets it.  Not thread-safe by itself -- ChunkFetcher
/// calls it under its own lock.
class SequentialPrefetcher {
 public:
  explicit SequentialPrefetcher(std::size_t max_window)
      : max_window_(max_window) {}

  /// Record a demand for `index` (of `total` chunks) and return the
  /// indices worth prefetching, nearest first.  Never includes `index`.
  std::vector<std::size_t> on_access(std::size_t index, std::size_t total);

  std::size_t window() const noexcept { return window_; }

 private:
  std::size_t max_window_;
  std::size_t window_ = 1;
  std::size_t last_ = static_cast<std::size_t>(-1);
};

/// Fetcher + prefetcher + cache over `chunk_count` chunks produced by
/// `loader(index)`.  The loader must be thread-safe (it is called
/// concurrently from pool workers and demand threads) and must be pure:
/// same index, same bytes.  The destructor drains outstanding background
/// work, so references captured by the loader must outlive the fetcher --
/// never the other way around.
class ChunkFetcher {
 public:
  using Loader = std::function<ChunkPtr(std::size_t)>;

  ChunkFetcher(std::size_t chunk_count, Loader loader,
               const ChunkFetchOptions& options = {});
  ~ChunkFetcher();

  ChunkFetcher(const ChunkFetcher&) = delete;
  ChunkFetcher& operator=(const ChunkFetcher&) = delete;

  /// Serve chunk `index`: cache hit, join an in-flight decode, or decode
  /// inline.  Feeds the prefetcher.  Throws std::out_of_range for a bad
  /// index; loader exceptions propagate (and are rethrown to every
  /// waiter of that chunk).
  ChunkPtr get(std::size_t index);

  std::size_t chunk_count() const noexcept { return chunk_count_; }

  /// Block until every issued background task has finished or been
  /// claimed.  Called by the destructor.
  void drain();

 private:
  struct InFlight {
    /// 0 = scheduled, not started; 1 = claimed (someone is decoding).
    std::atomic<int> state{0};
    std::promise<ChunkPtr> promise;
    std::shared_future<ChunkPtr> future;
  };

  /// Decode `index` on the calling thread and publish the result (cache
  /// + promise).  Entry must already be claimed by this caller.
  ChunkPtr load_and_publish(std::size_t index,
                            const std::shared_ptr<InFlight>& entry);
  void schedule_prefetch(const std::vector<std::size_t>& indices);

  std::size_t chunk_count_;
  Loader loader_;
  ChunkFetchOptions options_;
  ChunkCache cache_;

  std::mutex mutex_;  ///< guards in_flight_ and prefetcher_
  std::unordered_map<std::size_t, std::shared_ptr<InFlight>> in_flight_;
  SequentialPrefetcher prefetcher_;

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::size_t pending_tasks_ = 0;
};

/// Fetcher over an open sequence archive: chunk K = decoded step K.  The
/// reader must outlive the fetcher (thread-safe by construction: all
/// SequenceReader reads are stateless positional reads).
ChunkFetcher make_sequence_fetcher(const io::SequenceReader& reader,
                                   const ChunkFetchOptions& options = {});

/// Decode every chunk concurrently on the active thread pool and return
/// them in order.  Byte-identical to calling loader(0..n-1) serially.
std::vector<ChunkPtr> fetch_all(ChunkFetcher& fetcher);

}  // namespace rmp::core
