// The paper's central abstraction: a *preconditioner* identifies a latent
// reduced model of a field, stores that reduced representation together
// with the compressed delta (original minus the reconstruction from the
// reduced model), and can rebuild the field from the two (Fig. 5).
//
// encode() produces a self-contained io::Container whose `method` names
// the preconditioner; decode() inverts it.  Two codecs are involved, per
// §V-B: the reduced representation is compressed at original-data grade,
// the delta at the looser delta grade (its magnitude is much smaller).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.hpp"
#include "io/container.hpp"
#include "sim/field.hpp"

namespace rmp::core {

struct CodecPair {
  /// Codec for the reduced representation (paper: ZFP 16 bit / SZ 1e-5).
  const compress::Compressor* reduced;
  /// Codec for the delta (paper: ZFP 8 bit / SZ 1e-3).
  const compress::Compressor* delta;
};

struct EncodeStats {
  std::size_t reduced_bytes = 0;  ///< reduced-representation payload
  std::size_t delta_bytes = 0;    ///< compressed delta payload
  std::size_t total_bytes = 0;    ///< full container payload
  std::size_t original_bytes = 0;
  double compression_ratio = 0.0;
};

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// Stable identifier stored in the container ("one-base", "pca", ...).
  virtual std::string name() const = 0;

  /// Precondition and compress.  `stats`, when non-null, receives the
  /// size accounting used throughout the evaluation benches.
  virtual io::Container encode(const sim::Field& field,
                               const CodecPair& codecs,
                               EncodeStats* stats = nullptr) const = 0;

  /// Reconstruct the field.  `external_reduced` supplies a re-computed
  /// reduced model for methods that do not store theirs (DuoModel re-runs
  /// the light simulation instead of storing its output).
  virtual sim::Field decode(const io::Container& container,
                            const CodecPair& codecs,
                            const sim::Field* external_reduced = nullptr)
      const = 0;
};

/// Instantiate a preconditioner by its stable name; used to dispatch
/// decoding from Container::method.  Throws std::invalid_argument for
/// unknown names.
std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name);

/// Names of every built-in preconditioner, in evaluation order:
/// identity, raw (lossless guard terminal), one-base, multi-base,
/// duomodel, pca, svd, wavelet, pca-part, tucker.
const std::vector<std::string>& preconditioner_names();

/// Fill `stats` from a finished container (helper for implementations).
void fill_stats(const io::Container& container, std::size_t element_count,
                EncodeStats* stats);

/// Fetch a required section or throw io::ContainerError(kMissingSection)
/// naming both the decoder and the absent section (helper for decoders).
const io::Section& require_section(const io::Container& container,
                                   const std::string& name,
                                   const char* decoder);

/// Codec calls under an obs stage span ("reduced-compress",
/// "delta-compress", ...) with byte accounting, so per-stage cost shows up
/// in `rmpc --stats` regardless of which preconditioner ran the codec.
std::vector<std::uint8_t> traced_compress(const compress::Compressor& codec,
                                          const char* stage,
                                          std::span<const double> data,
                                          const compress::Dims& dims);
std::vector<double> traced_decompress(const compress::Compressor& codec,
                                      const char* stage,
                                      std::span<const std::uint8_t> bytes);

}  // namespace rmp::core
