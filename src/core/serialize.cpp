#include "core/serialize.hpp"

#include <cstring>
#include <stdexcept>

namespace rmp::core {

namespace {

// memcpy with a null pointer is undefined even for zero sizes, and empty
// vectors/spans hand out null data() -- every copy goes through this guard.
void copy_bytes(void* dst, const void* src, std::size_t count) {
  if (count != 0) std::memcpy(dst, src, count);
}

}  // namespace

std::vector<std::uint8_t> doubles_to_bytes(std::span<const double> values) {
  std::vector<std::uint8_t> bytes(values.size_bytes());
  copy_bytes(bytes.data(), values.data(), bytes.size());
  return bytes;
}

std::vector<double> bytes_to_doubles(std::span<const std::uint8_t> bytes) {
  if (bytes.size() % sizeof(double) != 0) {
    throw std::invalid_argument("bytes_to_doubles: size not a multiple of 8");
  }
  std::vector<double> values(bytes.size() / sizeof(double));
  copy_bytes(values.data(), bytes.data(), bytes.size());
  return values;
}

std::vector<std::uint8_t> matrix_to_bytes(const la::Matrix& m) {
  std::vector<std::uint8_t> bytes(2 * sizeof(std::uint64_t) +
                                  m.size() * sizeof(double));
  const std::uint64_t header[2] = {m.rows(), m.cols()};
  std::memcpy(bytes.data(), header, sizeof(header));
  copy_bytes(bytes.data() + sizeof(header), m.flat().data(),
             m.size() * sizeof(double));
  return bytes;
}

la::Matrix bytes_to_matrix(std::span<const std::uint8_t> bytes) {
  std::uint64_t header[2];
  if (bytes.size() < sizeof(header)) {
    throw std::invalid_argument("bytes_to_matrix: truncated header");
  }
  std::memcpy(header, bytes.data(), sizeof(header));
  const std::size_t rows = header[0];
  const std::size_t cols = header[1];
  if (bytes.size() != sizeof(header) + rows * cols * sizeof(double)) {
    throw std::invalid_argument("bytes_to_matrix: size mismatch");
  }
  std::vector<double> data(rows * cols);
  copy_bytes(data.data(), bytes.data() + sizeof(header),
             data.size() * sizeof(double));
  return la::Matrix(rows, cols, std::move(data));
}

std::vector<std::uint8_t> u64s_to_bytes(std::span<const std::uint64_t> values) {
  std::vector<std::uint8_t> bytes(values.size_bytes());
  copy_bytes(bytes.data(), values.data(), bytes.size());
  return bytes;
}

std::vector<std::uint64_t> bytes_to_u64s(std::span<const std::uint8_t> bytes) {
  if (bytes.size() % sizeof(std::uint64_t) != 0) {
    throw std::invalid_argument("bytes_to_u64s: size not a multiple of 8");
  }
  std::vector<std::uint64_t> values(bytes.size() / sizeof(std::uint64_t));
  copy_bytes(values.data(), bytes.data(), bytes.size());
  return values;
}

}  // namespace rmp::core
