#include "core/model_predict.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/reshape.hpp"
#include "la/covariance.hpp"
#include "la/eigen.hpp"

namespace rmp::core {
namespace {

double compute_zero_fraction(const sim::Field& field) {
  std::size_t zeros = 0;
  for (double v : field.flat()) {
    if (v == 0.0) ++zeros;
  }
  return field.empty()
             ? 0.0
             : static_cast<double>(zeros) / static_cast<double>(field.size());
}

double compute_value_range(const sim::Field& field) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double v : field.flat()) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi > lo ? hi - lo : 0.0;
}

// Mean absolute deviation of every plane from the mid plane, normalized
// by the value range: affinity 1 means the mid plane explains the field
// exactly (the ideal one-base case).
double compute_mid_plane_affinity(const sim::Field& field, double range) {
  if (field.rank() != 3 || range <= 0.0) return 0.0;
  const std::size_t mid = field.nz() / 2;
  double sum = 0.0;
  for (std::size_t i = 0; i < field.nx(); ++i) {
    for (std::size_t j = 0; j < field.ny(); ++j) {
      const double base = field.at(i, j, mid);
      for (std::size_t k = 0; k < field.nz(); ++k) {
        sum += std::fabs(field.at(i, j, k) - base);
      }
    }
  }
  const double mean = sum / static_cast<double>(field.size());
  return std::clamp(1.0 - mean / range, 0.0, 1.0);
}

// PC1 variance share estimated from a strided row sample of the canonical
// matrix: covariance is O(sample * n^2) instead of O(m * n^2).
double compute_pc1_proportion(const sim::Field& field,
                              const PredictOptions& options) {
  const auto [m, n] = matrix_shape(field);
  if (m == 0 || n < 2) return 1.0;

  const std::size_t sample =
      std::min<std::size_t>(m, std::max<std::size_t>(2, options.max_sample_rows));
  const std::size_t stride = std::max<std::size_t>(1, m / sample);

  la::Matrix sampled(sample, n);
  const auto flat = field.flat();
  for (std::size_t s = 0; s < sample; ++s) {
    const std::size_t row = std::min(s * stride, m - 1);
    for (std::size_t j = 0; j < n; ++j) {
      sampled(s, j) = flat[row * n + j];
    }
  }
  const auto eig = la::jacobi_eigen(la::covariance(sampled));
  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  if (total <= 0.0) return 1.0;
  return std::max(eig.values.front(), 0.0) / total;
}

}  // namespace

ModelFeatures extract_features(const sim::Field& field,
                               const PredictOptions& options) {
  ModelFeatures features;
  features.zero_fraction = compute_zero_fraction(field);
  features.value_range = compute_value_range(field);
  features.mid_plane_affinity =
      compute_mid_plane_affinity(field, features.value_range);
  features.pc1_proportion = compute_pc1_proportion(field, options);
  return features;
}

ModelPrediction predict_best_model(const sim::Field& field,
                                   const PredictOptions& options) {
  ModelPrediction prediction;
  prediction.features = extract_features(field, options);
  const ModelFeatures& f = prediction.features;

  if (f.zero_fraction > options.zero_fraction_cutoff) {
    // Fig. 6's Fish case: preconditioning turns exact zeros into
    // hard-to-compress near-zeros.
    prediction.method = "identity";
  } else if (field.rank() == 3 &&
             f.mid_plane_affinity > options.affinity_cutoff) {
    prediction.method = "one-base";
  } else if (f.pc1_proportion > options.pc1_cutoff) {
    prediction.method = "pca";
  } else {
    prediction.method = "identity";
  }
  return prediction;
}

}  // namespace rmp::core
