#include "core/reshape.hpp"

#include <cmath>
#include <stdexcept>

namespace rmp::core {

std::pair<std::size_t, std::size_t> near_square_factors(std::size_t count) {
  if (count == 0) return {0, 0};
  auto n = static_cast<std::size_t>(std::sqrt(static_cast<double>(count)));
  while (n > 1 && count % n != 0) --n;
  return {count / n, n};  // m >= n
}

std::pair<std::size_t, std::size_t> matrix_shape(const sim::Field& field) {
  switch (field.rank()) {
    case 3:
      return {field.nx() * field.ny(), field.nz()};
    case 2:
      return {field.nx(), field.ny()};
    default:
      return near_square_factors(field.size());
  }
}

la::Matrix as_matrix(const sim::Field& field) {
  const auto [m, n] = matrix_shape(field);
  if (m * n != field.size()) {
    throw std::logic_error("as_matrix: shape mismatch");
  }
  // The field layout is row-major with z fastest, which is exactly the
  // row-major (m, n) layout for every rank's canonical shape.
  return la::Matrix(m, n,
                    std::vector<double>(field.flat().begin(),
                                        field.flat().end()));
}

sim::Field matrix_to_field(const la::Matrix& mat, std::size_t nx,
                           std::size_t ny, std::size_t nz) {
  if (mat.size() != nx * ny * nz) {
    throw std::invalid_argument("matrix_to_field: size mismatch");
  }
  return sim::Field::from_data(
      nx, ny, nz,
      std::vector<double>(mat.flat().begin(), mat.flat().end()));
}

}  // namespace rmp::core
