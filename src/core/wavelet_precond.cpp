#include "core/wavelet_precond.hpp"

#include <stdexcept>

#include "compress/lossless.hpp"
#include "core/reshape.hpp"
#include "core/serialize.hpp"
#include "la/sparse.hpp"
#include "obs/obs.hpp"
#include "wavelet/haar.hpp"

namespace rmp::core {

WaveletPreconditioner::WaveletPreconditioner(WaveletOptions options)
    : options_(options) {
  if (options_.threshold_fraction < 0.0 || options_.threshold_fraction >= 1.0) {
    throw std::invalid_argument("wavelet: threshold_fraction must be in [0, 1)");
  }
}

io::Container WaveletPreconditioner::encode(const sim::Field& field,
                                            const CodecPair& codecs,
                                            EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/wavelet");
  const bool use_3d = options_.transform_3d && field.rank() == 3;
  la::Matrix coeffs = as_matrix(field);
  if (use_3d) {
    // Same memory layout: the canonical (nx*ny, nz) matrix view of the
    // 3D coefficient array keeps the CSR machinery unchanged.
    wavelet::haar_forward_3d(coeffs.flat(), field.nx(), field.ny(),
                             field.nz());
  } else {
    wavelet::haar_forward_2d(coeffs);
  }

  const double theta =
      wavelet::threshold_for_fraction(coeffs, options_.threshold_fraction);
  wavelet::threshold_coefficients(coeffs, theta);

  const la::CsrMatrix sparse = la::CsrMatrix::from_dense(coeffs);
  const auto sparse_bytes = compress::lossless_compress(sparse.serialize());

  // Reconstruction from the thresholded coefficients.
  la::Matrix recon = coeffs;
  if (use_3d) {
    wavelet::haar_inverse_3d(recon.flat(), field.nx(), field.ny(),
                             field.nz());
  } else {
    wavelet::haar_inverse_2d(recon);
  }
  const sim::Field delta = subtract(
      field, matrix_to_field(recon, field.nx(), field.ny(), field.nz()));

  io::Container container;
  container.method = name();
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
  container.add("sparse", sparse_bytes);
  container.add("delta",
                traced_compress(*codecs.delta, "delta-compress", delta.flat(),
                                {field.nx(), field.ny(), field.nz()}));
  const std::uint64_t meta[1] = {use_3d ? 1u : 0u};
  container.add("meta", u64s_to_bytes(meta));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->reduced_bytes = container.find("sparse")->bytes.size();
    stats->delta_bytes = container.find("delta")->bytes.size();
  }
  return container;
}

sim::Field WaveletPreconditioner::decode(const io::Container& container,
                                         const CodecPair& codecs,
                                         const sim::Field*) const {
  const obs::ScopedSpan span("wavelet");
  const auto& sparse_section = require_section(container, "sparse", "wavelet");
  const auto& delta_section = require_section(container, "delta", "wavelet");
  const auto raw = compress::lossless_decompress(sparse_section.bytes);
  const la::CsrMatrix sparse = la::CsrMatrix::deserialize(raw.data(), raw.size());

  bool use_3d = false;
  if (const auto* meta_section = container.find("meta")) {
    const auto meta = bytes_to_u64s(meta_section->bytes);
    use_3d = !meta.empty() && meta[0] != 0;
  }

  la::Matrix recon = sparse.to_dense();
  if (use_3d) {
    wavelet::haar_inverse_3d(recon.flat(), container.nx, container.ny,
                             container.nz);
  } else {
    wavelet::haar_inverse_2d(recon);
  }

  const auto delta_values = codecs.delta->decompress(delta_section.bytes);
  sim::Field out = sim::Field::from_data(container.nx, container.ny,
                                         container.nz, delta_values);
  return add(out, matrix_to_field(recon, container.nx, container.ny,
                                  container.nz));
}

}  // namespace rmp::core
