// Byte-level helpers shared by the preconditioners when packing matrices
// and vectors into container sections.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "la/matrix.hpp"

namespace rmp::core {

std::vector<std::uint8_t> doubles_to_bytes(std::span<const double> values);
std::vector<double> bytes_to_doubles(std::span<const std::uint8_t> bytes);

/// Matrix serialization: rows, cols (u64 each) followed by row-major data.
std::vector<std::uint8_t> matrix_to_bytes(const la::Matrix& m);
la::Matrix bytes_to_matrix(std::span<const std::uint8_t> bytes);

/// Little header helpers for fixed-size scalar metadata sections.
std::vector<std::uint8_t> u64s_to_bytes(std::span<const std::uint64_t> values);
std::vector<std::uint64_t> bytes_to_u64s(std::span<const std::uint8_t> bytes);

}  // namespace rmp::core
