// Reconstruction-quality report: the §II-B relevance requirements made
// measurable.  Loss of accuracy (RMSE/max error within tolerance),
// feature preservation (gradient error, distribution shape), and
// complexity reduction (compression ratio) in one struct, with a
// one-call assessment helper used by the benches, the CLI (`rmpc
// verify`) and the tests.
#pragma once

#include <string>

#include "core/preconditioner.hpp"

namespace rmp::core {

struct QualityReport {
  std::string method;
  double compression_ratio = 0.0;
  double rmse = 0.0;
  double nrmse = 0.0;           ///< RMSE / value range
  double max_error = 0.0;
  double psnr_db = 0.0;
  double gradient_rmse = 0.0;   ///< first-difference error (features)
  double decile_distance = 0.0; ///< distribution-shape drift
  std::size_t stored_bytes = 0;
  std::size_t original_bytes = 0;
  /// NaN/Inf sample counts.  When either is nonzero the error metrics
  /// above are computed over the finite pairs only (a finite original cell
  /// reconstructed as nonfinite still drives max_error to infinity) so a
  /// single NaN cannot silently poison the whole report.
  std::size_t nonfinite_original = 0;
  std::size_t nonfinite_reconstructed = 0;
};

/// Encode + decode `field` with `preconditioner` and measure everything.
QualityReport assess_quality(const Preconditioner& preconditioner,
                             const sim::Field& field, const CodecPair& codecs,
                             const sim::Field* external_reduced = nullptr);

/// Compare an already-reconstructed field against the original (no
/// compression run; sizes must be supplied by the caller if wanted).
QualityReport compare_fields(const sim::Field& original,
                             const sim::Field& reconstructed);

/// Render the report as aligned text lines (for the CLI).
std::string format_report(const QualityReport& report);

}  // namespace rmp::core
