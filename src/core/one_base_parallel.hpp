// Distributed one-base preconditioning: Algorithm 1 of the paper, run
// verbatim over the in-process message-passing runtime.
//
// The global field is decomposed into Z slabs, one per rank.  The rank
// owning the global mid-plane broadcasts it; every rank subtracts it from
// its local planes and compresses its local delta independently (the
// N-to-N pattern); rank 0 gathers the per-rank containers.  Decoding is
// the inverse: scatter, decompress, add the plane back.
#pragma once

#include <vector>

#include "core/preconditioner.hpp"
#include "parallel/msgpass.hpp"

namespace rmp::core {

struct DistributedOneBaseResult {
  /// One container per rank, in rank order (each holds that slab's delta).
  std::vector<io::Container> rank_containers;
  /// The compressed mid-plane (broadcast reference), stored once.
  std::vector<std::uint8_t> plane_bytes;
  std::size_t nx = 0, ny = 0, nz = 0;

  std::size_t total_bytes() const;
};

/// Run Algorithm 1 with `ranks` ranks on `field` (must be 3D with
/// nz >= ranks).  Every rank compresses its slab's delta with
/// `codecs.delta`; the mid-plane is compressed once with `codecs.reduced`.
DistributedOneBaseResult one_base_encode_parallel(const sim::Field& field,
                                                  const CodecPair& codecs,
                                                  int ranks);

/// Inverse: reconstruct the full field from the per-rank containers.
sim::Field one_base_decode_parallel(const DistributedOneBaseResult& encoded,
                                    const CodecPair& codecs, int ranks);

}  // namespace rmp::core
