#include "core/identity.hpp"

#include <stdexcept>

#include "compress/lossless.hpp"
#include "core/serialize.hpp"
#include "obs/obs.hpp"

namespace rmp::core {
namespace {

compress::Dims field_dims(const sim::Field& f) {
  return {f.nx(), f.ny(), f.nz()};
}

}  // namespace

io::Container IdentityPreconditioner::encode(const sim::Field& field,
                                             const CodecPair& codecs,
                                             EncodeStats* stats) const {
  if (codecs.reduced == nullptr) {
    throw std::invalid_argument("identity encode: reduced codec required");
  }
  const obs::ScopedSpan span("precondition/identity");
  io::Container container;
  container.method = name();
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
  container.add("data",
                traced_compress(*codecs.reduced, "delta-compress",
                                field.flat(), field_dims(field)));
  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    // The whole payload is "delta" in the identity case: there is no
    // reduced representation.
    stats->delta_bytes = stats->total_bytes;
    stats->reduced_bytes = 0;
  }
  return container;
}

sim::Field IdentityPreconditioner::decode(const io::Container& container,
                                          const CodecPair& codecs,
                                          const sim::Field*) const {
  const auto& section = require_section(container, "data", "identity");
  auto values = codecs.reduced->decompress(section.bytes);
  return sim::Field::from_data(container.nx, container.ny, container.nz,
                               std::move(values));
}

io::Container RawPreconditioner::encode(const sim::Field& field,
                                        const CodecPair&,
                                        EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/raw");
  io::Container container;
  container.method = name();
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
  container.add("data",
                compress::lossless_compress(doubles_to_bytes(field.flat())));
  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->delta_bytes = stats->total_bytes;
    stats->reduced_bytes = 0;
  }
  return container;
}

sim::Field RawPreconditioner::decode(const io::Container& container,
                                     const CodecPair&,
                                     const sim::Field*) const {
  const auto& section = require_section(container, "data", "raw");
  std::vector<double> values;
  try {
    values = bytes_to_doubles(compress::lossless_decompress(section.bytes));
  } catch (const std::exception& e) {
    throw io::ContainerError(io::ContainerErrc::kSectionMalformed,
                             std::string("raw decode: ") + e.what(), "data");
  }
  const std::size_t expected = static_cast<std::size_t>(container.nx) *
                               container.ny * container.nz;
  if (values.size() != expected) {
    throw io::ContainerError(
        io::ContainerErrc::kSectionMalformed,
        "raw decode: payload cell count disagrees with the header shape",
        "data");
  }
  return sim::Field::from_data(container.nx, container.ny, container.nz,
                               std::move(values));
}

}  // namespace rmp::core
