// Tucker (HOSVD) preconditioner -- the tensor-native extension the
// paper's related work points at (Austin et al., IPDPS'16): instead of
// flattening a 3D field into a matrix, compute per-mode factor matrices
// U1, U2, U3 (eigenvectors of the mode unfoldings' Gram matrices) and a
// small core tensor G = A x1 U1^T x2 U2^T x3 U3^T.  The reduced
// representation is the compressed core plus the (exactly stored)
// factors; the delta against G x1 U1 x2 U2 x3 U3 is compressed at delta
// grade.
//
// For 2D fields this degenerates to an SVD-like two-factor model; 1D
// fields fall back to the canonical near-square matrix view.
#pragma once

#include "core/preconditioner.hpp"

namespace rmp::core {

struct TuckerOptions {
  /// Keep the smallest per-mode rank whose singular-value mass reaches
  /// this fraction (same 95% convention as PCA/SVD, paper §V-B).
  double energy_target = 0.95;
};

class TuckerPreconditioner final : public Preconditioner {
 public:
  explicit TuckerPreconditioner(TuckerOptions options = {});

  std::string name() const override { return "tucker"; }

  io::Container encode(const sim::Field& field, const CodecPair& codecs,
                       EncodeStats* stats) const override;
  sim::Field decode(const io::Container& container, const CodecPair& codecs,
                    const sim::Field* external_reduced) const override;

  const TuckerOptions& options() const noexcept { return options_; }

 private:
  TuckerOptions options_;
};

/// Per-mode singular-value proportions of a 3D field's unfoldings (via
/// Gram-matrix eigenvalues); diagnostic for rank selection.
std::vector<std::vector<double>> tucker_mode_proportions(
    const sim::Field& field);

}  // namespace rmp::core
