#include "core/cascade.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::core {
namespace {

// Delta codec for stage 1 that stores *nothing* (just the element count):
// stage 1 contributes only its reduced representation, and stage 2
// preconditions the full residual.
class NullCodec final : public compress::Compressor {
 public:
  std::string name() const override { return "null"; }
  bool lossless() const override { return false; }

  std::vector<std::uint8_t> compress(std::span<const double> data,
                                     const compress::Dims& dims) const override {
    if (data.size() != dims.count()) {
      throw std::invalid_argument("NullCodec: size mismatch");
    }
    std::vector<std::uint8_t> bytes(sizeof(std::uint64_t));
    const std::uint64_t count = data.size();
    std::memcpy(bytes.data(), &count, sizeof(count));
    return bytes;
  }

  std::vector<double> decompress(
      std::span<const std::uint8_t> stream) const override {
    if (stream.size() != sizeof(std::uint64_t)) {
      throw std::runtime_error("NullCodec: bad stream");
    }
    std::uint64_t count = 0;
    std::memcpy(&count, stream.data(), sizeof(count));
    return std::vector<double>(count, 0.0);
  }
};

const NullCodec kNullCodec;

}  // namespace

CascadePreconditioner::CascadePreconditioner(const std::string& first,
                                             const std::string& second)
    : first_name_(first),
      second_name_(second),
      first_(make_preconditioner(first)),
      second_(make_preconditioner(second)) {
  if (first.find('>') != std::string::npos ||
      second.find('>') != std::string::npos) {
    throw std::invalid_argument("cascade: stages cannot themselves nest");
  }
}

io::Container CascadePreconditioner::encode(const sim::Field& field,
                                            const CodecPair& codecs,
                                            EncodeStats* stats) const {
  const obs::ScopedSpan span("precondition/cascade");
  // Stage 1 stores only its reduced representation: its delta codec is a
  // null codec (stores the count, decodes zeros), so decoding stage 1
  // yields the pure reduced-model reconstruction.  Stage 2 then
  // preconditions the full residual with the real codecs.
  const CodecPair first_codecs{codecs.reduced, &kNullCodec};
  EncodeStats first_stats;
  io::Container first_container =
      first_->encode(field, first_codecs, &first_stats);
  const sim::Field first_decoded =
      first_->decode(first_container, first_codecs, nullptr);
  const sim::Field residual = subtract(field, first_decoded);

  EncodeStats second_stats;
  const io::Container second_container =
      second_->encode(residual, codecs, &second_stats);

  io::Container container;
  container.method = name();
  container.nx = field.nx();
  container.ny = field.ny();
  container.nz = field.nz();
  container.add("stage1", io::serialize(first_container));
  container.add("stage2", io::serialize(second_container));

  fill_stats(container, field.size(), stats);
  if (stats != nullptr) {
    stats->reduced_bytes = first_stats.reduced_bytes + second_stats.reduced_bytes;
    stats->delta_bytes = first_stats.delta_bytes + second_stats.delta_bytes;
  }
  return container;
}

sim::Field CascadePreconditioner::decode(const io::Container& container,
                                         const CodecPair& codecs,
                                         const sim::Field*) const {
  const obs::ScopedSpan span("cascade");
  const auto& stage1 = require_section(container, "stage1", "cascade");
  const auto& stage2 = require_section(container, "stage2", "cascade");
  const CodecPair first_codecs{codecs.reduced, &kNullCodec};
  // The two stage decodes share no state, so they run as two pool tasks
  // (each stage may fan out further; nested calls run inline).
  sim::Field first_decoded, residual;
  parallel::parallel_for(2, [&](std::size_t stage) {
    if (stage == 0) {
      first_decoded =
          first_->decode(io::deserialize(stage1.bytes), first_codecs, nullptr);
    } else {
      residual = second_->decode(io::deserialize(stage2.bytes), codecs, nullptr);
    }
  });
  return add(first_decoded, residual);
}

std::unique_ptr<Preconditioner> make_cascade(const std::string& spec) {
  const auto split = spec.find('>');
  if (split == std::string::npos || split == 0 || split + 1 == spec.size()) {
    throw std::invalid_argument("make_cascade: want \"first>second\", got " +
                                spec);
  }
  return std::make_unique<CascadePreconditioner>(spec.substr(0, split),
                                                 spec.substr(split + 1));
}

}  // namespace rmp::core
