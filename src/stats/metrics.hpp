// Data-characteristic and error metrics used throughout the evaluation.
//
// byte_entropy / byte_mean / serial_correlation are the three scalar
// quantities from Fig. 1 / Table II of the paper: they operate on the raw
// byte stream of the double-precision data (as `ent`, `mean`, `corr` do in
// the authors' methodology, which follows the classic `ent` tool).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rmp::stats {

/// Shannon entropy of the byte histogram, in bits per byte (range [0, 8]).
double byte_entropy(std::span<const std::uint8_t> bytes);

/// Arithmetic mean of the bytes (random data -> ~127.5).
double byte_mean(std::span<const std::uint8_t> bytes);

/// Lag-1 Pearson correlation between consecutive bytes (range [-1, 1]).
double serial_correlation(std::span<const std::uint8_t> bytes);

/// View a double array as its raw bytes (host byte order).
std::span<const std::uint8_t> as_bytes(std::span<const double> values);

/// Convenience overloads applying the byte metrics to double data.
double byte_entropy(std::span<const double> values);
double byte_mean(std::span<const double> values);
double serial_correlation(std::span<const double> values);

/// Root mean square error between two equal-length arrays.
double rmse(std::span<const double> a, std::span<const double> b);

/// Per-class tally of the non-normal values in a sample.
struct NonfiniteCensus {
  std::size_t nans = 0;
  std::size_t pos_infs = 0;
  std::size_t neg_infs = 0;
  std::size_t denormals = 0;  ///< subnormal (finite, counted separately)

  std::size_t nonfinite() const noexcept { return nans + pos_infs + neg_infs; }
};
NonfiniteCensus nonfinite_census(std::span<const double> values);

/// RMSE over the positions where a[i] is finite.  A nonfinite b[i] at such
/// a position is an unbounded error and yields +infinity; 0 if no position
/// qualifies.  The guard layer's bound verification and the quality report
/// use these so a NaN in the input cannot poison the whole metric.
double finite_rmse(std::span<const double> a, std::span<const double> b);

/// Max |a[i] - b[i]| over the positions where a[i] is finite (+infinity if
/// b is nonfinite at any such position; 0 if none qualify).
double finite_max_abs_error(std::span<const double> a,
                            std::span<const double> b);

/// RMSE normalized by the value range of `a` (0 if the range is 0).
double nrmse(std::span<const double> a, std::span<const double> b);

/// Peak signal-to-noise ratio in dB, using the range of `a` as peak.
double psnr(std::span<const double> a, std::span<const double> b);

double max_abs_error(std::span<const double> a, std::span<const double> b);

/// Empirical CDF of `values` sampled at `points` equally spaced value
/// levels between min and max.  Returns {value, probability} pairs; used to
/// draw the Fig. 1 curves.
struct CdfPoint {
  double value;
  double probability;
};
std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t points = 64);

/// Maximum vertical distance between the empirical CDFs of two samples
/// (two-sample Kolmogorov-Smirnov statistic) -- quantifies the Fig. 1
/// "nearly identical trends" claim.
double ks_distance(std::span<const double> a, std::span<const double> b);

struct ByteCharacteristics {
  double entropy;
  double mean;
  double correlation;
};
ByteCharacteristics byte_characteristics(std::span<const double> values);

/// RMSE between the first differences of two equal-length sequences --
/// a feature-preservation metric (§II-B requirement 2: analysis features
/// like gradients must survive reduction).  Empty/1-element inputs give 0.
double gradient_rmse(std::span<const double> a, std::span<const double> b);

/// Value at the q-th quantile (q in [0, 1]) of the sample, by sorting.
double quantile(std::span<const double> values, double q);

/// Maximum absolute difference between the two samples' deciles -- a
/// robust distribution-shape distance complementing ks_distance.
double decile_distance(std::span<const double> a, std::span<const double> b);

}  // namespace rmp::stats
