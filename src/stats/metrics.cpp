#include "stats/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rmp::stats {
namespace {

std::array<std::uint64_t, 256> histogram(std::span<const std::uint8_t> bytes) {
  std::array<std::uint64_t, 256> h{};
  for (std::uint8_t b : bytes) ++h[b];
  return h;
}

double value_range(std::span<const double> a) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double v : a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return (a.empty() || hi < lo) ? 0.0 : hi - lo;
}

}  // namespace

double byte_entropy(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return 0.0;
  const auto h = histogram(bytes);
  const double n = static_cast<double>(bytes.size());
  double entropy = 0.0;
  for (std::uint64_t count : h) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double byte_mean(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return 0.0;
  double sum = 0.0;
  for (std::uint8_t b : bytes) sum += b;
  return sum / static_cast<double>(bytes.size());
}

double serial_correlation(std::span<const std::uint8_t> bytes) {
  // Lag-1 autocorrelation in the style of the `ent` tool: correlate the
  // sequence with itself shifted by one, wrapping the last byte around.
  const std::size_t n = bytes.size();
  if (n < 2) return 0.0;
  double sum_x = 0.0, sum_x2 = 0.0, sum_xy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = bytes[i];
    const double y = bytes[(i + 1) % n];
    sum_x += x;
    sum_x2 += x * x;
    sum_xy += x * y;
  }
  const double nn = static_cast<double>(n);
  const double num = nn * sum_xy - sum_x * sum_x;
  const double den = nn * sum_x2 - sum_x * sum_x;
  if (den == 0.0) return 0.0;
  return num / den;
}

std::span<const std::uint8_t> as_bytes(std::span<const double> values) {
  return {reinterpret_cast<const std::uint8_t*>(values.data()),
          values.size_bytes()};
}

double byte_entropy(std::span<const double> values) {
  return byte_entropy(as_bytes(values));
}
double byte_mean(std::span<const double> values) {
  return byte_mean(as_bytes(values));
}
double serial_correlation(std::span<const double> values) {
  return serial_correlation(as_bytes(values));
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("rmse: size mismatch");
  }
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

NonfiniteCensus nonfinite_census(std::span<const double> values) {
  NonfiniteCensus census;
  for (double v : values) {
    switch (std::fpclassify(v)) {
      case FP_NAN:
        ++census.nans;
        break;
      case FP_INFINITE:
        ++(v > 0.0 ? census.pos_infs : census.neg_infs);
        break;
      case FP_SUBNORMAL:
        ++census.denormals;
        break;
      default:
        break;
    }
  }
  return census;
}

double finite_rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("finite_rmse: size mismatch");
  }
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a[i])) continue;
    if (!std::isfinite(b[i])) {
      return std::numeric_limits<double>::infinity();
    }
    const double d = a[i] - b[i];
    sum += d * d;
    ++count;
  }
  if (count == 0) return 0.0;
  return std::sqrt(sum / static_cast<double>(count));
}

double finite_max_abs_error(std::span<const double> a,
                            std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("finite_max_abs_error: size mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a[i])) continue;
    if (!std::isfinite(b[i])) {
      return std::numeric_limits<double>::infinity();
    }
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

double nrmse(std::span<const double> a, std::span<const double> b) {
  const double range = value_range(a);
  if (range == 0.0) return 0.0;
  return rmse(a, b) / range;
}

double psnr(std::span<const double> a, std::span<const double> b) {
  const double e = rmse(a, b);
  const double range = value_range(a);
  if (e == 0.0) return std::numeric_limits<double>::infinity();
  if (range == 0.0) return -std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(range / e);
}

double max_abs_error(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_error: size mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t points) {
  std::vector<CdfPoint> cdf;
  if (values.empty() || points == 0) return cdf;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted.front();
  const double hi = sorted.back();
  cdf.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    const double frac =
        points == 1 ? 1.0 : static_cast<double>(p) / static_cast<double>(points - 1);
    const double level = lo + frac * (hi - lo);
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), level);
    const double prob = static_cast<double>(it - sorted.begin()) /
                        static_cast<double>(sorted.size());
    cdf.push_back({level, prob});
  }
  return cdf;
}

double ks_distance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty() ? 0.0 : 1.0;
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(sa.size());
    const double fb = static_cast<double>(j) / static_cast<double>(sb.size());
    d = std::max(d, std::fabs(fa - fb));
  }
  return d;
}

ByteCharacteristics byte_characteristics(std::span<const double> values) {
  const auto bytes = as_bytes(values);
  return {byte_entropy(bytes), byte_mean(bytes), serial_correlation(bytes)};
}

double gradient_rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("gradient_rmse: size mismatch");
  }
  if (a.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    const double ga = a[i] - a[i - 1];
    const double gb = b[i] - b[i - 1];
    sum += (ga - gb) * (ga - gb);
  }
  return std::sqrt(sum / static_cast<double>(a.size() - 1));
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("quantile: empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q must be in [0, 1]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  // Linear interpolation between closest ranks.
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto low = static_cast<std::size_t>(position);
  const std::size_t high = std::min(low + 1, sorted.size() - 1);
  const double frac = position - static_cast<double>(low);
  return sorted[low] * (1.0 - frac) + sorted[high] * frac;
}

double decile_distance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("decile_distance: empty sample");
  }
  double distance = 0.0;
  for (int d = 1; d <= 9; ++d) {
    const double q = static_cast<double>(d) / 10.0;
    distance = std::max(distance, std::fabs(quantile(a, q) - quantile(b, q)));
  }
  return distance;
}

}  // namespace rmp::stats
