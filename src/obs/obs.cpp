#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>

namespace rmp::obs {
namespace {

// -1 = not yet resolved from the environment.
std::atomic<int> g_enabled{-1};

bool resolve_enabled_from_env() {
  const char* env = std::getenv("RMP_OBS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

struct SpanStat {
  std::uint64_t count = 0;
  double total = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
};

constexpr std::size_t kHistogramBuckets = 48;  // covers < 1us .. > 4000s

struct HistStat {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
  std::uint64_t buckets[kHistogramBuckets] = {};
};

std::size_t bucket_index(double value) {
  const double us = value * 1e6;
  if (!(us >= 1.0)) return 0;  // also routes NaN to bucket 0
  const auto b = static_cast<std::size_t>(std::log2(us)) + 1;
  return std::min(b, kHistogramBuckets - 1);
}

// Chain of nested spans on this thread, used to build "parent/child"
// paths.  Pool workers start their own chains.
thread_local ScopedSpan* tls_current_span = nullptr;

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; clamp (min of an empty span/histogram).
    out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

bool enabled() noexcept {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = resolve_enabled_from_env() ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map keeps snapshots and JSON in sorted order for free.
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, std::uint64_t, std::less<>> gauges;
  std::map<std::string, SpanStat, std::less<>> spans;
  std::map<std::string, HistStat, std::less<>> histograms;
};

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::add_counter(std::string_view name, std::uint64_t delta) {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  auto it = state.counters.find(name);
  if (it == state.counters.end()) {
    state.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::gauge_max(std::string_view name, std::uint64_t value) {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  auto it = state.gauges.find(name);
  if (it == state.gauges.end()) {
    state.gauges.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void Registry::record_span(std::string_view path, double seconds) {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  auto it = state.spans.find(path);
  if (it == state.spans.end()) {
    it = state.spans.emplace(std::string(path), SpanStat{}).first;
  }
  SpanStat& stat = it->second;
  ++stat.count;
  stat.total += seconds;
  stat.min = std::min(stat.min, seconds);
  stat.max = std::max(stat.max, seconds);
}

void Registry::observe(std::string_view name, double value) {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  auto it = state.histograms.find(name);
  if (it == state.histograms.end()) {
    it = state.histograms.emplace(std::string(name), HistStat{}).first;
  }
  HistStat& stat = it->second;
  ++stat.count;
  stat.sum += value;
  stat.min = std::min(stat.min, value);
  stat.max = std::max(stat.max, value);
  ++stat.buckets[bucket_index(value)];
}

std::vector<CounterSnapshot> Registry::counters() const {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  std::vector<CounterSnapshot> out;
  out.reserve(state.counters.size());
  for (const auto& [name, value] : state.counters) out.push_back({name, value});
  return out;
}

std::vector<CounterSnapshot> Registry::gauges() const {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  std::vector<CounterSnapshot> out;
  out.reserve(state.gauges.size());
  for (const auto& [name, value] : state.gauges) out.push_back({name, value});
  return out;
}

std::vector<SpanSnapshot> Registry::spans() const {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  std::vector<SpanSnapshot> out;
  out.reserve(state.spans.size());
  for (const auto& [name, stat] : state.spans) {
    out.push_back({name, stat.count, stat.total,
                   stat.count > 0 ? stat.min : 0.0, stat.max});
  }
  return out;
}

std::vector<HistogramSnapshot> Registry::histograms() const {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  std::vector<HistogramSnapshot> out;
  out.reserve(state.histograms.size());
  for (const auto& [name, stat] : state.histograms) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = stat.count;
    snap.sum = stat.sum;
    snap.min = stat.count > 0 ? stat.min : 0.0;
    snap.max = stat.max;
    std::size_t last = kHistogramBuckets;
    while (last > 0 && stat.buckets[last - 1] == 0) --last;
    snap.buckets.assign(stat.buckets, stat.buckets + last);
    out.push_back(std::move(snap));
  }
  return out;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  const auto it = state.counters.find(name);
  return it == state.counters.end() ? 0 : it->second;
}

void Registry::reset() {
  Impl& state = impl();
  std::lock_guard lock(state.mutex);
  state.counters.clear();
  state.gauges.clear();
  state.spans.clear();
  state.histograms.clear();
}

std::string Registry::to_json() const {
  // Snapshot first so the lock is not held while building the string.
  const auto counter_snaps = counters();
  const auto gauge_snaps = gauges();
  const auto span_snaps = spans();
  const auto hist_snaps = histograms();

  std::string out = "{\n  \"schema\": \"rmp-obs-v1\",\n  \"counters\": {";
  for (std::size_t i = 0; i < counter_snaps.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_json_string(out, counter_snaps[i].name);
    out += ": " + std::to_string(counter_snaps[i].value);
  }
  out += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauge_snaps.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_json_string(out, gauge_snaps[i].name);
    out += ": " + std::to_string(gauge_snaps[i].value);
  }
  out += "\n  },\n  \"spans\": {";
  for (std::size_t i = 0; i < span_snaps.size(); ++i) {
    const SpanSnapshot& s = span_snaps[i];
    out += i == 0 ? "\n    " : ",\n    ";
    append_json_string(out, s.name);
    out += ": {\"count\": " + std::to_string(s.count) + ", \"total_seconds\": ";
    append_json_number(out, s.total_seconds);
    out += ", \"min_seconds\": ";
    append_json_number(out, s.min_seconds);
    out += ", \"max_seconds\": ";
    append_json_number(out, s.max_seconds);
    out += "}";
  }
  out += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < hist_snaps.size(); ++i) {
    const HistogramSnapshot& h = hist_snaps[i];
    out += i == 0 ? "\n    " : ",\n    ";
    append_json_string(out, h.name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
    append_json_number(out, h.sum);
    out += ", \"min\": ";
    append_json_number(out, h.min);
    out += ", \"max\": ";
    append_json_number(out, h.max);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.buckets[b]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Free functions

void count(std::string_view name, std::uint64_t delta) {
  if (enabled()) Registry::global().add_counter(name, delta);
}

void gauge_max(std::string_view name, std::uint64_t value) {
  if (enabled()) Registry::global().gauge_max(name, value);
}

void observe(std::string_view name, double value) {
  if (enabled()) Registry::global().observe(name, value);
}

ScopedSpan::ScopedSpan(std::string_view name) : start_(now()) {
  if (!enabled()) return;
  active_ = true;
  parent_ = tls_current_span;
  if (parent_ != nullptr && !parent_->path_.empty()) {
    path_.reserve(parent_->path_.size() + 1 + name.size());
    path_ = parent_->path_;
    path_ += '/';
    path_ += name;
  } else {
    path_ = std::string(name);
  }
  tls_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  tls_current_span = parent_;
  // set_enabled(false) mid-span: drop the record, never half-record.
  if (enabled()) Registry::global().record_span(path_, elapsed_seconds());
}

// ---------------------------------------------------------------------------
// JSON parser

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The reports only emit control characters this way; anything in
          // the BMP is decoded as (up to 3-byte) UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue json_parse(std::string_view text) {
  return JsonParser(text).parse();
}

// ---------------------------------------------------------------------------
// Schema validation

namespace {

bool require(bool ok, const std::string& what, ValidationResult* result) {
  if (!ok && result->ok) {
    result->ok = false;
    result->error = what;
  }
  return ok;
}

bool is_number_object_map(const JsonValue& v) {
  if (v.type != JsonValue::Type::kObject) return false;
  return std::all_of(v.object.begin(), v.object.end(), [](const auto& kv) {
    return kv.second.type == JsonValue::Type::kNumber && kv.second.number >= 0;
  });
}

// Counter/gauge names are dot-separated lowercase tokens
// ("net.dedup.hits", "scrub.sections_repaired",
// "admission.bytes_rejected").  The dashboards key on exact names, so a
// report that smuggles in arbitrary strings fails validation instead of
// silently charting nothing.
bool is_metric_name(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (const char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool all_metric_names(const JsonValue& v) {
  return std::all_of(v.object.begin(), v.object.end(), [](const auto& kv) {
    return is_metric_name(kv.first);
  });
}

bool has_number(const JsonValue& v, std::string_view key) {
  const JsonValue* member = v.find(key);
  return member != nullptr && member->type == JsonValue::Type::kNumber;
}

bool has_string(const JsonValue& v, std::string_view key) {
  const JsonValue* member = v.find(key);
  return member != nullptr && member->type == JsonValue::Type::kString;
}

void validate_obs_v1(const JsonValue& v, ValidationResult* result) {
  const JsonValue* counters = v.find("counters");
  if (require(counters != nullptr && is_number_object_map(*counters),
              "\"counters\" must be an object of non-negative numbers",
              result)) {
    require(all_metric_names(*counters),
            "counter names must be dot-separated [a-z0-9_-] tokens "
            "(e.g. \"net.dedup.hits\", \"scrub.sections_repaired\", "
            "\"admission.bytes_rejected\")",
            result);
  }
  const JsonValue* gauges = v.find("gauges");
  if (require(gauges != nullptr && is_number_object_map(*gauges),
              "\"gauges\" must be an object of non-negative numbers",
              result)) {
    require(all_metric_names(*gauges),
            "gauge names must be dot-separated [a-z0-9_-] tokens", result);
  }

  const JsonValue* spans = v.find("spans");
  if (require(spans != nullptr && spans->type == JsonValue::Type::kObject,
              "\"spans\" must be an object", result)) {
    for (const auto& [name, span] : spans->object) {
      require(has_number(span, "count") && has_number(span, "total_seconds") &&
                  has_number(span, "min_seconds") &&
                  has_number(span, "max_seconds"),
              "span \"" + name +
                  "\" needs numeric count/total_seconds/min_seconds/"
                  "max_seconds",
              result);
    }
  }

  const JsonValue* histograms = v.find("histograms");
  if (require(histograms != nullptr &&
                  histograms->type == JsonValue::Type::kObject,
              "\"histograms\" must be an object", result)) {
    for (const auto& [name, hist] : histograms->object) {
      require(has_number(hist, "count") && has_number(hist, "sum") &&
                  has_number(hist, "min") && has_number(hist, "max"),
              "histogram \"" + name + "\" needs numeric count/sum/min/max",
              result);
      const JsonValue* buckets = hist.find("buckets");
      require(buckets != nullptr && buckets->type == JsonValue::Type::kArray &&
                  std::all_of(buckets->array.begin(), buckets->array.end(),
                              [](const JsonValue& b) {
                                return b.type == JsonValue::Type::kNumber &&
                                       b.number >= 0;
                              }),
              "histogram \"" + name + "\" needs a numeric \"buckets\" array",
              result);
    }
  }
}

void validate_bench_core_v1(const JsonValue& v, ValidationResult* result) {
  require(has_number(v, "scale"), "\"scale\" must be a number", result);
  const JsonValue* runs = v.find("runs");
  if (require(runs != nullptr && runs->type == JsonValue::Type::kArray &&
                  !runs->array.empty(),
              "\"runs\" must be a non-empty array", result)) {
    for (std::size_t i = 0; i < runs->array.size(); ++i) {
      const JsonValue& run = runs->array[i];
      require(has_string(run, "dataset") && has_string(run, "method") &&
                  has_string(run, "codec") && has_number(run, "ratio") &&
                  has_number(run, "rmse") && has_number(run, "max_error") &&
                  has_number(run, "encode_seconds") &&
                  has_number(run, "decode_seconds") &&
                  has_number(run, "original_bytes") &&
                  has_number(run, "compressed_bytes"),
              "runs[" + std::to_string(i) +
                  "] needs dataset/method/codec strings and "
                  "ratio/rmse/max_error/encode_seconds/decode_seconds/"
                  "original_bytes/compressed_bytes numbers",
              result);
    }
  }
  const JsonValue* obs_report = v.find("obs");
  if (require(obs_report != nullptr &&
                  obs_report->type == JsonValue::Type::kObject,
              "\"obs\" must be an embedded rmp-obs-v1 object", result)) {
    const JsonValue* schema = obs_report->find("schema");
    require(schema != nullptr && schema->type == JsonValue::Type::kString &&
                schema->string == "rmp-obs-v1",
            "\"obs\".\"schema\" must be \"rmp-obs-v1\"", result);
    validate_obs_v1(*obs_report, result);
  }
}

void validate_bench_seek_v1(const JsonValue& v, ValidationResult* result) {
  require(has_number(v, "scale"), "\"scale\" must be a number", result);
  require(has_number(v, "steps"), "\"steps\" must be a number", result);
  require(has_number(v, "step_bytes"), "\"step_bytes\" must be a number",
          result);
  const JsonValue* runs = v.find("runs");
  if (require(runs != nullptr && runs->type == JsonValue::Type::kArray &&
                  !runs->array.empty(),
              "\"runs\" must be a non-empty array", result)) {
    for (std::size_t i = 0; i < runs->array.size(); ++i) {
      const JsonValue& run = runs->array[i];
      require(has_number(run, "threads") && has_number(run, "seconds") &&
                  has_number(run, "throughput_bytes_per_second"),
              "runs[" + std::to_string(i) +
                  "] needs numeric threads/seconds/"
                  "throughput_bytes_per_second",
              result);
    }
  }
  const JsonValue* seek = v.find("single_step");
  if (require(seek != nullptr && seek->type == JsonValue::Type::kObject,
              "\"single_step\" must be an object", result)) {
    require(has_number(*seek, "step") && has_number(*seek, "seconds") &&
                has_number(*seek, "bytes_read"),
            "\"single_step\" needs numeric step/seconds/bytes_read", result);
  }
  const JsonValue* obs_report = v.find("obs");
  if (require(obs_report != nullptr &&
                  obs_report->type == JsonValue::Type::kObject,
              "\"obs\" must be an embedded rmp-obs-v1 object", result)) {
    validate_obs_v1(*obs_report, result);
  }
}

void validate_bench_codec_v1(const JsonValue& v, ValidationResult* result) {
  require(has_number(v, "scale"), "\"scale\" must be a number", result);
  require(has_number(v, "reps"), "\"reps\" must be a number", result);
  require(has_number(v, "huffman_encode_mb_s") &&
              has_number(v, "huffman_decode_mb_s") &&
              has_number(v, "lorenzo_quantize_melem_s") &&
              has_number(v, "lorenzo_dequantize_melem_s") &&
              has_number(v, "sz_encode_mb_s") && has_number(v, "sz_decode_mb_s"),
          "codec bench needs numeric huffman_encode_mb_s/huffman_decode_mb_s/"
          "lorenzo_quantize_melem_s/lorenzo_dequantize_melem_s/"
          "sz_encode_mb_s/sz_decode_mb_s",
          result);
  const JsonValue* obs_report = v.find("obs");
  if (require(obs_report != nullptr &&
                  obs_report->type == JsonValue::Type::kObject,
              "\"obs\" must be an embedded rmp-obs-v1 object", result)) {
    validate_obs_v1(*obs_report, result);
  }
}

}  // namespace

ValidationResult validate_stats_json(const JsonValue& value) {
  ValidationResult result;
  if (!require(value.type == JsonValue::Type::kObject,
               "document root must be an object", &result)) {
    return result;
  }
  const JsonValue* schema = value.find("schema");
  if (!require(schema != nullptr && schema->type == JsonValue::Type::kString,
               "\"schema\" string member is required", &result)) {
    return result;
  }
  result.schema = schema->string;
  if (schema->string == "rmp-obs-v1") {
    validate_obs_v1(value, &result);
  } else if (schema->string == "rmp-bench-core-v1") {
    validate_bench_core_v1(value, &result);
  } else if (schema->string == "rmp-bench-codec-v1") {
    validate_bench_codec_v1(value, &result);
  } else if (schema->string == "rmp-bench-seek-v1") {
    validate_bench_seek_v1(value, &result);
  } else {
    require(false, "unknown schema \"" + schema->string + "\"", &result);
  }
  return result;
}

ValidationResult validate_stats_json(std::string_view text) {
  try {
    return validate_stats_json(json_parse(text));
  } catch (const std::exception& e) {
    ValidationResult result;
    result.ok = false;
    result.error = e.what();
    return result;
  }
}

}  // namespace rmp::obs
