// Lightweight, zero-dependency observability: scoped steady-clock spans
// with thread-safe aggregation, named counters/gauges, log-bucketed
// latency histograms, and a JSON emitter (DESIGN.md §9).
//
// Everything funnels into a process-wide Registry.  Recording is gated by
// a single cached flag (the RMP_OBS environment variable; any value other
// than "0"/"off"/"false" enables it), so a disabled build pays one relaxed
// atomic load per event and never allocates.  Instrumentation observes --
// it must never change the bytes a pipeline produces, and the
// determinism suite asserts archives are byte-identical with RMP_OBS on
// and off.
//
// Span names form a taxonomy: a ScopedSpan nested inside another (on the
// same thread) records under "parent/child", so `rmpc --stats` can show
// e.g. "pipeline/encode/precondition/delta-compress".  Spans started on
// pool workers are roots of their own thread-local stacks.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rmp::obs {

using Clock = std::chrono::steady_clock;

/// Shared timing helpers (the one implementation of the seconds-since
/// pattern that used to be copy-pasted across core/pipeline and
/// core/staging).
inline Clock::time_point now() noexcept { return Clock::now(); }
inline double seconds_since(Clock::time_point start) noexcept {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Global recording gate, cached from RMP_OBS on first use.
bool enabled() noexcept;
/// Override the gate (tests, CLI).  Wins over the environment.
void set_enabled(bool on) noexcept;

// ---------------------------------------------------------------------------
// Snapshots (what the registry hands back / serializes)

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct SpanSnapshot {
  std::string name;  ///< full "parent/child" path
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Histogram over values >= 0 with log2 buckets of microseconds: bucket 0
/// holds values < 1us, bucket b holds [2^(b-1), 2^b) us.  Trailing empty
/// buckets are trimmed when snapshotted.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;
};

// ---------------------------------------------------------------------------
// Registry

class Registry {
 public:
  /// The process-wide instance every hot path records into.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void add_counter(std::string_view name, std::uint64_t delta);
  /// Gauge with max semantics (e.g. peak queue depth).
  void gauge_max(std::string_view name, std::uint64_t value);
  void record_span(std::string_view path, double seconds);
  void observe(std::string_view name, double value);

  std::vector<CounterSnapshot> counters() const;
  std::vector<CounterSnapshot> gauges() const;
  std::vector<SpanSnapshot> spans() const;
  std::vector<HistogramSnapshot> histograms() const;

  std::uint64_t counter_value(std::string_view name) const;

  void reset();

  /// Serialize the whole registry as a "rmp-obs-v1" JSON object
  /// (sorted keys, so output is stable for a given state).
  std::string to_json() const;

 private:
  struct Impl;
  Impl& impl() const;
};

// ---------------------------------------------------------------------------
// Convenience free functions (no-ops when disabled)

void count(std::string_view name, std::uint64_t delta = 1);
void gauge_max(std::string_view name, std::uint64_t value);
void observe(std::string_view name, double value);

/// RAII span.  The timer always runs (elapsed_seconds() is valid even when
/// recording is disabled, so callers can reuse it for their own stats);
/// only the registry write and the path bookkeeping are gated.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  double elapsed_seconds() const noexcept { return seconds_since(start_); }
  /// Full "parent/child" path; empty when recording was disabled at entry.
  const std::string& path() const noexcept { return path_; }

 private:
  Clock::time_point start_;
  std::string path_;
  ScopedSpan* parent_ = nullptr;
  bool active_ = false;
};

// ---------------------------------------------------------------------------
// Minimal JSON (parser + schema validation for the emitted reports)

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Strict-enough parser for the reports this module emits (objects,
/// arrays, strings with \-escapes, numbers, true/false/null).  Throws
/// std::runtime_error with an offset on malformed input.
JsonValue json_parse(std::string_view text);

struct ValidationResult {
  bool ok = true;
  std::string error;
  std::string schema;  ///< schema string found in the document
};

/// Validate a parsed document against the schemas this repo emits:
/// "rmp-obs-v1" (Registry::to_json), "rmp-bench-core-v1"
/// (bench/ext_obs_baseline), and "rmp-bench-seek-v1"
/// (bench/ext_seek_decode).  Unknown schema names fail.
ValidationResult validate_stats_json(const JsonValue& value);

/// Convenience: parse + validate raw text (parse errors land in .error).
ValidationResult validate_stats_json(std::string_view text);

}  // namespace rmp::obs
