#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace rmp::parallel {

ThreadPool::ThreadPool(std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  ready_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&body, i] { body(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace rmp::parallel
