#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "obs/obs.hpp"

namespace rmp::parallel {
namespace {

// Identifies, inside a task body, which pool the current thread belongs
// to.  parallel_for compares it against `this` to detect re-entrant calls.
thread_local ThreadPool* tls_worker_pool = nullptr;

// Pool installed by ScopedPoolOverride; read by the free-function helpers.
std::atomic<ThreadPool*> g_pool_override{nullptr};

// Target number of chunks per worker: enough slack that uneven chunk
// costs balance out, few enough that queue traffic stays negligible.
constexpr std::size_t kChunksPerWorker = 4;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
    depth = tasks_.size();
  }
  obs::count("pool.tasks_submitted");
  obs::gauge_max("pool.queue_depth", depth);
  ready_.notify_one();
  return future;
}

std::size_t ThreadPool::chunk_size(std::size_t count, std::size_t grain) const {
  const std::size_t target_chunks =
      std::max<std::size_t>(1, workers_.size() * kChunksPerWorker);
  const std::size_t balanced = (count + target_chunks - 1) / target_chunks;
  return std::max({std::size_t{1}, grain, balanced});
}

void ThreadPool::parallel_for_ranges(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (count == 0) return;
  const std::size_t chunk = chunk_size(count, grain);
  // Inline when parallelism cannot help (one worker / one chunk) or must
  // not be attempted (re-entrant call from one of our own workers, which
  // would deadlock once all workers block waiting on nested tasks).
  if (workers_.size() == 1 || chunk >= count || tls_worker_pool == this) {
    body(0, count);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve((count + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    futures.push_back(submit([&body, begin, end] { body(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  parallel_for_ranges(
      count,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      grain);
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const obs::Clock::time_point start = obs::now();
    task();
    obs::observe("pool.task_seconds", obs::seconds_since(start));
    obs::count("pool.tasks_completed");
  }
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("RMP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

ThreadPool& active_pool() {
  if (ThreadPool* override_pool = g_pool_override.load(std::memory_order_acquire)) {
    return *override_pool;
  }
  return global_pool();
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  active_pool().parallel_for(count, body, grain);
}

void parallel_for_ranges(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  active_pool().parallel_for_ranges(count, body, grain);
}

std::size_t active_thread_count() { return active_pool().worker_count(); }

ScopedPoolOverride::ScopedPoolOverride(ThreadPool& pool)
    : previous_(g_pool_override.exchange(&pool, std::memory_order_acq_rel)) {}

ScopedPoolOverride::~ScopedPoolOverride() {
  g_pool_override.store(previous_, std::memory_order_release);
}

}  // namespace rmp::parallel
