#include "parallel/decomposition.hpp"

#include <stdexcept>

namespace rmp::parallel {

CartesianDecomposition::CartesianDecomposition(
    std::array<std::size_t, 3> global, std::array<int, 3> procs)
    : global_(global), procs_(procs) {
  for (std::size_t d = 0; d < 3; ++d) {
    if (procs_[d] <= 0) {
      throw std::invalid_argument("CartesianDecomposition: procs must be >= 1");
    }
    if (static_cast<std::size_t>(procs_[d]) > global_[d]) {
      throw std::invalid_argument(
          "CartesianDecomposition: more processors than grid points");
    }
  }
}

int CartesianDecomposition::world_size() const noexcept {
  return procs_[0] * procs_[1] * procs_[2];
}

std::array<int, 3> CartesianDecomposition::coords_of(int rank) const {
  if (rank < 0 || rank >= world_size()) {
    throw std::out_of_range("coords_of: rank out of range");
  }
  // Rank layout: x slowest, z fastest (row-major over the processor grid).
  const int z = rank % procs_[2];
  const int y = (rank / procs_[2]) % procs_[1];
  const int x = rank / (procs_[1] * procs_[2]);
  return {x, y, z};
}

int CartesianDecomposition::rank_of(std::array<int, 3> coords) const {
  for (std::size_t d = 0; d < 3; ++d) {
    if (coords[d] < 0 || coords[d] >= procs_[d]) {
      throw std::out_of_range("rank_of: coordinate out of range");
    }
  }
  return (coords[0] * procs_[1] + coords[1]) * procs_[2] + coords[2];
}

Extent CartesianDecomposition::extent(std::size_t dim, int coord) const {
  const std::size_t n = global_[dim];
  const std::size_t p = static_cast<std::size_t>(procs_[dim]);
  const std::size_t c = static_cast<std::size_t>(coord);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  // The first `extra` processors get one extra point.
  const std::size_t begin = c * base + std::min(c, extra);
  const std::size_t count = base + (c < extra ? 1 : 0);
  return {begin, begin + count};
}

std::array<Extent, 3> CartesianDecomposition::local_box(int rank) const {
  const auto coords = coords_of(rank);
  return {extent(0, coords[0]), extent(1, coords[1]), extent(2, coords[2])};
}

int CartesianDecomposition::neighbor(int rank, std::size_t dim, int step) const {
  auto coords = coords_of(rank);
  const int target = coords[dim] + step;
  if (target < 0 || target >= procs_[dim]) return -1;
  coords[dim] = target;
  return rank_of(coords);
}

}  // namespace rmp::parallel
