// In-process message-passing runtime: the library's stand-in for MPI.
//
// Ranks are std::threads sharing a World; communication is by value
// (copied byte buffers), so the programming model matches the
// distributed-memory discipline of the paper's Heat3d implementation:
// point-to-point send/recv with tags, broadcast, gather, allreduce and a
// barrier.  Algorithm 1 (one-base mid-plane broadcast + delta gather) runs
// verbatim on this runtime.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace rmp::parallel {

class Communicator;

/// Spawn `world_size` ranks, run `body` on each, join them all.  Any
/// exception thrown by a rank is captured and rethrown (first one wins)
/// after every thread has joined.
void run_ranks(int world_size,
               const std::function<void(Communicator&)>& body);

namespace detail {

struct Message {
  int source;
  int tag;
  std::vector<std::uint8_t> payload;
};

class World {
 public:
  explicit World(int size);

  void post(int dest, Message message);
  Message match(int self, int source, int tag);

  void barrier();

  int size() const noexcept { return size_; }

 private:
  int size_;
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<Message> messages;
  };
  std::vector<Mailbox> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace detail

class Communicator {
 public:
  Communicator(detail::World& world, int rank) : world_(world), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return world_.size(); }

  /// Blocking point-to-point, matched by (source, tag).
  void send_bytes(int dest, int tag, std::span<const std::uint8_t> bytes);
  std::vector<std::uint8_t> recv_bytes(int source, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               {reinterpret_cast<const std::uint8_t*>(values.data()),
                values.size_bytes()});
  }

  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv_bytes(source, tag);
    if (bytes.size() % sizeof(T) != 0) {
      throw std::runtime_error("recv: payload not a multiple of sizeof(T)");
    }
    std::vector<T> values(bytes.size() / sizeof(T));
    std::memcpy(values.data(), bytes.data(), bytes.size());
    return values;
  }

  void barrier() { world_.barrier(); }

  /// Root's buffer is copied to every rank (buffer sizes must match).
  template <typename T>
  void broadcast(std::vector<T>& data, int root) {
    constexpr int kTag = -1001;
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r != root) send<T>(r, kTag, data);
      }
    } else {
      data = recv<T>(root, kTag);
    }
  }

  /// Concatenate every rank's contribution at the root, in rank order.
  /// Non-roots receive an empty vector.
  template <typename T>
  std::vector<T> gather(std::span<const T> local, int root) {
    constexpr int kTag = -1002;
    if (rank_ == root) {
      std::vector<T> all;
      for (int r = 0; r < size(); ++r) {
        if (r == root) {
          all.insert(all.end(), local.begin(), local.end());
        } else {
          const auto part = recv<T>(r, kTag);
          all.insert(all.end(), part.begin(), part.end());
        }
      }
      return all;
    }
    send<T>(root, kTag, local);
    return {};
  }

  double allreduce_sum(double value);
  double allreduce_max(double value);

 private:
  detail::World& world_;
  int rank_;
};

}  // namespace rmp::parallel
