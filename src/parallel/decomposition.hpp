// Cartesian domain decomposition: maps a global 1/2/3-D grid onto a
// processor grid, with remainder cells spread over the leading ranks
// (block distribution).  Used by the parallel Heat3d solver and by the
// multi-base preconditioner, whose reduced model is per-subdomain.
#pragma once

#include <array>
#include <cstddef>

namespace rmp::parallel {

struct Extent {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive
  std::size_t count() const noexcept { return end - begin; }
};

class CartesianDecomposition {
 public:
  /// global = grid points per dimension; procs = processor grid (product is
  /// the world size).  Dimensions not decomposed should use procs = 1.
  CartesianDecomposition(std::array<std::size_t, 3> global,
                         std::array<int, 3> procs);

  int world_size() const noexcept;

  std::array<int, 3> coords_of(int rank) const;
  int rank_of(std::array<int, 3> coords) const;

  /// Local extent of dimension `dim` for the processor at `coord` along it.
  Extent extent(std::size_t dim, int coord) const;

  /// All three extents for a rank.
  std::array<Extent, 3> local_box(int rank) const;

  /// Neighbor rank one step along `dim` (+1 or -1); -1 if at the boundary.
  int neighbor(int rank, std::size_t dim, int step) const;

  std::array<std::size_t, 3> global() const noexcept { return global_; }
  std::array<int, 3> procs() const noexcept { return procs_; }

 private:
  std::array<std::size_t, 3> global_;
  std::array<int, 3> procs_;
};

}  // namespace rmp::parallel
