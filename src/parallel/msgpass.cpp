#include "parallel/msgpass.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace rmp::parallel {

namespace detail {

World::World(int size) : size_(size), mailboxes_(size) {
  if (size <= 0) throw std::invalid_argument("World: size must be positive");
}

void World::post(int dest, Message message) {
  if (dest < 0 || dest >= size_) {
    throw std::invalid_argument("post: destination rank out of range");
  }
  Mailbox& box = mailboxes_[dest];
  {
    std::lock_guard lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.ready.notify_all();
}

Message World::match(int self, int source, int tag) {
  Mailbox& box = mailboxes_[self];
  std::unique_lock lock(box.mutex);
  for (;;) {
    const auto it = std::find_if(
        box.messages.begin(), box.messages.end(), [&](const Message& m) {
          return m.source == source && m.tag == tag;
        });
    if (it != box.messages.end()) {
      Message message = std::move(*it);
      box.messages.erase(it);
      return message;
    }
    box.ready.wait(lock);
  }
}

void World::barrier() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
  }
}

}  // namespace detail

void Communicator::send_bytes(int dest, int tag,
                              std::span<const std::uint8_t> bytes) {
  world_.post(dest, {rank_, tag, {bytes.begin(), bytes.end()}});
}

std::vector<std::uint8_t> Communicator::recv_bytes(int source, int tag) {
  return world_.match(rank_, source, tag).payload;
}

double Communicator::allreduce_sum(double value) {
  std::vector<double> mine{value};
  auto all = gather<double>(mine, 0);
  double result = 0.0;
  if (rank_ == 0) {
    for (double v : all) result += v;
  }
  std::vector<double> out{result};
  broadcast(out, 0);
  return out[0];
}

double Communicator::allreduce_max(double value) {
  std::vector<double> mine{value};
  auto all = gather<double>(mine, 0);
  double result = value;
  if (rank_ == 0) {
    for (double v : all) result = std::max(result, v);
  }
  std::vector<double> out{result};
  broadcast(out, 0);
  return out[0];
}

void run_ranks(int world_size,
               const std::function<void(Communicator&)>& body) {
  detail::World world(world_size);
  std::vector<std::thread> threads;
  threads.reserve(world_size);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&world, &body, &error_mutex, &first_error, r] {
      Communicator comm(world, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rmp::parallel
