// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used to compress independent subdomains concurrently (the N-to-N
// pattern of Table IV).  On a single-core host it degrades gracefully to
// near-serial execution.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rmp::parallel {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run body(i) for i in [0, count), blocking until all complete.  Any
  /// exception from a body is rethrown (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

}  // namespace rmp::parallel
