// Fixed-size thread pool with a chunked parallel_for helper, plus a
// process-wide shared pool (`global_pool()`).
//
// Used to run independent numeric work concurrently (the N-to-N pattern
// of Table IV, per-block preconditioner stages, per-row linear algebra).
// Work handed to parallel_for is split into contiguous chunks of at least
// `grain` indices -- one task per chunk, not one task per index -- so the
// queue never holds more than a few tasks per worker.
//
// Re-entrancy rule: a body running on a pool worker may call parallel_for
// on the same pool; the nested call detects this and runs inline
// (serially) instead of enqueuing, which would deadlock once every worker
// blocked waiting for tasks only they could run.
//
// On a single-core host everything degrades gracefully to inline serial
// execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rmp::parallel {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run body(i) for i in [0, count), blocking until all complete.  Indices
  /// are grouped into contiguous chunks of at least `grain` (grain == 0
  /// picks one automatically) so at most a few tasks per worker are ever
  /// queued.  Any exception from a body is rethrown (first one wins); the
  /// pool stays usable afterwards.  Runs inline when the pool has a single
  /// worker, when only one chunk results, or when called from one of this
  /// pool's own workers (re-entrancy rule above).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// Range flavour: body(begin, end) over disjoint chunks covering
  /// [0, count).  Same chunking/re-entrancy/exception semantics as
  /// parallel_for, without the per-index std::function call overhead.
  void parallel_for_ranges(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t grain = 0);

 private:
  void worker_loop();
  std::size_t chunk_size(std::size_t count, std::size_t grain) const;

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

/// Worker count for the shared pool: the RMP_THREADS environment variable
/// when set to a positive integer, otherwise hardware_concurrency (min 1).
std::size_t default_thread_count();

/// Lazily-initialized process-wide pool sized by default_thread_count().
/// Callers share it instead of paying thread spawn/join per call.
ThreadPool& global_pool();

/// parallel_for / parallel_for_ranges on the *active* pool: the pool
/// installed by ScopedPoolOverride when one is in scope, else global_pool().
/// These are what the numeric hot paths call.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 0);
void parallel_for_ranges(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain = 0);

/// The pool the free-function helpers route to: the ScopedPoolOverride
/// pool when one is installed, else global_pool().  Exposed so callers
/// that submit() background tasks (e.g. core::ChunkFetcher's prefetch)
/// land them on the same pool a thread-sweeping bench or test selected.
ThreadPool& active_pool();

/// Worker count of the active pool (override if installed, else the
/// global pool's size) -- callers can use it to pick serial cutoffs.
std::size_t active_thread_count();

/// RAII override routing the free-function helpers (and therefore every
/// library hot path) to a specific pool.  Intended for benchmarks and
/// tests that sweep worker counts; overrides are process-global and must
/// not be nested concurrently from different threads.
class ScopedPoolOverride {
 public:
  explicit ScopedPoolOverride(ThreadPool& pool);
  ~ScopedPoolOverride();

  ScopedPoolOverride(const ScopedPoolOverride&) = delete;
  ScopedPoolOverride& operator=(const ScopedPoolOverride&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace rmp::parallel
