// Column statistics used by the PCA preconditioner: per-column means and
// the n x n sample covariance of the columns of an m x n data matrix.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace rmp::la {

/// Arithmetic mean of each column of `a` (size = a.cols()).
std::vector<double> column_means(const Matrix& a);

/// Subtract `means[j]` from every entry of column j, in place.
void center_columns(Matrix& a, const std::vector<double>& means);

/// Add `means[j]` back onto every entry of column j, in place.
void uncenter_columns(Matrix& a, const std::vector<double>& means);

/// Sample covariance C = X_c^T X_c / (m - 1) of the (centered internally)
/// columns of `a`.  For m == 1 the divisor falls back to 1.
Matrix covariance(const Matrix& a);

}  // namespace rmp::la
