#include "la/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rmp::la {
namespace {

double off_diagonal_norm(const Matrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

// One Jacobi rotation zeroing a(p,q); updates A (both sides) and the
// accumulated eigenvector basis.  `vt` holds V transposed, so the V
// column pair (p,q) is two contiguous rows and the accumulation streams
// over cache lines; the A row-pair update is contiguous as well, leaving
// only the unavoidable strided column-pair walk.  Operand order matches
// the historical code exactly, so the result is bit-identical.
void rotate(Matrix& a, Matrix& vt, std::size_t p, std::size_t q) {
  const double apq = a(p, q);
  if (apq == 0.0) return;
  const double app = a(p, p);
  const double aqq = a(q, q);
  const double tau = (aqq - app) / (2.0 * apq);
  // Smaller-magnitude root of t^2 + 2*tau*t - 1 = 0 for stability.
  const double t = (tau >= 0.0) ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;

  const std::size_t n = a.rows();
  double* base = a.flat().data();
  double* cp = base + p;
  double* cq = base + q;
  for (std::size_t k = 0; k < n; ++k, cp += n, cq += n) {
    const double akp = *cp;
    const double akq = *cq;
    *cp = c * akp - s * akq;
    *cq = s * akp + c * akq;
  }
  double* rp = base + p * n;
  double* rq = base + q * n;
  for (std::size_t k = 0; k < n; ++k) {
    const double apk = rp[k];
    const double aqk = rq[k];
    rp[k] = c * apk - s * aqk;
    rq[k] = s * apk + c * aqk;
  }
  double* vp = vt.row(p).data();
  double* vq = vt.row(q).data();
  for (std::size_t k = 0; k < n; ++k) {
    const double vkp = vp[k];
    const double vkq = vq[k];
    vp[k] = c * vkp - s * vkq;
    vq[k] = s * vkp + c * vkq;
  }
}

}  // namespace

EigenDecomposition jacobi_eigen(const Matrix& input, const JacobiOptions& opts) {
  if (input.rows() != input.cols()) {
    throw std::invalid_argument("jacobi_eigen: matrix must be square");
  }
  const std::size_t n = input.rows();
  Matrix a = input;
  // V is accumulated transposed (identity is symmetric, so the seed needs
  // no transpose); rotate() updates its column pairs as contiguous rows.
  Matrix vt = Matrix::identity(n);

  const double norm = a.frobenius_norm();
  const double threshold = opts.tolerance * std::max(norm, 1e-300);

  double off = off_diagonal_norm(a);
  for (std::size_t sweep = 0; sweep < opts.max_sweeps && off > threshold;
       ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        rotate(a, vt, p, q);
      }
    }
    off = off_diagonal_norm(a);
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) > a(y, y); });

  EigenDecomposition out;
  out.converged = off <= threshold;
  out.off_diagonal_residual = off / std::max(norm, 1e-300);
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = a(order[j], order[j]);
    const double* vrow = vt.row(order[j]).data();
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors(i, j) = vrow[i];
    }
  }
  return out;
}

}  // namespace rmp::la
