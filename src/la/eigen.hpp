// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// The PCA preconditioner diagonalizes the (small, n x n) covariance matrix
// of the data columns.  Cyclic Jacobi is the right tool at that size: it is
// unconditionally stable, needs no pivot heuristics, and converges
// quadratically once the off-diagonal mass is small.
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace rmp::la {

struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

struct JacobiOptions {
  std::size_t max_sweeps = 64;
  /// Converged when the off-diagonal Frobenius norm falls below
  /// tolerance * ||A||_F.
  double tolerance = 1e-12;
};

/// Decompose a symmetric matrix A = V diag(values) V^T.
/// Throws std::invalid_argument if A is not square.
EigenDecomposition jacobi_eigen(const Matrix& a, const JacobiOptions& opts = {});

}  // namespace rmp::la
