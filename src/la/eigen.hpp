// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// The PCA preconditioner diagonalizes the (small, n x n) covariance matrix
// of the data columns.  Cyclic Jacobi is the right tool at that size: it is
// unconditionally stable, needs no pivot heuristics, and converges
// quadratically once the off-diagonal mass is small.
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace rmp::la {

struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
  /// False when the sweep budget ran out before the off-diagonal mass fell
  /// under tolerance.  A non-converged basis is half-rotated junk: callers
  /// (PCA, Tucker) must not consume it silently -- the guard layer demotes
  /// to a cheaper model instead.
  bool converged = true;
  /// Off-diagonal Frobenius norm at exit, relative to ||A||_F (0 for a
  /// diagonal input); compare against JacobiOptions::tolerance.
  double off_diagonal_residual = 0.0;
};

struct JacobiOptions {
  std::size_t max_sweeps = 64;
  /// Converged when the off-diagonal Frobenius norm falls below
  /// tolerance * ||A||_F.
  double tolerance = 1e-12;
};

/// Decompose a symmetric matrix A = V diag(values) V^T.
/// Throws std::invalid_argument if A is not square.
EigenDecomposition jacobi_eigen(const Matrix& a, const JacobiOptions& opts = {});

}  // namespace rmp::la
