#include "la/sparse.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace rmp::la {

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, double drop_below) {
  CsrMatrix csr;
  csr.rows_ = dense.rows();
  csr.cols_ = dense.cols();
  csr.row_offsets_.resize(csr.rows_ + 1, 0);
  for (std::size_t i = 0; i < csr.rows_; ++i) {
    const auto row = dense.row(i);
    for (std::size_t j = 0; j < csr.cols_; ++j) {
      if (std::fabs(row[j]) > drop_below) {
        csr.values_.push_back(row[j]);
        csr.col_indices_.push_back(static_cast<std::uint32_t>(j));
      }
    }
    csr.row_offsets_[i + 1] = csr.values_.size();
  }
  return csr;
}

Matrix CsrMatrix::to_dense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::uint64_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      dense(i, col_indices_[p]) = values_[p];
    }
  }
  return dense;
}

std::size_t CsrMatrix::storage_bytes() const noexcept {
  return values_.size() * sizeof(double) +
         col_indices_.size() * sizeof(std::uint32_t) +
         row_offsets_.size() * sizeof(std::uint64_t);
}

std::vector<std::uint8_t> CsrMatrix::serialize() const {
  std::vector<std::uint8_t> out;
  auto append = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  };
  const std::uint64_t header[3] = {rows_, cols_, values_.size()};
  append(header, sizeof(header));
  append(row_offsets_.data(), row_offsets_.size() * sizeof(std::uint64_t));
  append(col_indices_.data(), col_indices_.size() * sizeof(std::uint32_t));
  append(values_.data(), values_.size() * sizeof(double));
  return out;
}

CsrMatrix CsrMatrix::deserialize(const std::uint8_t* data, std::size_t size) {
  auto need = [&](std::size_t offset, std::size_t n) {
    if (offset + n > size) {
      throw std::runtime_error("CsrMatrix::deserialize: truncated buffer");
    }
  };
  std::uint64_t header[3];
  need(0, sizeof(header));
  std::memcpy(header, data, sizeof(header));
  CsrMatrix csr;
  csr.rows_ = header[0];
  csr.cols_ = header[1];
  const std::size_t nnz = header[2];
  std::size_t off = sizeof(header);

  csr.row_offsets_.resize(csr.rows_ + 1);
  need(off, csr.row_offsets_.size() * sizeof(std::uint64_t));
  std::memcpy(csr.row_offsets_.data(), data + off,
              csr.row_offsets_.size() * sizeof(std::uint64_t));
  off += csr.row_offsets_.size() * sizeof(std::uint64_t);

  csr.col_indices_.resize(nnz);
  need(off, nnz * sizeof(std::uint32_t));
  if (nnz > 0) {
    std::memcpy(csr.col_indices_.data(), data + off,
                nnz * sizeof(std::uint32_t));
  }
  off += nnz * sizeof(std::uint32_t);

  csr.values_.resize(nnz);
  need(off, nnz * sizeof(double));
  if (nnz > 0) {
    std::memcpy(csr.values_.data(), data + off, nnz * sizeof(double));
  }
  return csr;
}

}  // namespace rmp::la
