// Dense row-major matrix of doubles.
//
// This is the workhorse container for the PCA/SVD preconditioners.  It is
// deliberately small: the library only needs construction, element access,
// transpose, products, and a handful of norms.  No expression templates --
// the matrices involved in preconditioning have a small column count
// (the z-extent of a field), so clarity wins over fusion tricks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rmp::la {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, every element set to `init`.
  Matrix(std::size_t rows, std::size_t cols, double init = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Adopt an existing flat row-major buffer (must hold rows*cols values).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Row i as a contiguous span (row-major layout guarantee).
  std::span<double> row(std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }

  std::span<double> flat() noexcept { return data_; }
  std::span<const double> flat() const noexcept { return data_; }

  Matrix transposed() const;

  /// this * other  (dimensions must agree).
  Matrix operator*(const Matrix& other) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix& operator*=(double s);

  double frobenius_norm() const;
  /// max_ij |a_ij - b_ij|; matrices must have identical shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a column of `a`.
double column_norm(const Matrix& a, std::size_t j);

/// Dot product of columns j and k of `a`.
double column_dot(const Matrix& a, std::size_t j, std::size_t k);

}  // namespace rmp::la
