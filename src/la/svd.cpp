#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rmp::la {
namespace {

// One-sided Jacobi: rotate columns j,k of `a` (and of the accumulating `v`)
// so that they become orthogonal.  Returns the off-orthogonality |a_j.a_k|
// measured before rotation, normalized by the column norms.
double orthogonalize_pair(Matrix& a, Matrix& v, std::size_t j, std::size_t k) {
  const double ajk = column_dot(a, j, k);
  const double ajj = column_dot(a, j, j);
  const double akk = column_dot(a, k, k);
  const double denom = std::sqrt(ajj * akk);
  if (denom == 0.0 || ajk == 0.0) return 0.0;

  const double off = std::fabs(ajk) / denom;
  const double tau = (akk - ajj) / (2.0 * ajk);
  const double t = (tau >= 0.0) ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;

  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double aij = a(i, j);
    const double aik = a(i, k);
    a(i, j) = c * aij - s * aik;
    a(i, k) = s * aij + c * aik;
  }
  for (std::size_t i = 0; i < v.rows(); ++i) {
    const double vij = v(i, j);
    const double vik = v(i, k);
    v(i, j) = c * vij - s * vik;
    v(i, k) = s * vij + c * vik;
  }
  return off;
}

}  // namespace

SvdResult jacobi_svd(const Matrix& input, const SvdOptions& opts) {
  SvdResult out;
  Matrix a = input;
  if (a.rows() < a.cols()) {
    a = a.transposed();
    out.transposed = true;
  }
  const std::size_t n = a.cols();
  Matrix v = Matrix::identity(n);

  bool settled = n < 2;
  for (std::size_t sweep = 0; sweep < opts.max_sweeps && !settled; ++sweep) {
    double max_off = 0.0;
    for (std::size_t j = 0; j + 1 < n; ++j) {
      for (std::size_t k = j + 1; k < n; ++k) {
        max_off = std::max(max_off, orthogonalize_pair(a, v, j, k));
      }
    }
    settled = max_off <= opts.tolerance;
  }

  // Orthogonality at exit, for the convergence report.  When the loop
  // settled on its own criterion, trust it (the post-rotation state is at
  // least as orthogonal); when the sweep budget ran out, re-measure.
  double residual = 0.0;
  for (std::size_t j = 0; j + 1 < n; ++j) {
    const double ajj = column_dot(a, j, j);
    for (std::size_t k = j + 1; k < n; ++k) {
      const double akk = column_dot(a, k, k);
      const double denom = std::sqrt(ajj * akk);
      if (denom == 0.0) continue;
      residual = std::max(residual, std::fabs(column_dot(a, j, k)) / denom);
    }
  }
  out.max_off_orthogonality = residual;
  out.converged = settled || residual <= opts.tolerance;

  // Column norms are the singular values; normalized columns form U.
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) sigma[j] = column_norm(a, j);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  out.sigma.resize(n);
  out.u = Matrix(a.rows(), n);
  out.v = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.sigma[j] = sigma[src];
    const double inv = (sigma[src] > 0.0) ? 1.0 / sigma[src] : 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) out.u(i, j) = a(i, src) * inv;
    for (std::size_t i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }
  return out;
}

Matrix svd_reconstruct(const SvdResult& svd, std::size_t k) {
  const std::size_t n = svd.sigma.size();
  if (k == 0 || k > n) k = n;
  const std::size_t m = svd.u.rows();

  // A ≈ sum_{j<k} sigma_j * u_j * v_j^T
  Matrix a(m, svd.v.rows());
  for (std::size_t j = 0; j < k; ++j) {
    const double s = svd.sigma[j];
    if (s == 0.0) continue;
    for (std::size_t i = 0; i < m; ++i) {
      const double us = svd.u(i, j) * s;
      if (us == 0.0) continue;
      for (std::size_t c = 0; c < svd.v.rows(); ++c) {
        a(i, c) += us * svd.v(c, j);
      }
    }
  }
  return svd.transposed ? a.transposed() : a;
}

}  // namespace rmp::la
