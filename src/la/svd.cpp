#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rmp::la {
namespace {

// The sweep works on A^T and V^T: a *column* pair of A/V becomes a pair of
// contiguous rows, so every dot product and plane rotation below streams
// over cache lines instead of striding by the column count.  The
// arithmetic (operands, operation order, accumulation order) is exactly
// the historical column-wise code's, so results are bit-identical.

// Dot product of rows j and k, accumulated in index order (matches
// column_dot on the untransposed matrix).
double row_dot(const Matrix& at, std::size_t j, std::size_t k) {
  const double* a = at.row(j).data();
  const double* b = at.row(k).data();
  double sum = 0.0;
  for (std::size_t i = 0; i < at.cols(); ++i) sum += a[i] * b[i];
  return sum;
}

// One-sided Jacobi on the transposed working set: rotate rows j,k of `at`
// (and of the accumulating `vt`) so the corresponding columns of A become
// orthogonal.  Returns the off-orthogonality |a_j.a_k| measured before
// rotation, normalized by the column norms.
double orthogonalize_pair(Matrix& at, Matrix& vt, std::size_t j,
                          std::size_t k) {
  const double ajk = row_dot(at, j, k);
  const double ajj = row_dot(at, j, j);
  const double akk = row_dot(at, k, k);
  const double denom = std::sqrt(ajj * akk);
  if (denom == 0.0 || ajk == 0.0) return 0.0;

  const double off = std::fabs(ajk) / denom;
  const double tau = (akk - ajj) / (2.0 * ajk);
  const double t = (tau >= 0.0) ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;

  double* aj = at.row(j).data();
  double* ak = at.row(k).data();
  for (std::size_t i = 0; i < at.cols(); ++i) {
    const double aij = aj[i];
    const double aik = ak[i];
    aj[i] = c * aij - s * aik;
    ak[i] = s * aij + c * aik;
  }
  double* vj = vt.row(j).data();
  double* vk = vt.row(k).data();
  for (std::size_t i = 0; i < vt.cols(); ++i) {
    const double vij = vj[i];
    const double vik = vk[i];
    vj[i] = c * vij - s * vik;
    vk[i] = s * vij + c * vik;
  }
  return off;
}

}  // namespace

SvdResult jacobi_svd(const Matrix& input, const SvdOptions& opts) {
  SvdResult out;
  Matrix a = input;
  if (a.rows() < a.cols()) {
    a = a.transposed();
    out.transposed = true;
  }
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  // Transposed working copies: row j of `at` is column j of A.
  Matrix at = a.transposed();
  Matrix vt = Matrix::identity(n);

  bool settled = n < 2;
  for (std::size_t sweep = 0; sweep < opts.max_sweeps && !settled; ++sweep) {
    double max_off = 0.0;
    for (std::size_t j = 0; j + 1 < n; ++j) {
      for (std::size_t k = j + 1; k < n; ++k) {
        max_off = std::max(max_off, orthogonalize_pair(at, vt, j, k));
      }
    }
    settled = max_off <= opts.tolerance;
  }

  // Orthogonality at exit, for the convergence report.  When the loop
  // settled on its own criterion, trust it (the post-rotation state is at
  // least as orthogonal); when the sweep budget ran out, re-measure.
  double residual = 0.0;
  for (std::size_t j = 0; j + 1 < n; ++j) {
    const double ajj = row_dot(at, j, j);
    for (std::size_t k = j + 1; k < n; ++k) {
      const double akk = row_dot(at, k, k);
      const double denom = std::sqrt(ajj * akk);
      if (denom == 0.0) continue;
      residual = std::max(residual, std::fabs(row_dot(at, j, k)) / denom);
    }
  }
  out.max_off_orthogonality = residual;
  out.converged = settled || residual <= opts.tolerance;

  // Column norms are the singular values; normalized columns form U.
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) sigma[j] = std::sqrt(row_dot(at, j, j));

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  out.sigma.resize(n);
  // Assemble U^T / V^T row-contiguously, then transpose once.
  Matrix ut(n, m);
  Matrix vout_t(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.sigma[j] = sigma[src];
    const double inv = (sigma[src] > 0.0) ? 1.0 / sigma[src] : 0.0;
    const double* arow = at.row(src).data();
    double* urow = ut.row(j).data();
    for (std::size_t i = 0; i < m; ++i) urow[i] = arow[i] * inv;
    const double* vrow = vt.row(src).data();
    double* orow = vout_t.row(j).data();
    for (std::size_t i = 0; i < n; ++i) orow[i] = vrow[i];
  }
  out.u = ut.transposed();
  out.v = vout_t.transposed();
  return out;
}

Matrix svd_reconstruct(const SvdResult& svd, std::size_t k) {
  const std::size_t n = svd.sigma.size();
  if (k == 0 || k > n) k = n;
  const std::size_t m = svd.u.rows();

  // A ≈ sum_{j<k} sigma_j * u_j * v_j^T
  Matrix a(m, svd.v.rows());
  for (std::size_t j = 0; j < k; ++j) {
    const double s = svd.sigma[j];
    if (s == 0.0) continue;
    for (std::size_t i = 0; i < m; ++i) {
      const double us = svd.u(i, j) * s;
      if (us == 0.0) continue;
      for (std::size_t c = 0; c < svd.v.rows(); ++c) {
        a(i, c) += us * svd.v(c, j);
      }
    }
  }
  return svd.transposed ? a.transposed() : a;
}

}  // namespace rmp::la
