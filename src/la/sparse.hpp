// Compressed Sparse Row storage for the thresholded Haar coefficient
// matrices produced by the Wavelet preconditioner (paper §V-A.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace rmp::la {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from a dense matrix, keeping entries with |value| > drop_below.
  static CsrMatrix from_dense(const Matrix& dense, double drop_below = 0.0);

  Matrix to_dense() const;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  /// Bytes needed to store the CSR triplet arrays (this is the "size of the
  /// reduced representation" the paper charges Wavelet with in Fig. 9).
  std::size_t storage_bytes() const noexcept;

  const std::vector<double>& values() const noexcept { return values_; }
  const std::vector<std::uint32_t>& col_indices() const noexcept {
    return col_indices_;
  }
  const std::vector<std::uint64_t>& row_offsets() const noexcept {
    return row_offsets_;
  }

  /// Flat serialization (host byte order) and its inverse; used by the
  /// container format.
  std::vector<std::uint8_t> serialize() const;
  static CsrMatrix deserialize(const std::uint8_t* data, std::size_t size);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
  std::vector<std::uint32_t> col_indices_;
  std::vector<std::uint64_t> row_offsets_;  // size rows_+1
};

}  // namespace rmp::la
