#include "la/covariance.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace rmp::la {
namespace {

// Same dispatch-overhead cutoff as the matrix product (see matrix.cpp).
constexpr std::size_t kParallelFlopCutoff = 1u << 15;

}  // namespace

std::vector<double> column_means(const Matrix& a) {
  std::vector<double> means(a.cols(), 0.0);
  if (a.rows() == 0) return means;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) means[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(a.rows());
  for (double& m : means) m *= inv;
  return means;
}

void center_columns(Matrix& a, const std::vector<double>& means) {
  if (means.size() != a.cols()) {
    throw std::invalid_argument("center_columns: means size mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] -= means[j];
  }
}

void uncenter_columns(Matrix& a, const std::vector<double>& means) {
  if (means.size() != a.cols()) {
    throw std::invalid_argument("uncenter_columns: means size mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] += means[j];
  }
}

Matrix covariance(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix centered = a;
  center_columns(centered, column_means(a));

  Matrix c(n, n);
  // Each thread owns a disjoint range of output rows j; every thread scans
  // the centered matrix top-to-bottom, so each c(j, k) accumulates over i
  // in ascending order regardless of thread count -- bit-reproducible.
  const auto accumulate_rows = [&](std::size_t j_begin, std::size_t j_end) {
    for (std::size_t i = 0; i < m; ++i) {
      const auto row = centered.row(i);
      for (std::size_t j = j_begin; j < j_end; ++j) {
        const double rj = row[j];
        if (rj == 0.0) continue;
        for (std::size_t k = j; k < n; ++k) {
          c(j, k) += rj * row[k];
        }
      }
    }
  };
  if (m * n * n < kParallelFlopCutoff) {
    accumulate_rows(0, n);
  } else {
    parallel::parallel_for_ranges(n, accumulate_rows);
  }
  const double inv = 1.0 / static_cast<double>(m > 1 ? m - 1 : 1);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = j; k < n; ++k) {
      c(j, k) *= inv;
      c(k, j) = c(j, k);
    }
  }
  return c;
}

}  // namespace rmp::la
