#include "la/covariance.hpp"

#include <stdexcept>

namespace rmp::la {

std::vector<double> column_means(const Matrix& a) {
  std::vector<double> means(a.cols(), 0.0);
  if (a.rows() == 0) return means;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) means[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(a.rows());
  for (double& m : means) m *= inv;
  return means;
}

void center_columns(Matrix& a, const std::vector<double>& means) {
  if (means.size() != a.cols()) {
    throw std::invalid_argument("center_columns: means size mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] -= means[j];
  }
}

void uncenter_columns(Matrix& a, const std::vector<double>& means) {
  if (means.size() != a.cols()) {
    throw std::invalid_argument("uncenter_columns: means size mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] += means[j];
  }
}

Matrix covariance(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix centered = a;
  center_columns(centered, column_means(a));

  Matrix c(n, n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = centered.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double rj = row[j];
      if (rj == 0.0) continue;
      for (std::size_t k = j; k < n; ++k) {
        c(j, k) += rj * row[k];
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(m > 1 ? m - 1 : 1);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = j; k < n; ++k) {
      c(j, k) *= inv;
      c(k, j) = c(j, k);
    }
  }
  return c;
}

}  // namespace rmp::la
