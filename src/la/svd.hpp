// Thin singular value decomposition via the one-sided Jacobi method.
//
// A (m x n, m >= n after an internal transpose) is decomposed as
// A = U * diag(s) * V^T with U m x n column-orthonormal, V n x n orthogonal
// and s sorted descending.  One-sided Jacobi orthogonalizes pairs of
// columns of A directly, which keeps the working set at one matrix and is
// accurate for the small column counts this library deals with.
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace rmp::la {

struct SvdResult {
  Matrix u;                     ///< m x n, orthonormal columns
  std::vector<double> sigma;    ///< n singular values, descending
  Matrix v;                     ///< n x n orthogonal
  bool transposed = false;      ///< true if the input was internally transposed
  /// False when the sweep budget ran out before every column pair became
  /// orthogonal to tolerance; `u`/`sigma` are then unreliable and callers
  /// in the guard chain should demote rather than store them.
  bool converged = true;
  /// Largest normalized |a_j . a_k| over all column pairs at exit; compare
  /// against SvdOptions::tolerance.
  double max_off_orthogonality = 0.0;
};

struct SvdOptions {
  std::size_t max_sweeps = 60;
  double tolerance = 1e-12;  ///< relative column-orthogonality tolerance
};

/// Thin SVD of an arbitrary (possibly wide) matrix.  For wide inputs the
/// matrix is transposed internally and U/V swap roles; `transposed` records
/// that so reconstruct() stays shape-correct.
SvdResult jacobi_svd(const Matrix& a, const SvdOptions& opts = {});

/// Rebuild (an approximation of) the original matrix from the leading k
/// triplets; k == 0 or k > rank uses all of them.
Matrix svd_reconstruct(const SvdResult& svd, std::size_t k = 0);

}  // namespace rmp::la
