#include "la/matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace rmp::la {
namespace {

// Below this many multiply-adds the pool dispatch overhead dominates;
// run serially.  Matrices in the preconditioners are often tiny (z-extent
// columns), so the cutoff keeps those on the fast inline path.
constexpr std::size_t kParallelFlopCutoff = 1u << 15;

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: buffer size does not match shape");
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix multiply: inner dimensions differ");
  }
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both operands.
  // Output rows are disjoint per i, so row ranges parallelize cleanly and
  // the per-element accumulation order (k ascending) is identical serial
  // or parallel -- results are bit-reproducible at any thread count.
  const auto multiply_rows = [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const double aik = (*this)(i, k);
        if (aik == 0.0) continue;
        const double* brow = other.data_.data() + k * other.cols_;
        double* orow = out.data_.data() + i * other.cols_;
        for (std::size_t j = 0; j < other.cols_; ++j) {
          orow[j] += aik * brow[j];
        }
      }
    }
  };
  if (rows_ * cols_ * other.cols_ < kParallelFlopCutoff) {
    multiply_rows(0, rows_);
  } else {
    parallel::parallel_for_ranges(rows_, multiply_rows);
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix add: shapes differ");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix subtract: shapes differ");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) {
    throw std::invalid_argument("max_abs_diff: shapes differ");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

double column_norm(const Matrix& a, std::size_t j) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) sum += a(i, j) * a(i, j);
  return std::sqrt(sum);
}

double column_dot(const Matrix& a, std::size_t j, std::size_t k) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) sum += a(i, j) * a(i, k);
  return sum;
}

}  // namespace rmp::la
