// SZ-like error-bounded lossy compressor (paper §II-A).
//
// Faithful to the SZ design: each point is predicted from its previously
// *decoded* neighbors with a Lorenzo (polynomial) predictor, the residual
// is quantized into 2^16 bins against the error bound (a "prediction
// hit"), misses are stored verbatim, and the quantization-code stream is
// entropy coded (Huffman) and passed through the LZ backend.
//
// Two bound modes:
//  * Absolute:            |v' - v| <= bound
//  * PointwiseRelative:   |v' - v| <= bound * |v|   (log2-domain transform;
//                         exact zeros round-trip exactly via a zero mask)
#pragma once

#include "compress/compressor.hpp"

namespace rmp::compress {

enum class SzMode {
  kAbsolute,
  /// Strict |v'-v| <= bound*|v| via a log2-domain transform (SZ 2.x).
  kPointwiseRelative,
  /// SZ 1.4-style value-range relative bound, applied per block of 1024
  /// values: eb_block = bound * max|v| over the block.  Unlike the strict
  /// log transform this keeps smooth zero-crossing data (deltas!) smooth,
  /// which is what the paper's delta compression relies on.
  kBlockRelative,
};

enum class SzPredictor {
  /// Lorenzo only (SZ 1.4): predict from previously decoded neighbors.
  kLorenzo,
  /// SZ 2.x hybrid: per block, fit a linear (hyperplane) regression and
  /// pick whichever of {regression, Lorenzo} has the lower residual.
  /// Regression predictions are data-independent inside a block, which
  /// beats Lorenzo on noisy-but-trending data.
  kHybrid,
};

struct SzOptions {
  SzMode mode = SzMode::kBlockRelative;
  /// Error bound; interpretation depends on mode.  The paper's default for
  /// original data is a pointwise relative bound of 1e-5.
  double bound = 1e-5;
  /// Quantization bin count is 2^quant_bits (code 0 reserved for misses).
  unsigned quant_bits = 16;
  SzPredictor predictor = SzPredictor::kLorenzo;
};

class SzCompressor final : public Compressor {
 public:
  explicit SzCompressor(SzOptions options = {});

  std::string name() const override;
  bool lossless() const override { return false; }

  std::vector<std::uint8_t> compress(std::span<const double> data,
                                     const Dims& dims) const override;
  std::vector<double> decompress(
      std::span<const std::uint8_t> stream) const override;

  const SzOptions& options() const noexcept { return options_; }

 private:
  SzOptions options_;
};

}  // namespace rmp::compress
