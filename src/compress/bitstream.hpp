// Bit-granular writer/reader used by the Huffman coder and the ZFP-like
// embedded bit-plane coder.  Bits are packed LSB-first within each byte so
// that write/read sequences of mixed widths round-trip exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rmp::compress {

class BitWriter {
 public:
  void put_bit(bool bit);

  /// Write the low `count` bits of `value`, LSB first.  count <= 64.
  void put_bits(std::uint64_t value, unsigned count);

  /// Number of bits written so far.
  std::size_t bit_count() const noexcept { return bit_count_; }

  /// Flush and take the byte buffer (final partial byte zero-padded).
  std::vector<std::uint8_t> take();

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t accum_ = 0;
  unsigned accum_bits_ = 0;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool get_bit();

  /// Read `count` bits, LSB first.  count <= 64.
  std::uint64_t get_bits(unsigned count);

  /// Look at the next `count` bits without consuming them.  Unlike
  /// get_bits this never throws: past-the-end bits read as zero (callers
  /// validate after deciding how many bits they really need).
  std::uint64_t peek_bits(unsigned count) const;

  /// Advance by `count` bits (must not pass the end).
  void skip_bits(unsigned count);

  /// Bits consumed so far.
  std::size_t bit_position() const noexcept { return bit_pos_; }

  /// Bits left to read (including any encoder zero-padding).
  std::size_t remaining_bits() const noexcept {
    const std::size_t total = bytes_.size() * 8;
    return bit_pos_ < total ? total - bit_pos_ : 0;
  }

  /// True if fewer than `count` bits remain.
  bool exhausted(unsigned count = 1) const noexcept {
    return bit_pos_ + count > bytes_.size() * 8;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bit_pos_ = 0;
};

}  // namespace rmp::compress
