// Canonical Huffman coding over an arbitrary uint32 symbol alphabet.
//
// Used twice in the library: to entropy-code the SZ-like quantization
// codes (large alphabet, heavily skewed histogram) and as the token coder
// inside the generic LZ77+Huffman lossless backend.
//
// The code table is serialized as (symbol, length) pairs for the symbols
// actually present, and rebuilt canonically on decode, so skewed sparse
// alphabets cost little header space.
//
// Hot-path design (DESIGN.md §13):
//  * encode: codes are pre-reversed at table build so each symbol is one
//    batched BitWriter::put_bits call, not a per-bit loop;
//  * decode: a rapidgzip-style multi-symbol fast table resolves up to two
//    complete codes per kFastBits-wide peek; longer codes fall back to the
//    canonical bit-by-bit walk;
//  * hostile streams fail with compress::CodecError (typed), never with
//    bad_alloc from stream-controlled allocations and never by fabricating
//    symbols past end-of-stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitstream.hpp"

namespace rmp::compress {

class HuffmanEncoder {
 public:
  /// Build a canonical code from symbol frequencies implied by `symbols`.
  explicit HuffmanEncoder(std::span<const std::uint32_t> symbols);

  /// Append the serialized code table to `writer`.
  void write_table(BitWriter& writer) const;

  /// Append the code for one symbol.  The symbol must have appeared in the
  /// constructor sample; otherwise std::out_of_range is thrown.
  void write_symbol(BitWriter& writer, std::uint32_t symbol) const;

  /// Longest code length in bits (useful for tests/diagnostics).
  unsigned max_code_length() const noexcept { return max_length_; }
  std::size_t distinct_symbols() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint32_t symbol;
    std::uint8_t length;
    std::uint64_t code;      // canonical, MSB-first
    std::uint64_t reversed;  // same code bit-reversed: emitting it LSB-first
                             // via put_bits reproduces the MSB-first stream
  };
  std::vector<Entry> entries_;          // sorted by (length, symbol)
  // Dense lookup when the symbol range is compact; otherwise a sorted
  // (symbol -> entry) index searched by lower_bound (sparse alphabets
  // like {0, 0xffffffff} must not allocate range-sized tables).
  std::vector<std::int32_t> lookup_;
  std::uint32_t lookup_base_ = 0;
  std::vector<std::pair<std::uint32_t, std::int32_t>> sparse_lookup_;
  unsigned max_length_ = 0;

  const Entry* find(std::uint32_t symbol) const;
};

class HuffmanDecoder {
 public:
  /// Read the serialized code table produced by HuffmanEncoder::write_table.
  /// Throws CodecError{kCountOverflow} when the declared entry count
  /// exceeds what the remaining input bytes could possibly hold, and
  /// CodecError{kMalformedTable} for zero/oversized code lengths or a
  /// Kraft-sum-violating (non-canonical) table.
  explicit HuffmanDecoder(BitReader& reader);

  /// Decode one symbol.  Throws CodecError{kTruncated} when the stream
  /// ends mid-code and CodecError{kInvalidCode} when no canonical code
  /// matches.
  std::uint32_t read_symbol(BitReader& reader) const;

  /// Decode one or two symbols in a single fast-table probe, appending
  /// them to `out`.  Returns the number decoded (1 or 2; 2 only when both
  /// codes resolved inside one kFastBits window).  Error contract matches
  /// read_symbol.  Callers that interleave other bit reads between
  /// symbols (the LZ token stream) must use read_symbol instead.
  unsigned read_symbol_pair(BitReader& reader, std::uint32_t out[2]) const;

 private:
  // Canonical decode tables indexed by code length.
  std::vector<std::uint64_t> first_code_;   // first canonical code of length L
  std::vector<std::uint64_t> first_index_;  // index of that code in symbols_
  std::vector<std::uint32_t> symbols_;      // in canonical order
  unsigned max_length_ = 0;
  bool single_symbol_ = false;
  std::uint32_t only_symbol_ = 0;

  // Fast path: table indexed by the next kFastBits stream bits
  // (LSB-first, as peek_bits returns them).  Each entry caches up to two
  // complete codes that fit inside the window: count == 0 means "first
  // code longer than kFastBits, take the bit-by-bit path"; count == 1
  // consumes length0 bits; count == 2 consumes total_bits for both
  // symbols at once.
  static constexpr unsigned kFastBits = 12;
  struct FastEntry {
    std::uint32_t symbol0 = 0;
    std::uint32_t symbol1 = 0;
    std::uint8_t length0 = 0;
    std::uint8_t total_bits = 0;
    std::uint8_t count = 0;
  };
  std::vector<FastEntry> fast_table_;

  std::uint32_t read_symbol_slow(BitReader& reader) const;
};

/// One-call helpers: encode a symbol sequence to bytes and back.
/// huffman_decode validates every stream-declared count against the input
/// byte budget before allocating and throws CodecError on hostile input.
std::vector<std::uint8_t> huffman_encode(std::span<const std::uint32_t> symbols);
std::vector<std::uint32_t> huffman_decode(std::span<const std::uint8_t> bytes);

}  // namespace rmp::compress
