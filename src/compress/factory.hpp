// Convenience constructors mirroring the paper's evaluation configs
// (§IV-B / §V-B): SZ with pointwise-relative 1e-5 for originals and 1e-3
// for deltas; ZFP fixed precision 16 for originals and 8 for deltas;
// FPC "level 20".
#pragma once

#include <memory>

#include "compress/compressor.hpp"
#include "compress/fpc.hpp"
#include "compress/sz.hpp"
#include "compress/zfp_like.hpp"

namespace rmp::compress {

std::unique_ptr<Compressor> make_sz_original();   ///< pw-rel 1e-5
std::unique_ptr<Compressor> make_sz_delta();      ///< pw-rel 1e-3
std::unique_ptr<Compressor> make_zfp_original();  ///< fixed precision 16
std::unique_ptr<Compressor> make_zfp_delta();     ///< fixed precision 8
std::unique_ptr<Compressor> make_fpc();           ///< lossless, level 20

/// Build by name: "sz", "zfp", "fpc" (the paper-default original config);
/// throws std::invalid_argument for anything else.
std::unique_ptr<Compressor> make_by_name(const std::string& name);

}  // namespace rmp::compress
