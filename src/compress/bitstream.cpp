#include "compress/bitstream.hpp"

#include <stdexcept>

namespace rmp::compress {

void BitWriter::put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

void BitWriter::put_bits(std::uint64_t value, unsigned count) {
  if (count > 64) throw std::invalid_argument("put_bits: count > 64");
  if (count == 0) return;
  if (count < 64) value &= (std::uint64_t{1} << count) - 1;
  accum_ |= value << accum_bits_;
  // How many low bits of accum_ are now valid.  If the shift overflowed 64
  // bits we spill full bytes first and then re-insert the remainder.
  unsigned total = accum_bits_ + count;
  if (total < 64) {
    accum_bits_ = total;
  } else {
    // Spill the 64 accumulated bits as 8 bytes.
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(accum_ >> (8 * i)));
    }
    const unsigned spilled = 64 - accum_bits_;
    accum_ = (spilled < 64) ? value >> spilled : 0;
    accum_bits_ = total - 64;
  }
  bit_count_ += count;
  // Opportunistically spill whole bytes to keep the accumulator small.
  while (accum_bits_ >= 8) {
    bytes_.push_back(static_cast<std::uint8_t>(accum_));
    accum_ >>= 8;
    accum_bits_ -= 8;
  }
}

std::vector<std::uint8_t> BitWriter::take() {
  if (accum_bits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(accum_));
    accum_ = 0;
    accum_bits_ = 0;
  }
  return std::move(bytes_);
}

bool BitReader::get_bit() { return get_bits(1) != 0; }

std::uint64_t BitReader::peek_bits(unsigned count) const {
  if (count > 64) throw std::invalid_argument("peek_bits: count > 64");
  std::uint64_t value = 0;
  std::size_t pos = bit_pos_;
  const std::size_t total = bytes_.size() * 8;
  unsigned got = 0;
  while (got < count && pos < total) {
    const std::size_t byte_index = pos >> 3;
    const unsigned bit_index = static_cast<unsigned>(pos & 7);
    const unsigned take =
        std::min<unsigned>(8 - bit_index,
                           static_cast<unsigned>(
                               std::min<std::size_t>(count - got, total - pos)));
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(bytes_[byte_index]) >> bit_index) &
        ((std::uint64_t{1} << take) - 1);
    value |= chunk << got;
    got += take;
    pos += take;
  }
  return value;  // missing tail bits stay zero
}

void BitReader::skip_bits(unsigned count) {
  if (exhausted(count)) throw std::out_of_range("skip_bits: out of bits");
  bit_pos_ += count;
}

std::uint64_t BitReader::get_bits(unsigned count) {
  if (count > 64) throw std::invalid_argument("get_bits: count > 64");
  if (count == 0) return 0;
  if (exhausted(count)) throw std::out_of_range("BitReader: out of bits");
  std::uint64_t value = 0;
  unsigned got = 0;
  while (got < count) {
    const std::size_t byte_index = bit_pos_ >> 3;
    const unsigned bit_index = static_cast<unsigned>(bit_pos_ & 7);
    const unsigned take = std::min(8 - bit_index, count - got);
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(bytes_[byte_index]) >> bit_index) &
        ((std::uint64_t{1} << take) - 1);
    value |= chunk << got;
    got += take;
    bit_pos_ += take;
  }
  return value;
}

}  // namespace rmp::compress
