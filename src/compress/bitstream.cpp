#include "compress/bitstream.hpp"

#include <cstring>
#include <stdexcept>

namespace rmp::compress {
namespace {

// Load the 64 bits starting at `bytes[byte_index]` LSB-first.  Callers
// guarantee byte_index + 8 <= size.  On little-endian hosts this is a
// single unaligned load; the byte-assembled fallback keeps the LSB-first
// contract on any byte order.
inline std::uint64_t load_word(const std::uint8_t* p) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  std::uint64_t word;
  std::memcpy(&word, p, sizeof(word));
  return word;
#else
  std::uint64_t word = 0;
  for (int i = 0; i < 8; ++i) {
    word |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return word;
#endif
}

inline std::uint64_t mask_low(std::uint64_t value, unsigned count) {
  return count >= 64 ? value : value & ((std::uint64_t{1} << count) - 1);
}

}  // namespace

void BitWriter::put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

void BitWriter::put_bits(std::uint64_t value, unsigned count) {
  if (count > 64) throw std::invalid_argument("put_bits: count > 64");
  if (count == 0) return;
  if (count < 64) value &= (std::uint64_t{1} << count) - 1;
  accum_ |= value << accum_bits_;
  // How many low bits of accum_ are now valid.  If the shift overflowed 64
  // bits we spill full bytes first and then re-insert the remainder.
  unsigned total = accum_bits_ + count;
  if (total < 64) {
    accum_bits_ = total;
  } else {
    // Spill the 64 accumulated bits as 8 bytes.
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(accum_ >> (8 * i)));
    }
    const unsigned spilled = 64 - accum_bits_;
    accum_ = (spilled < 64) ? value >> spilled : 0;
    accum_bits_ = total - 64;
  }
  bit_count_ += count;
  // Opportunistically spill whole bytes to keep the accumulator small.
  while (accum_bits_ >= 8) {
    bytes_.push_back(static_cast<std::uint8_t>(accum_));
    accum_ >>= 8;
    accum_bits_ -= 8;
  }
}

std::vector<std::uint8_t> BitWriter::take() {
  if (accum_bits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(accum_));
    accum_ = 0;
    accum_bits_ = 0;
  }
  return std::move(bytes_);
}

bool BitReader::get_bit() {
  if (exhausted(1)) throw std::out_of_range("BitReader: out of bits");
  const bool bit =
      (bytes_[bit_pos_ >> 3] >> static_cast<unsigned>(bit_pos_ & 7)) & 1u;
  ++bit_pos_;
  return bit;
}

std::uint64_t BitReader::peek_bits(unsigned count) const {
  if (count > 64) throw std::invalid_argument("peek_bits: count > 64");
  if (count == 0) return 0;
  const std::size_t byte_index = bit_pos_ >> 3;
  const unsigned bit_index = static_cast<unsigned>(bit_pos_ & 7);
  // Fast path: a whole word is available at the cursor.  One load covers
  // up to 64 - bit_index bits; a ninth byte tops up the rest.
  if (byte_index + 8 <= bytes_.size()) {
    std::uint64_t word = load_word(bytes_.data() + byte_index) >> bit_index;
    if (count > 64 - bit_index && byte_index + 8 < bytes_.size()) {
      word |= static_cast<std::uint64_t>(bytes_[byte_index + 8])
              << (64 - bit_index);
    }
    return mask_low(word, count);
  }
  // Tail: assemble byte by byte, zero-filling past the end.
  std::uint64_t value = 0;
  std::size_t pos = bit_pos_;
  const std::size_t total = bytes_.size() * 8;
  unsigned got = 0;
  while (got < count && pos < total) {
    const std::size_t index = pos >> 3;
    const unsigned offset = static_cast<unsigned>(pos & 7);
    const unsigned take =
        std::min<unsigned>(8 - offset,
                           static_cast<unsigned>(
                               std::min<std::size_t>(count - got, total - pos)));
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(bytes_[index]) >> offset) &
        ((std::uint64_t{1} << take) - 1);
    value |= chunk << got;
    got += take;
    pos += take;
  }
  return value;  // missing tail bits stay zero
}

void BitReader::skip_bits(unsigned count) {
  if (exhausted(count)) throw std::out_of_range("skip_bits: out of bits");
  bit_pos_ += count;
}

std::uint64_t BitReader::get_bits(unsigned count) {
  if (count > 64) throw std::invalid_argument("get_bits: count > 64");
  if (count == 0) return 0;
  if (exhausted(count)) throw std::out_of_range("BitReader: out of bits");
  const std::size_t byte_index = bit_pos_ >> 3;
  const unsigned bit_index = static_cast<unsigned>(bit_pos_ & 7);
  // Narrow reads that fit in one byte (the ZFP bit-plane coder and the LZ
  // extra-bit fields live here) skip the word-load machinery entirely.
  if (bit_index + count <= 8) {
    const std::uint64_t value =
        (static_cast<std::uint64_t>(bytes_[byte_index]) >> bit_index) &
        ((std::uint64_t{1} << count) - 1);
    bit_pos_ += count;
    return value;
  }
  const std::uint64_t value = peek_bits(count);
  bit_pos_ += count;
  return value;
}

}  // namespace rmp::compress
