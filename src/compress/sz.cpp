#include "compress/sz.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "compress/bitstream.hpp"
#include "compress/codec_error.hpp"
#include "compress/huffman.hpp"
#include "compress/lossless.hpp"
#include "obs/obs.hpp"

namespace rmp::compress {
namespace {

constexpr std::uint32_t kMagic = 0x315A5352;  // "RSZ1"
// Values below this magnitude join the zero class in pointwise-relative
// mode (a relative bound is meaningless at denormal scale).
constexpr double kZeroClassThreshold = 1e-300;
// Block length for the SZ 1.4-style block-relative mode.
constexpr std::size_t kRelBlockSize = 1024;

struct Header {
  std::uint32_t magic;
  std::uint8_t mode;
  std::uint8_t quant_bits;
  std::uint16_t reserved;
  double bound;
  std::uint64_t nx, ny, nz;
};

std::size_t flat_index(std::size_t i, std::size_t j, std::size_t k,
                       const Dims& d) {
  return (i * d.ny + j) * d.nz + k;
}

// Lorenzo prediction from already-decoded values.  Out-of-range neighbors
// contribute 0, which makes the predictor exact for constant-0 boundaries
// and merely suboptimal otherwise -- same convention as SZ.
double lorenzo_predict(const std::vector<double>& u, std::size_t i,
                       std::size_t j, std::size_t k, const Dims& d) {
  auto at = [&](std::size_t a, std::size_t b, std::size_t c) -> double {
    return u[flat_index(a, b, c, d)];
  };
  switch (d.rank()) {
    case 1:
      // 1D fields are shaped {n, 1, 1}, so the scan axis is i.  Order-2
      // Lorenzo (linear extrapolation) leaves the second difference as
      // the residual, which is what makes smooth 1D signals quantize
      // into a handful of bins.
      if (i >= 2) return 2.0 * at(i - 1, j, k) - at(i - 2, j, k);
      return i == 1 ? at(0, j, k) : 0.0;
    case 2: {
      const double left = j > 0 ? at(i, j - 1, k) : 0.0;
      const double up = i > 0 ? at(i - 1, j, k) : 0.0;
      const double diag = (i > 0 && j > 0) ? at(i - 1, j - 1, k) : 0.0;
      return left + up - diag;
    }
    default: {
      const double x = i > 0 ? at(i - 1, j, k) : 0.0;
      const double y = j > 0 ? at(i, j - 1, k) : 0.0;
      const double z = k > 0 ? at(i, j, k - 1) : 0.0;
      const double xy = (i > 0 && j > 0) ? at(i - 1, j - 1, k) : 0.0;
      const double xz = (i > 0 && k > 0) ? at(i - 1, j, k - 1) : 0.0;
      const double yz = (j > 0 && k > 0) ? at(i, j - 1, k - 1) : 0.0;
      const double xyz = (i > 0 && j > 0 && k > 0) ? at(i - 1, j - 1, k - 1) : 0.0;
      return x + y + z - xy - xz - yz + xyz;
    }
  }
}

struct QuantizedStream {
  std::vector<std::uint32_t> codes;
  std::vector<double> outliers;
};

// ---------------------------------------------------------------------------
// SZ 2.x-style regression predictor (SzPredictor::kHybrid)

// Prediction block edge per rank (SZ 2 uses 6^3 in 3D; larger 2D/1D
// blocks amortize the stored-coefficient overhead).
std::size_t regression_block_edge(unsigned rank) {
  switch (rank) {
    case 3: return 6;
    case 2: return 16;
    default: return 128;
  }
}

// Per-array regression model: for each prediction block, either Lorenzo
// (flag 0) or a fitted hyperplane v ~ b0 + b1*di + b2*dj + b3*dk in local
// block coordinates (flag 1, 4 coefficients).
struct RegressionModel {
  std::size_t edge = 0;
  std::size_t blocks_x = 1, blocks_y = 1, blocks_z = 1;
  std::vector<std::uint8_t> use_regression;  // one per block
  std::vector<double> coefficients;          // 4 per block (zeros if unused)

  std::size_t block_count() const { return blocks_x * blocks_y * blocks_z; }
  std::size_t block_of(std::size_t i, std::size_t j, std::size_t k) const {
    return ((i / edge) * blocks_y + (j / edge)) * blocks_z + (k / edge);
  }
  double predict(std::size_t i, std::size_t j, std::size_t k,
                 std::size_t block) const {
    const double* c = &coefficients[4 * block];
    return c[0] + c[1] * static_cast<double>(i % edge) +
           c[2] * static_cast<double>(j % edge) +
           c[3] * static_cast<double>(k % edge);
  }
};

struct BoundTable;
double bound_at(const BoundTable& table, std::size_t n);

// Fit the model on the original data and choose per block between the
// hyperplane and Lorenzo by comparing *estimated coded bits*: each
// residual costs ~log2(1 + |r| / eb) bits after quantization, and a
// regression block additionally pays for its four stored coefficients.
// (Plain SSE is a poor proxy: spiky data has huge SSE under Lorenzo but
// almost all-zero codes, which entropy coding loves.)
RegressionModel fit_regression_model(std::span<const double> data,
                                     const Dims& dims,
                                     const BoundTable& bounds) {
  RegressionModel model;
  model.edge = regression_block_edge(dims.rank());
  model.blocks_x = (dims.nx + model.edge - 1) / model.edge;
  model.blocks_y = (dims.ny + model.edge - 1) / model.edge;
  model.blocks_z = (dims.nz + model.edge - 1) / model.edge;
  model.use_regression.assign(model.block_count(), 0);
  model.coefficients.assign(4 * model.block_count(), 0.0);

  auto value = [&](std::size_t i, std::size_t j, std::size_t k) {
    return data[flat_index(i, j, k, dims)];
  };

  for (std::size_t bx = 0; bx < model.blocks_x; ++bx) {
    for (std::size_t by = 0; by < model.blocks_y; ++by) {
      for (std::size_t bz = 0; bz < model.blocks_z; ++bz) {
        const std::size_t i0 = bx * model.edge;
        const std::size_t j0 = by * model.edge;
        const std::size_t k0 = bz * model.edge;
        const std::size_t i1 = std::min(i0 + model.edge, dims.nx);
        const std::size_t j1 = std::min(j0 + model.edge, dims.ny);
        const std::size_t k1 = std::min(k0 + model.edge, dims.nz);
        const double count =
            static_cast<double>((i1 - i0) * (j1 - j0) * (k1 - k0));

        // Separable least squares on the product grid: per-axis centered
        // coordinates make the normal equations diagonal.
        double mean_i = 0, mean_j = 0, mean_k = 0, mean_v = 0;
        for (std::size_t i = i0; i < i1; ++i) mean_i += static_cast<double>(i - i0);
        for (std::size_t j = j0; j < j1; ++j) mean_j += static_cast<double>(j - j0);
        for (std::size_t k = k0; k < k1; ++k) mean_k += static_cast<double>(k - k0);
        mean_i /= static_cast<double>(i1 - i0);
        mean_j /= static_cast<double>(j1 - j0);
        mean_k /= static_cast<double>(k1 - k0);

        double sxx = 0, syy = 0, szz = 0;
        double sxv = 0, syv = 0, szv = 0;
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t j = j0; j < j1; ++j) {
            for (std::size_t k = k0; k < k1; ++k) {
              const double v = value(i, j, k);
              mean_v += v;
              const double di = static_cast<double>(i - i0) - mean_i;
              const double dj = static_cast<double>(j - j0) - mean_j;
              const double dk = static_cast<double>(k - k0) - mean_k;
              sxx += di * di;
              syy += dj * dj;
              szz += dk * dk;
              sxv += di * v;
              syv += dj * v;
              szv += dk * v;
            }
          }
        }
        mean_v /= count;
        const double b1 = sxx > 0 ? sxv / sxx : 0.0;
        const double b2 = syy > 0 ? syv / syy : 0.0;
        const double b3 = szz > 0 ? szv / szz : 0.0;
        const double b0 = mean_v - b1 * mean_i - b2 * mean_j - b3 * mean_k;

        // Residual comparison: estimated coded bits for regression vs
        // Lorenzo on the originals.
        double bits_regression = 0, bits_lorenzo = 0;
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t j = j0; j < j1; ++j) {
            for (std::size_t k = k0; k < k1; ++k) {
              const double v = value(i, j, k);
              const double eb =
                  std::max(bound_at(bounds, flat_index(i, j, k, dims)),
                           1e-300);
              const double reg = b0 + b1 * (static_cast<double>(i - i0)) +
                                 b2 * (static_cast<double>(j - j0)) +
                                 b3 * (static_cast<double>(k - k0));
              bits_regression += std::log2(1.0 + std::fabs(v - reg) / eb);
              // Lorenzo on originals (approximation of the decoded-value
              // predictor, good enough for the selection decision).
              double lorenzo;
              switch (dims.rank()) {
                case 1:
                  lorenzo = i >= 2 ? 2.0 * value(i - 1, j, k) - value(i - 2, j, k)
                                   : (i == 1 ? value(0, j, k) : 0.0);
                  break;
                case 2: {
                  const double left = j > 0 ? value(i, j - 1, k) : 0.0;
                  const double up = i > 0 ? value(i - 1, j, k) : 0.0;
                  const double diag =
                      (i > 0 && j > 0) ? value(i - 1, j - 1, k) : 0.0;
                  lorenzo = left + up - diag;
                  break;
                }
                default: {
                  const double x = i > 0 ? value(i - 1, j, k) : 0.0;
                  const double y = j > 0 ? value(i, j - 1, k) : 0.0;
                  const double z = k > 0 ? value(i, j, k - 1) : 0.0;
                  const double xy = (i > 0 && j > 0) ? value(i - 1, j - 1, k) : 0.0;
                  const double xz = (i > 0 && k > 0) ? value(i - 1, j, k - 1) : 0.0;
                  const double yz = (j > 0 && k > 0) ? value(i, j - 1, k - 1) : 0.0;
                  const double xyz = (i > 0 && j > 0 && k > 0)
                                         ? value(i - 1, j - 1, k - 1)
                                         : 0.0;
                  lorenzo = x + y + z - xy - xz - yz + xyz;
                  break;
                }
              }
              bits_lorenzo += std::log2(1.0 + std::fabs(v - lorenzo) / eb);
            }
          }
        }

        const std::size_t block = model.block_of(i0, j0, k0);
        // Coefficients are stored as float32 (SZ 2 quantizes them too):
        // 4 x 32 = 128 bits of model overhead per block.  Prediction must
        // use the *rounded* values so encoder and decoder agree.
        if (bits_regression + 128.0 < bits_lorenzo) {
          model.use_regression[block] = 1;
          model.coefficients[4 * block + 0] =
              static_cast<double>(static_cast<float>(b0));
          model.coefficients[4 * block + 1] =
              static_cast<double>(static_cast<float>(b1));
          model.coefficients[4 * block + 2] =
              static_cast<double>(static_cast<float>(b2));
          model.coefficients[4 * block + 3] =
              static_cast<double>(static_cast<float>(b3));
        }
      }
    }
  }
  return model;
}

// Per-point error bound: scalar in absolute mode, per-1024-block in
// block-relative mode.
struct BoundTable {
  std::vector<double> bounds;  // one entry per block
  std::size_t block_size = 0;  // 0 = scalar (bounds[0] applies everywhere)

  double at(std::size_t n) const {
    return block_size == 0 ? bounds[0] : bounds[n / block_size];
  }
};

double bound_at(const BoundTable& table, std::size_t n) {
  return table.at(n);
}

// Invoke fn(offset_begin, offset_end, bound) over the maximal
// constant-bound sub-spans of the flat range [n, n + len).  Hoists the
// per-element `n / block_size` division and bounds lookup out of the
// quantization kernels: a scalar table yields one span, a block-relative
// table one span per 1024-element block crossing.
template <typename F>
void for_bound_segments(const BoundTable& table, std::size_t n,
                        std::size_t len, F&& fn) {
  if (table.block_size == 0) {
    fn(std::size_t{0}, len, table.bounds[0]);
    return;
  }
  std::size_t off = 0;
  while (off < len) {
    const std::size_t block = (n + off) / table.block_size;
    const std::size_t end =
        std::min(len, (block + 1) * table.block_size - n);
    fn(off, end, table.bounds[block]);
    off = end;
  }
}

// Quantize `data` against the bound table, producing codes and the
// decoded surrogate (needed because prediction runs on decoded values).
// `model`, when non-null, supplies regression predictions for the blocks
// it marked (SZ 2.x hybrid mode).
//
// The Lorenzo paths below are restructured into per-row kernels: the
// boundary cases (first plane / row / element) and the bound lookup are
// hoisted out, so interior spans run with no per-element predictor
// branches.  Every kernel evaluates the predictor with the exact same
// floating-point expression (including the literal 0.0 neighbor terms at
// boundaries) and the same left-to-right association as the historical
// per-element lorenzo_predict, so codes -- and therefore archive bytes --
// are bit-identical.
QuantizedStream quantize(std::span<const double> data, const Dims& dims,
                         const BoundTable& table, unsigned quant_bits,
                         std::vector<double>& decoded,
                         const RegressionModel* model = nullptr) {
  QuantizedStream out;
  out.codes.resize(data.size());
  decoded.assign(data.size(), 0.0);

  const std::int64_t radius = std::int64_t{1} << (quant_bits - 1);
  const double radius_d = static_cast<double>(radius);
  double* u = decoded.data();
  std::uint32_t* codes = out.codes.data();

  // One quantization decision; identical arithmetic to the historical
  // per-element body (step == 2.0 * bound is hoisted per segment).
  auto quantize_one = [&](std::size_t n, double pred, double bound,
                          double step) {
    const double v = data[n];
    const double diff = v - pred;
    const double qd = std::round(diff / step);
    if (std::fabs(qd) < radius_d && std::isfinite(qd)) {
      const auto q = static_cast<std::int64_t>(qd);
      const double rec = pred + static_cast<double>(q) * step;
      if (std::fabs(rec - v) <= bound && std::isfinite(rec)) {
        codes[n] = static_cast<std::uint32_t>(q + radius);
        u[n] = rec;
        return;
      }
    }
    codes[n] = 0;  // miss: store verbatim
    out.outliers.push_back(v);
    u[n] = v;
  };

  if (model != nullptr) {
    // Hybrid mode keeps the straightforward per-element walk: regression
    // blocks interleave with Lorenzo blocks, so rows do not decompose
    // into long branch-free spans.
    std::size_t n = 0;
    for (std::size_t i = 0; i < dims.nx; ++i) {
      for (std::size_t j = 0; j < dims.ny; ++j) {
        for (std::size_t k = 0; k < dims.nz; ++k, ++n) {
          const double bound = table.at(n);
          const std::size_t block = model->block_of(i, j, k);
          const double pred = model->use_regression[block]
                                  ? model->predict(i, j, k, block)
                                  : lorenzo_predict(decoded, i, j, k, dims);
          quantize_one(n, pred, bound, 2.0 * bound);
        }
      }
    }
    return out;
  }

  switch (dims.rank()) {
    case 1: {
      for_bound_segments(table, 0, data.size(),
                         [&](std::size_t s0, std::size_t s1, double bound) {
        const double step = 2.0 * bound;
        std::size_t n = s0;
        if (n == 0 && n < s1) quantize_one(n++, 0.0, bound, step);
        if (n == 1 && n < s1) quantize_one(n++, u[0], bound, step);
        for (; n < s1; ++n) {
          quantize_one(n, 2.0 * u[n - 1] - u[n - 2], bound, step);
        }
      });
      break;
    }
    case 2: {
      const std::size_t ny = dims.ny;
      std::size_t n = 0;
      for (std::size_t i = 0; i < dims.nx; ++i, n += ny) {
        double* cur = u + n;
        const double* up = i > 0 ? cur - ny : nullptr;
        for_bound_segments(table, n, ny,
                           [&](std::size_t j0, std::size_t j1, double bound) {
          const double step = 2.0 * bound;
          std::size_t j = j0;
          if (j == 0 && j < j1) {
            const double pred = 0.0 + (up != nullptr ? up[0] : 0.0) - 0.0;
            quantize_one(n, pred, bound, step);
            j = 1;
          }
          if (up != nullptr) {
            for (; j < j1; ++j) {
              quantize_one(n + j, cur[j - 1] + up[j] - up[j - 1], bound, step);
            }
          } else {
            for (; j < j1; ++j) {
              quantize_one(n + j, cur[j - 1] + 0.0 - 0.0, bound, step);
            }
          }
        });
      }
      break;
    }
    default: {
      const std::size_t ny = dims.ny, nz = dims.nz;
      const std::size_t plane = ny * nz;
      std::size_t n = 0;
      for (std::size_t i = 0; i < dims.nx; ++i) {
        for (std::size_t j = 0; j < ny; ++j, n += nz) {
          double* cur = u + n;
          const double* pi = i > 0 ? cur - plane : nullptr;
          const double* pj = j > 0 ? cur - nz : nullptr;
          const double* pij = (pi != nullptr && pj != nullptr)
                                  ? cur - plane - nz
                                  : nullptr;
          for_bound_segments(table, n, nz,
                             [&](std::size_t k0, std::size_t k1, double bound) {
            const double step = 2.0 * bound;
            std::size_t k = k0;
            if (k == 0 && k < k1) {
              const double x = pi != nullptr ? pi[0] : 0.0;
              const double y = pj != nullptr ? pj[0] : 0.0;
              const double xy = pij != nullptr ? pij[0] : 0.0;
              quantize_one(n, x + y + 0.0 - xy - 0.0 - 0.0 + 0.0, bound, step);
              k = 1;
            }
            if (pij != nullptr) {
              for (; k < k1; ++k) {
                const double pred = pi[k] + pj[k] + cur[k - 1] - pij[k] -
                                    pi[k - 1] - pj[k - 1] + pij[k - 1];
                quantize_one(n + k, pred, bound, step);
              }
            } else if (pi != nullptr) {
              for (; k < k1; ++k) {
                const double pred = pi[k] + 0.0 + cur[k - 1] - 0.0 -
                                    pi[k - 1] - 0.0 + 0.0;
                quantize_one(n + k, pred, bound, step);
              }
            } else if (pj != nullptr) {
              for (; k < k1; ++k) {
                const double pred = 0.0 + pj[k] + cur[k - 1] - 0.0 - 0.0 -
                                    pj[k - 1] + 0.0;
                quantize_one(n + k, pred, bound, step);
              }
            } else {
              for (; k < k1; ++k) {
                const double pred =
                    0.0 + 0.0 + cur[k - 1] - 0.0 - 0.0 - 0.0 + 0.0;
                quantize_one(n + k, pred, bound, step);
              }
            }
          });
        }
      }
      break;
    }
  }
  return out;
}

std::vector<double> dequantize(const QuantizedStream& qs, const Dims& dims,
                               const BoundTable& table, unsigned quant_bits,
                               const RegressionModel* model = nullptr) {
  std::vector<double> decoded(dims.count(), 0.0);
  const std::int64_t radius = std::int64_t{1} << (quant_bits - 1);
  double* u = decoded.data();
  const std::uint32_t* codes = qs.codes.data();
  std::size_t outlier_index = 0;

  // `pred` is speculatively computed from already-decoded neighbors; it
  // is ignored on the outlier path, so hoisting it costs nothing
  // semantically.
  auto dequantize_one = [&](std::size_t n, double pred, double step) {
    const std::uint32_t code = codes[n];
    if (code == 0) {
      if (outlier_index >= qs.outliers.size()) {
        throw CodecError(CodecErrc::kMalformedStream,
                         "SZ decode: outlier list exhausted");
      }
      u[n] = qs.outliers[outlier_index++];
    } else {
      const auto q = static_cast<std::int64_t>(code) - radius;
      u[n] = pred + static_cast<double>(q) * step;
    }
  };

  if (model != nullptr) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < dims.nx; ++i) {
      for (std::size_t j = 0; j < dims.ny; ++j) {
        for (std::size_t k = 0; k < dims.nz; ++k, ++n) {
          const std::size_t block = model->block_of(i, j, k);
          const double pred = model->use_regression[block]
                                  ? model->predict(i, j, k, block)
                                  : lorenzo_predict(decoded, i, j, k, dims);
          dequantize_one(n, pred, 2.0 * table.at(n));
        }
      }
    }
    return decoded;
  }

  switch (dims.rank()) {
    case 1: {
      for_bound_segments(table, 0, decoded.size(),
                         [&](std::size_t s0, std::size_t s1, double bound) {
        const double step = 2.0 * bound;
        std::size_t n = s0;
        if (n == 0 && n < s1) dequantize_one(n++, 0.0, step);
        if (n == 1 && n < s1) dequantize_one(n++, u[0], step);
        for (; n < s1; ++n) {
          dequantize_one(n, 2.0 * u[n - 1] - u[n - 2], step);
        }
      });
      break;
    }
    case 2: {
      const std::size_t ny = dims.ny;
      std::size_t n = 0;
      for (std::size_t i = 0; i < dims.nx; ++i, n += ny) {
        double* cur = u + n;
        const double* up = i > 0 ? cur - ny : nullptr;
        for_bound_segments(table, n, ny,
                           [&](std::size_t j0, std::size_t j1, double bound) {
          const double step = 2.0 * bound;
          std::size_t j = j0;
          if (j == 0 && j < j1) {
            dequantize_one(n, 0.0 + (up != nullptr ? up[0] : 0.0) - 0.0, step);
            j = 1;
          }
          if (up != nullptr) {
            for (; j < j1; ++j) {
              dequantize_one(n + j, cur[j - 1] + up[j] - up[j - 1], step);
            }
          } else {
            for (; j < j1; ++j) {
              dequantize_one(n + j, cur[j - 1] + 0.0 - 0.0, step);
            }
          }
        });
      }
      break;
    }
    default: {
      const std::size_t ny = dims.ny, nz = dims.nz;
      const std::size_t plane = ny * nz;
      std::size_t n = 0;
      for (std::size_t i = 0; i < dims.nx; ++i) {
        for (std::size_t j = 0; j < ny; ++j, n += nz) {
          double* cur = u + n;
          const double* pi = i > 0 ? cur - plane : nullptr;
          const double* pj = j > 0 ? cur - nz : nullptr;
          const double* pij = (pi != nullptr && pj != nullptr)
                                  ? cur - plane - nz
                                  : nullptr;
          for_bound_segments(table, n, nz,
                             [&](std::size_t k0, std::size_t k1, double bound) {
            const double step = 2.0 * bound;
            std::size_t k = k0;
            if (k == 0 && k < k1) {
              const double x = pi != nullptr ? pi[0] : 0.0;
              const double y = pj != nullptr ? pj[0] : 0.0;
              const double xy = pij != nullptr ? pij[0] : 0.0;
              dequantize_one(n, x + y + 0.0 - xy - 0.0 - 0.0 + 0.0, step);
              k = 1;
            }
            if (pij != nullptr) {
              for (; k < k1; ++k) {
                const double pred = pi[k] + pj[k] + cur[k - 1] - pij[k] -
                                    pi[k - 1] - pj[k - 1] + pij[k - 1];
                dequantize_one(n + k, pred, step);
              }
            } else if (pi != nullptr) {
              for (; k < k1; ++k) {
                const double pred = pi[k] + 0.0 + cur[k - 1] - 0.0 -
                                    pi[k - 1] - 0.0 + 0.0;
                dequantize_one(n + k, pred, step);
              }
            } else if (pj != nullptr) {
              for (; k < k1; ++k) {
                const double pred = 0.0 + pj[k] + cur[k - 1] - 0.0 - 0.0 -
                                    pj[k - 1] + 0.0;
                dequantize_one(n + k, pred, step);
              }
            } else {
              for (; k < k1; ++k) {
                const double pred =
                    0.0 + 0.0 + cur[k - 1] - 0.0 - 0.0 - 0.0 + 0.0;
                dequantize_one(n + k, pred, step);
              }
            }
          });
        }
      }
      break;
    }
  }
  return decoded;
}

// Model (de)serialization: edge, block grid, flag bitmap, then 4 doubles
// per regression block in block order.  read_model validates the declared
// geometry against `dims` before allocating anything block-count-sized.
void append_model(std::vector<std::uint8_t>& payload,
                  const RegressionModel& model);
RegressionModel read_model(class ByteCursor& cursor, const Dims& dims);

// Block-relative bound table: eb_block = rel * max|v| over each block of
// kRelBlockSize values.  All-zero blocks fall back to the global range so
// the step stays positive (value-range-relative semantics).
BoundTable block_relative_bounds(std::span<const double> data, double rel) {
  BoundTable table;
  table.block_size = kRelBlockSize;
  double global_max = 0.0;
  for (double v : data) {
    if (std::isfinite(v)) global_max = std::max(global_max, std::fabs(v));
  }
  const std::size_t blocks = (data.size() + kRelBlockSize - 1) / kRelBlockSize;
  table.bounds.reserve(std::max<std::size_t>(blocks, 1));
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * kRelBlockSize;
    const std::size_t end = std::min(begin + kRelBlockSize, data.size());
    double block_max = 0.0;
    for (std::size_t n = begin; n < end; ++n) {
      if (std::isfinite(data[n])) {
        block_max = std::max(block_max, std::fabs(data[n]));
      }
    }
    const double basis = block_max > 0.0 ? block_max : global_max;
    table.bounds.push_back(basis > 0.0 ? rel * basis : 1.0);
  }
  if (table.bounds.empty()) table.bounds.push_back(1.0);
  return table;
}

void append_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_bytes(out, &v, sizeof(v));
}

class ByteCursor {
 public:
  explicit ByteCursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  void read(void* p, std::size_t n) {
    if (n > remaining()) {
      throw CodecError(CodecErrc::kTruncated, "SZ decode: truncated stream");
    }
    if (n > 0) std::memcpy(p, bytes_.data() + offset_, n);
    offset_ += n;
  }
  std::uint64_t read_u64() {
    std::uint64_t v;
    read(&v, sizeof(v));
    return v;
  }
  std::span<const std::uint8_t> read_block(std::size_t n) {
    if (n > remaining()) {
      throw CodecError(CodecErrc::kTruncated, "SZ decode: truncated block");
    }
    auto s = bytes_.subspan(offset_, n);
    offset_ += n;
    return s;
  }
  /// Bytes left; stream-declared element counts are capped against this
  /// before any allocation.
  std::size_t remaining() const noexcept { return bytes_.size() - offset_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

std::vector<std::uint8_t> pack_bits(const std::vector<bool>& bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bytes;
}

std::vector<bool> unpack_bits(std::span<const std::uint8_t> bytes,
                              std::size_t count) {
  std::vector<bool> bits(count, false);
  for (std::size_t i = 0; i < count; ++i) {
    bits[i] = (bytes[i / 8] >> (i % 8)) & 1;
  }
  return bits;
}

void append_model(std::vector<std::uint8_t>& payload,
                  const RegressionModel& model) {
  const std::uint64_t header[4] = {model.edge, model.blocks_x, model.blocks_y,
                                   model.blocks_z};
  append_bytes(payload, header, sizeof(header));
  std::vector<bool> flags(model.use_regression.begin(),
                          model.use_regression.end());
  const auto flag_bytes = pack_bits(flags);
  append_bytes(payload, flag_bytes.data(), flag_bytes.size());
  for (std::size_t b = 0; b < model.block_count(); ++b) {
    if (model.use_regression[b]) {
      // Coefficients were rounded to float32 at fit time, so this is
      // lossless with respect to the predictions both sides compute.
      for (int c = 0; c < 4; ++c) {
        const float value = static_cast<float>(model.coefficients[4 * b + c]);
        append_bytes(payload, &value, sizeof(value));
      }
    }
  }
}

RegressionModel read_model(ByteCursor& cursor, const Dims& dims) {
  RegressionModel model;
  std::uint64_t header[4];
  cursor.read(header, sizeof(header));
  model.edge = header[0];
  model.blocks_x = header[1];
  model.blocks_y = header[2];
  model.blocks_z = header[3];
  // The block grid is fully determined by dims and edge; a mismatched
  // declaration is hostile and must not size any allocation.
  if (model.edge == 0 ||
      model.blocks_x != (dims.nx + model.edge - 1) / model.edge ||
      model.blocks_y != (dims.ny + model.edge - 1) / model.edge ||
      model.blocks_z != (dims.nz + model.edge - 1) / model.edge) {
    throw CodecError(CodecErrc::kMalformedStream,
                     "SZ decode: regression model geometry mismatch");
  }
  const std::size_t count = model.block_count();
  const auto flag_bytes = cursor.read_block((count + 7) / 8);
  const auto flags = unpack_bits(flag_bytes, count);
  model.use_regression.assign(count, 0);
  model.coefficients.assign(4 * count, 0.0);
  for (std::size_t b = 0; b < count; ++b) {
    if (flags[b]) {
      model.use_regression[b] = 1;
      for (int c = 0; c < 4; ++c) {
        float value = 0.0f;
        cursor.read(&value, sizeof(value));
        model.coefficients[4 * b + c] = static_cast<double>(value);
      }
    }
  }
  return model;
}

}  // namespace

SzCompressor::SzCompressor(SzOptions options) : options_(options) {
  if (options_.bound <= 0.0) {
    throw std::invalid_argument("SzCompressor: bound must be positive");
  }
  if (options_.quant_bits < 2 || options_.quant_bits > 30) {
    throw std::invalid_argument("SzCompressor: quant_bits out of range");
  }
}

std::string SzCompressor::name() const {
  switch (options_.mode) {
    case SzMode::kAbsolute: return "sz-abs";
    case SzMode::kPointwiseRelative: return "sz-pwrel";
    case SzMode::kBlockRelative: return "sz-rel";
  }
  return "sz";
}

std::vector<std::uint8_t> SzCompressor::compress(std::span<const double> data,
                                                 const Dims& dims) const {
  const obs::ScopedSpan span("codec/sz");
  obs::count("codec.sz.bytes_in", data.size() * sizeof(double));
  if (data.size() != dims.count()) {
    throw std::invalid_argument("SzCompressor: data size does not match dims");
  }

  std::vector<std::uint8_t> payload;
  Header header{kMagic,
                static_cast<std::uint8_t>(options_.mode),
                static_cast<std::uint8_t>(options_.quant_bits),
                static_cast<std::uint16_t>(options_.predictor),
                options_.bound,
                dims.nx,
                dims.ny,
                dims.nz};
  append_bytes(payload, &header, sizeof(header));

  std::vector<double> work;
  std::vector<bool> zero_mask, sign_mask;
  std::span<const double> to_quantize = data;
  BoundTable table;
  table.bounds = {options_.bound};

  if (options_.mode == SzMode::kBlockRelative) {
    table = block_relative_bounds(data, options_.bound);
  } else if (options_.mode == SzMode::kPointwiseRelative) {
    // log2 transform: a relative bound on v becomes an absolute bound on
    // log2|v|.  Zero-class values are masked out and reproduced exactly.
    table.bounds = {std::log2(1.0 + options_.bound)};
    work.resize(data.size());
    zero_mask.resize(data.size());
    sign_mask.resize(data.size());
    double previous_log = 0.0;
    for (std::size_t n = 0; n < data.size(); ++n) {
      const double v = data[n];
      if (!std::isfinite(v) || std::fabs(v) < kZeroClassThreshold) {
        zero_mask[n] = true;
        sign_mask[n] = false;
        // Keep the prediction chain smooth through masked points.
        work[n] = previous_log;
      } else {
        sign_mask[n] = v < 0.0;
        work[n] = std::log2(std::fabs(v));
        previous_log = work[n];
      }
    }
    to_quantize = work;
  }

  RegressionModel model;
  const bool hybrid = options_.predictor == SzPredictor::kHybrid;
  if (hybrid) {
    model = fit_regression_model(to_quantize, dims, table);
  }

  std::vector<double> decoded;
  QuantizedStream qs;
  {
    const obs::ScopedSpan qspan("codec/sz/quantize");
    qs = quantize(to_quantize, dims, table, options_.quant_bits, decoded,
                  hybrid ? &model : nullptr);
  }

  std::vector<std::uint8_t> code_bytes;
  {
    const obs::ScopedSpan hspan("codec/sz/huffman");
    code_bytes = huffman_encode(qs.codes);
  }
  append_u64(payload, code_bytes.size());
  append_bytes(payload, code_bytes.data(), code_bytes.size());

  append_u64(payload, qs.outliers.size());
  append_bytes(payload, qs.outliers.data(), qs.outliers.size() * sizeof(double));

  if (options_.mode == SzMode::kBlockRelative) {
    append_u64(payload, table.bounds.size());
    append_bytes(payload, table.bounds.data(),
                 table.bounds.size() * sizeof(double));
  }
  if (hybrid) {
    append_model(payload, model);
  }

  if (options_.mode == SzMode::kPointwiseRelative) {
    const auto zero_bytes = pack_bits(zero_mask);
    const auto sign_bytes = pack_bits(sign_mask);
    append_u64(payload, zero_bytes.size());
    append_bytes(payload, zero_bytes.data(), zero_bytes.size());
    append_u64(payload, sign_bytes.size());
    append_bytes(payload, sign_bytes.data(), sign_bytes.size());
    // Masked points decode to 0.0 by default; any masked point whose value
    // is not exactly zero (tiny denormals, NaN/Inf) is stored verbatim as a
    // (position, value) exception so the round trip stays faithful.
    std::vector<std::uint64_t> exact_pos;
    std::vector<double> exact_val;
    for (std::size_t n = 0; n < data.size(); ++n) {
      if (zero_mask[n] && !(data[n] == 0.0)) {
        exact_pos.push_back(n);
        exact_val.push_back(data[n]);
      }
    }
    append_u64(payload, exact_val.size());
    append_bytes(payload, exact_pos.data(),
                 exact_pos.size() * sizeof(std::uint64_t));
    append_bytes(payload, exact_val.data(), exact_val.size() * sizeof(double));
  }

  std::vector<std::uint8_t> out;
  {
    const obs::ScopedSpan lspan("codec/sz/lossless");
    out = lossless_compress(payload);
  }
  obs::count("codec.sz.bytes_out", out.size());
  return out;
}

std::vector<double> SzCompressor::decompress(
    std::span<const std::uint8_t> stream) const {
  const obs::ScopedSpan span("codec/sz");
  std::vector<std::uint8_t> payload;
  {
    const obs::ScopedSpan lspan("codec/sz/unlossless");
    payload = lossless_decompress(stream);
  }
  ByteCursor cursor(payload);

  Header header;
  cursor.read(&header, sizeof(header));
  if (header.magic != kMagic) {
    throw CodecError(CodecErrc::kMalformedStream, "SZ decode: bad magic");
  }
  const Dims dims{header.nx, header.ny, header.nz};
  // Overflow-check nx*ny*nz: a wrapped product would pass the code-count
  // equality below while the decode loops walk the true (huge) extent.
  if (dims.ny != 0 && dims.nx > std::numeric_limits<std::size_t>::max() / dims.ny) {
    throw CodecError(CodecErrc::kMalformedStream, "SZ decode: dims overflow");
  }
  const std::size_t plane = dims.nx * dims.ny;
  if (dims.nz != 0 && plane > std::numeric_limits<std::size_t>::max() / dims.nz) {
    throw CodecError(CodecErrc::kMalformedStream, "SZ decode: dims overflow");
  }
  const auto mode = static_cast<SzMode>(header.mode);
  const unsigned quant_bits = header.quant_bits;
  if (quant_bits < 2 || quant_bits > 30) {
    throw CodecError(CodecErrc::kMalformedStream,
                     "SZ decode: quant_bits out of range");
  }

  QuantizedStream qs;
  const std::size_t code_size = cursor.read_u64();
  {
    const obs::ScopedSpan hspan("codec/sz/unhuffman");
    qs.codes = huffman_decode(cursor.read_block(code_size));
  }
  if (qs.codes.size() != dims.count()) {
    throw CodecError(CodecErrc::kMalformedStream,
                     "SZ decode: code count mismatch");
  }
  const std::size_t outlier_count = cursor.read_u64();
  if (outlier_count > cursor.remaining() / sizeof(double)) {
    throw CodecError(CodecErrc::kCountOverflow,
                     "SZ decode: outlier count exceeds input budget");
  }
  qs.outliers.resize(outlier_count);
  cursor.read(qs.outliers.data(), outlier_count * sizeof(double));

  BoundTable table;
  table.bounds = {header.bound};
  if (mode == SzMode::kPointwiseRelative) {
    table.bounds = {std::log2(1.0 + header.bound)};
  } else if (mode == SzMode::kBlockRelative) {
    const std::size_t bound_count = cursor.read_u64();
    if (bound_count > cursor.remaining() / sizeof(double)) {
      throw CodecError(CodecErrc::kCountOverflow,
                       "SZ decode: bound count exceeds input budget");
    }
    // Every element indexes bounds[n / kRelBlockSize]: an undersized
    // table would read out of range during dequantization.
    if (bound_count < (dims.count() + kRelBlockSize - 1) / kRelBlockSize ||
        bound_count == 0) {
      throw CodecError(CodecErrc::kMalformedStream,
                       "SZ decode: bound table does not cover the grid");
    }
    table.bounds.resize(bound_count);
    cursor.read(table.bounds.data(), bound_count * sizeof(double));
    table.block_size = kRelBlockSize;
  }
  RegressionModel model;
  const bool hybrid =
      static_cast<SzPredictor>(header.reserved) == SzPredictor::kHybrid;
  if (hybrid) {
    model = read_model(cursor, dims);
  }

  std::vector<double> decoded;
  {
    const obs::ScopedSpan qspan("codec/sz/dequantize");
    decoded = dequantize(qs, dims, table, quant_bits, hybrid ? &model : nullptr);
  }

  if (mode == SzMode::kPointwiseRelative) {
    const std::size_t mask_bytes = (dims.count() + 7) / 8;
    const std::size_t zero_size = cursor.read_u64();
    if (zero_size < mask_bytes) {
      throw CodecError(CodecErrc::kMalformedStream,
                       "SZ decode: zero mask does not cover the grid");
    }
    const auto zero_mask = unpack_bits(cursor.read_block(zero_size), dims.count());
    const std::size_t sign_size = cursor.read_u64();
    if (sign_size < mask_bytes) {
      throw CodecError(CodecErrc::kMalformedStream,
                       "SZ decode: sign mask does not cover the grid");
    }
    const auto sign_mask = unpack_bits(cursor.read_block(sign_size), dims.count());
    const std::size_t exact_count = cursor.read_u64();
    if (exact_count >
        cursor.remaining() / (sizeof(std::uint64_t) + sizeof(double))) {
      throw CodecError(CodecErrc::kCountOverflow,
                       "SZ decode: exception count exceeds input budget");
    }
    std::vector<std::uint64_t> exact_pos(exact_count);
    cursor.read(exact_pos.data(), exact_count * sizeof(std::uint64_t));
    std::vector<double> exact_val(exact_count);
    cursor.read(exact_val.data(), exact_count * sizeof(double));

    // The quantized stream holds log2 magnitudes; rebuild the values.
    // Masked points are exactly 0.0 unless overridden by an exception.
    for (std::size_t n = 0; n < dims.count(); ++n) {
      if (zero_mask[n]) {
        decoded[n] = 0.0;
      } else {
        const double magnitude = std::exp2(decoded[n]);
        decoded[n] = sign_mask[n] ? -magnitude : magnitude;
      }
    }
    for (std::size_t e = 0; e < exact_count; ++e) {
      if (exact_pos[e] >= decoded.size()) {
        throw CodecError(CodecErrc::kMalformedStream,
                         "SZ decode: exception position out of range");
      }
      decoded[exact_pos[e]] = exact_val[e];
    }
  }
  return decoded;
}

}  // namespace rmp::compress
