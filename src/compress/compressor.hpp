// Common interface for the floating-point (de)compressors.
//
// The pipeline layer (src/core) treats every codec uniformly: bytes in,
// bytes out, with the logical grid shape carried alongside the data.  All
// codecs are self-describing -- the shape is also embedded in the stream so
// decompress() can validate it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace rmp::compress {

/// Logical grid shape, up to 3 dimensions.  Unused trailing dimensions are 1.
struct Dims {
  std::size_t nx = 1;
  std::size_t ny = 1;
  std::size_t nz = 1;

  std::size_t count() const noexcept { return nx * ny * nz; }
  unsigned rank() const noexcept {
    if (nz > 1) return 3;
    if (ny > 1) return 2;
    return 1;
  }
  bool operator==(const Dims&) const = default;

  static Dims d1(std::size_t n) { return {n, 1, 1}; }
  static Dims d2(std::size_t nx, std::size_t ny) { return {nx, ny, 1}; }
  static Dims d3(std::size_t nx, std::size_t ny, std::size_t nz) {
    return {nx, ny, nz};
  }
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string name() const = 0;

  /// True if decompress() reproduces the input bit-exactly.
  virtual bool lossless() const = 0;

  virtual std::vector<std::uint8_t> compress(std::span<const double> data,
                                             const Dims& dims) const = 0;

  virtual std::vector<double> decompress(
      std::span<const std::uint8_t> stream) const = 0;
};

/// Compression ratio = original bytes / compressed bytes.
inline double compression_ratio(std::size_t element_count,
                                std::size_t compressed_bytes) {
  if (compressed_bytes == 0) return 0.0;
  return static_cast<double>(element_count * sizeof(double)) /
         static_cast<double>(compressed_bytes);
}

}  // namespace rmp::compress
