// ZFP-like transform-based lossy compressor (paper §II-A).
//
// Follows the published ZFP design: the array is partitioned into 4^d
// blocks; each block is aligned to a common exponent and converted to
// 62-bit fixed point, decorrelated with the ZFP lifting transform along
// each dimension, mapped to negabinary, and bit planes are emitted
// MSB-first with group-testing significance coding.
//
// Two modes:
//  * FixedPrecision: keep exactly `precision` bit planes per block (the
//    paper runs ZFP at 16 bits for originals, 8 bits for deltas).
//  * FixedAccuracy: keep bit planes down to the one covering `tolerance`
//    (absolute error bound).
#pragma once

#include "compress/compressor.hpp"

namespace rmp::compress {

enum class ZfpMode {
  kFixedPrecision,
  kFixedAccuracy,
  /// ZFP's headline mode: every block gets exactly `rate` bits per value,
  /// so the stream size is known a priori and blocks are random-access.
  kFixedRate,
};

struct ZfpOptions {
  ZfpMode mode = ZfpMode::kFixedPrecision;
  /// Bit planes kept per block in FixedPrecision mode (1..62).
  unsigned precision = 16;
  /// Absolute error tolerance in FixedAccuracy mode.
  double tolerance = 1e-6;
  /// Bits per value in FixedRate mode (1..64).
  unsigned rate = 16;
};

class ZfpCompressor final : public Compressor {
 public:
  explicit ZfpCompressor(ZfpOptions options = {});

  std::string name() const override;
  bool lossless() const override { return false; }

  std::vector<std::uint8_t> compress(std::span<const double> data,
                                     const Dims& dims) const override;
  std::vector<double> decompress(
      std::span<const std::uint8_t> stream) const override;

  const ZfpOptions& options() const noexcept { return options_; }

 private:
  ZfpOptions options_;
};

}  // namespace rmp::compress
