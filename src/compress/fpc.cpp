#include "compress/fpc.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"

namespace rmp::compress {
namespace {

constexpr std::uint32_t kMagic = 0x31435046;  // "FPC1"

struct Header {
  std::uint32_t magic;
  std::uint8_t table_bits;
  std::uint8_t reserved[3];
  std::uint64_t nx, ny, nz;
};

// Leading-zero-byte count of the XOR residual, with FPC's 3-bit encoding:
// the rare count 4 is folded down to 3 (one extra residual byte stored).
unsigned code_from_lzb(unsigned lzb) {
  return lzb >= 4 ? lzb - 1 : lzb;  // 0,1,2,3,[4->3],5->4,6->5,7->6,8->7
}
unsigned lzb_from_code(unsigned code) {
  return code >= 4 ? code + 1 : code;
}

unsigned leading_zero_bytes(std::uint64_t v) {
  if (v == 0) return 8;
  return static_cast<unsigned>(std::countl_zero(v)) / 8;
}

class PredictorPair {
 public:
  explicit PredictorPair(unsigned table_bits)
      : mask_((std::uint64_t{1} << table_bits) - 1),
        fcm_(mask_ + 1, 0),
        dfcm_(mask_ + 1, 0) {}

  std::uint64_t fcm_prediction() const { return fcm_[fcm_hash_]; }
  std::uint64_t dfcm_prediction() const {
    return dfcm_[dfcm_hash_] + last_value_;
  }

  void update(std::uint64_t actual) {
    fcm_[fcm_hash_] = actual;
    fcm_hash_ = ((fcm_hash_ << 6) ^ (actual >> 48)) & mask_;
    const std::uint64_t delta = actual - last_value_;
    dfcm_[dfcm_hash_] = delta;
    dfcm_hash_ = ((dfcm_hash_ << 2) ^ (delta >> 40)) & mask_;
    last_value_ = actual;
  }

 private:
  std::uint64_t mask_;
  std::vector<std::uint64_t> fcm_;
  std::vector<std::uint64_t> dfcm_;
  std::uint64_t fcm_hash_ = 0;
  std::uint64_t dfcm_hash_ = 0;
  std::uint64_t last_value_ = 0;
};

}  // namespace

FpcCompressor::FpcCompressor(FpcOptions options) : options_(options) {
  if (options_.table_bits < 4 || options_.table_bits > 26) {
    throw std::invalid_argument("FpcCompressor: table_bits out of range");
  }
}

std::vector<std::uint8_t> FpcCompressor::compress(std::span<const double> data,
                                                  const Dims& dims) const {
  const obs::ScopedSpan span("codec/fpc");
  obs::count("codec.fpc.bytes_in", data.size() * sizeof(double));
  if (data.size() != dims.count()) {
    throw std::invalid_argument("FpcCompressor: data size does not match dims");
  }
  PredictorPair predictors(options_.table_bits);

  // Layout: header | packed 4-bit codes (selector+lzb) | residual bytes.
  std::vector<std::uint8_t> codes;
  codes.reserve((data.size() + 1) / 2);
  std::vector<std::uint8_t> residuals;
  residuals.reserve(data.size() * 4);

  std::uint8_t pending = 0;
  bool half_full = false;
  for (double value : data) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));

    const std::uint64_t xor_fcm = bits ^ predictors.fcm_prediction();
    const std::uint64_t xor_dfcm = bits ^ predictors.dfcm_prediction();
    predictors.update(bits);

    const bool use_dfcm = leading_zero_bytes(xor_dfcm) > leading_zero_bytes(xor_fcm);
    const std::uint64_t residual = use_dfcm ? xor_dfcm : xor_fcm;
    const unsigned lzb = lzb_from_code(code_from_lzb(leading_zero_bytes(residual)));
    const unsigned code =
        (use_dfcm ? 8u : 0u) | code_from_lzb(leading_zero_bytes(residual));

    if (half_full) {
      codes.push_back(static_cast<std::uint8_t>(pending | (code << 4)));
      half_full = false;
    } else {
      pending = static_cast<std::uint8_t>(code);
      half_full = true;
    }
    // Residual bytes, most significant non-zero byte first.
    for (unsigned b = 8 - lzb; b-- > 0;) {
      residuals.push_back(static_cast<std::uint8_t>(residual >> (8 * b)));
    }
  }
  if (half_full) codes.push_back(pending);

  std::vector<std::uint8_t> out;
  Header header{kMagic,
                static_cast<std::uint8_t>(options_.table_bits),
                {0, 0, 0},
                dims.nx,
                dims.ny,
                dims.nz};
  const auto* hb = reinterpret_cast<const std::uint8_t*>(&header);
  out.insert(out.end(), hb, hb + sizeof(header));
  const std::uint64_t code_bytes = codes.size();
  const auto* cb = reinterpret_cast<const std::uint8_t*>(&code_bytes);
  out.insert(out.end(), cb, cb + sizeof(code_bytes));
  out.insert(out.end(), codes.begin(), codes.end());
  out.insert(out.end(), residuals.begin(), residuals.end());
  obs::count("codec.fpc.bytes_out", out.size());
  return out;
}

std::vector<double> FpcCompressor::decompress(
    std::span<const std::uint8_t> stream) const {
  const obs::ScopedSpan span("codec/fpc");
  if (stream.size() < sizeof(Header) + sizeof(std::uint64_t)) {
    throw std::runtime_error("FPC decode: truncated stream");
  }
  Header header;
  std::memcpy(&header, stream.data(), sizeof(header));
  if (header.magic != kMagic) {
    throw std::runtime_error("FPC decode: bad magic");
  }
  const Dims dims{header.nx, header.ny, header.nz};
  const std::size_t count = dims.count();

  std::uint64_t code_bytes = 0;
  std::memcpy(&code_bytes, stream.data() + sizeof(header), sizeof(code_bytes));
  std::size_t code_offset = sizeof(header) + sizeof(code_bytes);
  std::size_t residual_offset = code_offset + code_bytes;
  if (residual_offset > stream.size()) {
    throw std::runtime_error("FPC decode: truncated code section");
  }

  PredictorPair predictors(header.table_bits);
  std::vector<double> out;
  out.reserve(count);

  for (std::size_t n = 0; n < count; ++n) {
    const std::uint8_t packed = stream[code_offset + n / 2];
    const unsigned code = (n % 2 == 0) ? (packed & 0x0f) : (packed >> 4);
    const bool use_dfcm = (code & 8) != 0;
    const unsigned lzb = lzb_from_code(code & 7);

    std::uint64_t residual = 0;
    const unsigned nbytes = 8 - lzb;
    if (residual_offset + nbytes > stream.size()) {
      throw std::runtime_error("FPC decode: truncated residuals");
    }
    for (unsigned b = 0; b < nbytes; ++b) {
      residual = (residual << 8) | stream[residual_offset++];
    }

    const std::uint64_t prediction =
        use_dfcm ? predictors.dfcm_prediction() : predictors.fcm_prediction();
    const std::uint64_t bits = prediction ^ residual;
    predictors.update(bits);

    double value;
    std::memcpy(&value, &bits, sizeof(value));
    out.push_back(value);
  }
  return out;
}

}  // namespace rmp::compress
