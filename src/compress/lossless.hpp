// Generic byte-oriented lossless backend: LZ77 token parsing followed by
// Huffman coding of the token stream (a "deflate-lite").
//
// This plays the role gzip/zlib plays behind SZ in the paper: it removes
// the redundancy left in quantization-code streams and is also used to
// squeeze container metadata.  If the compressed form would be larger than
// the input, the input is stored raw (1-byte mode prefix decides).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rmp::compress {

struct LosslessOptions {
  /// Maximum backwards distance the matcher searches (window size).
  std::uint32_t window = 1 << 16;
  /// Minimum match length worth emitting as a copy token.
  std::uint32_t min_match = 4;
  /// Maximum chain positions probed per input position.
  std::uint32_t max_chain = 32;
};

std::vector<std::uint8_t> lossless_compress(std::span<const std::uint8_t> input,
                                            const LosslessOptions& opts = {});

std::vector<std::uint8_t> lossless_decompress(std::span<const std::uint8_t> input);

}  // namespace rmp::compress
