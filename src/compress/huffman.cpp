#include "compress/huffman.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <queue>
#include <stdexcept>

namespace rmp::compress {
namespace {

constexpr unsigned kMaxCodeLength = 58;  // keeps codes within one uint64 write

struct TreeNode {
  std::uint64_t weight;
  std::uint32_t tiebreak;  // deterministic ordering
  std::int64_t symbol;     // -1 for internal nodes (int64: 0xffffffff is a
                           // valid symbol and must not alias the sentinel)
  std::int32_t left = -1;
  std::int32_t right = -1;
};

// Compute code lengths from a frequency map via an explicit Huffman tree.
// If the tree depth exceeds kMaxCodeLength, frequencies are flattened
// (halved, floored at 1) and the tree rebuilt; this terminates because the
// distribution converges to uniform.
std::map<std::uint32_t, std::uint8_t> code_lengths(
    std::map<std::uint32_t, std::uint64_t> freq) {
  if (freq.empty()) return {};
  if (freq.size() == 1) return {{freq.begin()->first, 1}};

  for (;;) {
    std::vector<TreeNode> nodes;
    nodes.reserve(freq.size() * 2);
    using QueueItem = std::pair<std::pair<std::uint64_t, std::uint32_t>, std::int32_t>;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
    for (const auto& [symbol, count] : freq) {
      nodes.push_back({count, symbol, static_cast<std::int64_t>(symbol)});
      queue.push({{count, symbol}, static_cast<std::int32_t>(nodes.size() - 1)});
    }
    std::uint32_t internal_tiebreak = 0;
    while (queue.size() > 1) {
      const auto a = queue.top(); queue.pop();
      const auto b = queue.top(); queue.pop();
      nodes.push_back({a.first.first + b.first.first, internal_tiebreak++, -1,
                       a.second, b.second});
      queue.push({{nodes.back().weight, nodes.back().tiebreak},
                  static_cast<std::int32_t>(nodes.size() - 1)});
    }

    std::map<std::uint32_t, std::uint8_t> lengths;
    unsigned max_depth = 0;
    // Iterative DFS to assign depths.
    std::vector<std::pair<std::int32_t, unsigned>> stack{{queue.top().second, 0}};
    while (!stack.empty()) {
      const auto [index, depth] = stack.back();
      stack.pop_back();
      const TreeNode& node = nodes[index];
      if (node.symbol >= 0) {
        lengths[static_cast<std::uint32_t>(node.symbol)] =
            static_cast<std::uint8_t>(std::max(1u, depth));
        max_depth = std::max(max_depth, std::max(1u, depth));
      } else {
        stack.push_back({node.left, depth + 1});
        stack.push_back({node.right, depth + 1});
      }
    }
    if (max_depth <= kMaxCodeLength) return lengths;
    for (auto& [symbol, count] : freq) count = std::max<std::uint64_t>(1, count >> 1);
  }
}

}  // namespace

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint32_t> symbols) {
  std::map<std::uint32_t, std::uint64_t> freq;
  for (std::uint32_t s : symbols) ++freq[s];
  const auto lengths = code_lengths(freq);

  entries_.reserve(lengths.size());
  for (const auto& [symbol, length] : lengths) {
    entries_.push_back({symbol, length, 0});
  }
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });

  // Assign canonical codes.
  std::uint64_t code = 0;
  std::uint8_t previous_length = entries_.empty() ? 0 : entries_.front().length;
  for (Entry& e : entries_) {
    code <<= (e.length - previous_length);
    e.code = code++;
    previous_length = e.length;
    max_length_ = std::max<unsigned>(max_length_, e.length);
  }

  // Dense lookup over the symbol range when compact, otherwise a sorted
  // index (a sparse alphabet like {0, 0xffffffff} must not allocate a
  // range-sized table).
  if (!entries_.empty()) {
    std::uint32_t lo = entries_.front().symbol, hi = lo;
    for (const Entry& e : entries_) {
      lo = std::min(lo, e.symbol);
      hi = std::max(hi, e.symbol);
    }
    const std::uint64_t range = std::uint64_t{hi} - lo + 1;
    if (range <= 4 * entries_.size() + 1024) {
      lookup_base_ = lo;
      lookup_.assign(static_cast<std::size_t>(range), -1);
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        lookup_[entries_[i].symbol - lookup_base_] =
            static_cast<std::int32_t>(i);
      }
    } else {
      sparse_lookup_.reserve(entries_.size());
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        sparse_lookup_.emplace_back(entries_[i].symbol,
                                    static_cast<std::int32_t>(i));
      }
      std::sort(sparse_lookup_.begin(), sparse_lookup_.end());
    }
  }
}

const HuffmanEncoder::Entry* HuffmanEncoder::find(std::uint32_t symbol) const {
  if (!lookup_.empty()) {
    if (symbol < lookup_base_ || symbol - lookup_base_ >= lookup_.size()) {
      return nullptr;
    }
    const std::int32_t index = lookup_[symbol - lookup_base_];
    return index < 0 ? nullptr : &entries_[index];
  }
  const auto it = std::lower_bound(
      sparse_lookup_.begin(), sparse_lookup_.end(),
      std::make_pair(symbol, std::int32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == sparse_lookup_.end() || it->first != symbol) return nullptr;
  return &entries_[it->second];
}

void HuffmanEncoder::write_table(BitWriter& writer) const {
  writer.put_bits(entries_.size(), 32);
  for (const Entry& e : entries_) {
    writer.put_bits(e.symbol, 32);
    writer.put_bits(e.length, 6);
  }
}

void HuffmanEncoder::write_symbol(BitWriter& writer, std::uint32_t symbol) const {
  const Entry* e = find(symbol);
  if (e == nullptr) {
    throw std::out_of_range("HuffmanEncoder: symbol not in code table");
  }
  // Codes are canonical MSB-first; emit bits from the top.
  for (int bit = e->length - 1; bit >= 0; --bit) {
    writer.put_bit((e->code >> bit) & 1);
  }
}

HuffmanDecoder::HuffmanDecoder(BitReader& reader) {
  const auto count = static_cast<std::size_t>(reader.get_bits(32));
  struct Pair {
    std::uint32_t symbol;
    std::uint8_t length;
  };
  std::vector<Pair> pairs(count);
  for (auto& p : pairs) {
    p.symbol = static_cast<std::uint32_t>(reader.get_bits(32));
    p.length = static_cast<std::uint8_t>(reader.get_bits(6));
    max_length_ = std::max<unsigned>(max_length_, p.length);
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });

  if (count == 1) {
    single_symbol_ = true;
    only_symbol_ = pairs.front().symbol;
  }

  first_code_.assign(max_length_ + 1, 0);
  first_index_.assign(max_length_ + 1, 0);
  std::vector<std::uint64_t> counts(max_length_ + 1, 0);
  for (const auto& p : pairs) ++counts[p.length];

  std::uint64_t code = 0, index = 0;
  for (unsigned len = 1; len <= max_length_; ++len) {
    code <<= 1;
    first_code_[len] = code;
    first_index_[len] = index;
    code += counts[len];
    index += counts[len];
  }
  symbols_.reserve(count);
  for (const auto& p : pairs) symbols_.push_back(p.symbol);

  // Build the fast table: every code of length <= kFastBits fills all
  // entries sharing its (bit-reversed, LSB-first) prefix.
  if (!single_symbol_ && count > 0) {
    fast_table_.assign(std::size_t{1} << kFastBits, FastEntry{});
    std::uint64_t canonical = 0;
    std::uint8_t previous_length = pairs.front().length;
    for (const auto& p : pairs) {
      canonical <<= (p.length - previous_length);
      previous_length = p.length;
      const std::uint64_t code_value = canonical++;
      if (p.length > kFastBits) continue;
      // LSB-first index prefix = bit-reverse of the MSB-first code.
      std::uint64_t reversed = 0;
      for (unsigned b = 0; b < p.length; ++b) {
        reversed |= ((code_value >> (p.length - 1 - b)) & 1u) << b;
      }
      const std::size_t suffixes = std::size_t{1}
                                   << (kFastBits - p.length);
      for (std::size_t s = 0; s < suffixes; ++s) {
        fast_table_[reversed | (s << p.length)] = {p.symbol, p.length};
      }
    }
  }
}

std::uint32_t HuffmanDecoder::read_symbol(BitReader& reader) const {
  if (single_symbol_) {
    reader.get_bit();  // consume the 1-bit placeholder code
    return only_symbol_;
  }
  if (!fast_table_.empty()) {
    const auto prefix =
        static_cast<std::size_t>(reader.peek_bits(kFastBits));
    const FastEntry& entry = fast_table_[prefix];
    if (entry.length > 0) {
      reader.skip_bits(entry.length);
      return entry.symbol;
    }
  }
  return read_symbol_slow(reader);
}

std::uint32_t HuffmanDecoder::read_symbol_slow(BitReader& reader) const {
  std::uint64_t code = 0;
  for (unsigned len = 1; len <= max_length_; ++len) {
    code = (code << 1) | (reader.get_bit() ? 1 : 0);
    // A code of length `len` is valid when it falls inside this length's
    // canonical range.
    const std::uint64_t offset = code - first_code_[len];
    const std::uint64_t available =
        (len < max_length_ ? first_index_[len + 1] : symbols_.size()) -
        first_index_[len];
    if (code >= first_code_[len] && offset < available) {
      return symbols_[first_index_[len] + offset];
    }
  }
  throw std::runtime_error("HuffmanDecoder: invalid code in stream");
}

std::vector<std::uint8_t> huffman_encode(std::span<const std::uint32_t> symbols) {
  BitWriter writer;
  writer.put_bits(symbols.size(), 64);
  if (!symbols.empty()) {
    HuffmanEncoder encoder(symbols);
    encoder.write_table(writer);
    for (std::uint32_t s : symbols) encoder.write_symbol(writer, s);
  }
  return writer.take();
}

std::vector<std::uint32_t> huffman_decode(std::span<const std::uint8_t> bytes) {
  BitReader reader(bytes);
  const auto count = static_cast<std::size_t>(reader.get_bits(64));
  std::vector<std::uint32_t> symbols;
  symbols.reserve(count);
  if (count > 0) {
    HuffmanDecoder decoder(reader);
    for (std::size_t i = 0; i < count; ++i) {
      symbols.push_back(decoder.read_symbol(reader));
    }
  }
  return symbols;
}

}  // namespace rmp::compress
