#include "compress/huffman.hpp"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <stdexcept>
#include <utility>

#include "compress/codec_error.hpp"

namespace rmp::compress {
namespace {

constexpr unsigned kMaxCodeLength = 58;  // keeps codes within one uint64 write
// Serialized size of one table entry: 32-bit symbol + 6-bit length.
constexpr unsigned kTableEntryBits = 38;

struct TreeNode {
  std::uint64_t weight;
  std::uint32_t tiebreak;  // deterministic ordering
  std::int64_t symbol;     // -1 for internal nodes (int64: 0xffffffff is a
                           // valid symbol and must not alias the sentinel)
  std::int32_t left = -1;
  std::int32_t right = -1;
};

using FrequencyTable = std::vector<std::pair<std::uint32_t, std::uint64_t>>;

// Histogram of `symbols`, returned sorted by symbol value.  A dense
// counting pass covers the common compact alphabets (quantization codes,
// LZ tokens); sparse huge alphabets ({0, 0xffffffff}) sort-and-run-length
// instead of allocating a range-sized table.  Sorted output keeps the
// tree construction order -- and therefore the emitted code table --
// identical to the historical std::map-based implementation.
FrequencyTable count_frequencies(std::span<const std::uint32_t> symbols) {
  FrequencyTable freq;
  if (symbols.empty()) return freq;
  std::uint32_t lo = symbols[0], hi = symbols[0];
  for (std::uint32_t s : symbols) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const std::uint64_t range = std::uint64_t{hi} - lo + 1;
  if (range <= 4 * static_cast<std::uint64_t>(symbols.size()) + 65536) {
    std::vector<std::uint64_t> hist(static_cast<std::size_t>(range), 0);
    for (std::uint32_t s : symbols) ++hist[s - lo];
    for (std::size_t i = 0; i < hist.size(); ++i) {
      if (hist[i] > 0) freq.emplace_back(lo + static_cast<std::uint32_t>(i), hist[i]);
    }
  } else {
    std::vector<std::uint32_t> sorted(symbols.begin(), symbols.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size();) {
      std::size_t j = i;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      freq.emplace_back(sorted[i], j - i);
      i = j;
    }
  }
  return freq;
}

// Compute code lengths from a symbol-sorted frequency table via an
// explicit Huffman tree.  If the tree depth exceeds kMaxCodeLength,
// frequencies are flattened (halved, floored at 1) and the tree rebuilt;
// this terminates because the distribution converges to uniform.
std::vector<std::pair<std::uint32_t, std::uint8_t>> code_lengths(
    FrequencyTable freq) {
  if (freq.empty()) return {};
  if (freq.size() == 1) return {{freq.front().first, 1}};

  for (;;) {
    // Two-queue Huffman merge instead of a binary heap.  Leaves sorted by
    // (weight, symbol) form one queue; internal nodes are created with
    // nondecreasing (weight, tiebreak), so a FIFO of them stays sorted
    // too.  Popping whichever front compares smaller by (weight, tiebreak)
    // therefore visits nodes in exactly the order the historical
    // priority_queue did, producing the identical tree in O(n log n) sort
    // plus O(n) merge.
    std::vector<TreeNode> nodes;
    nodes.reserve(freq.size() * 2);
    std::vector<std::int32_t> leaf_order(freq.size());
    for (std::size_t i = 0; i < freq.size(); ++i) {
      nodes.push_back({freq[i].second, freq[i].first,
                       static_cast<std::int64_t>(freq[i].first)});
      leaf_order[i] = static_cast<std::int32_t>(i);
    }
    std::sort(leaf_order.begin(), leaf_order.end(),
              [&](std::int32_t x, std::int32_t y) {
                return nodes[x].weight != nodes[y].weight
                           ? nodes[x].weight < nodes[y].weight
                           : nodes[x].tiebreak < nodes[y].tiebreak;
              });
    std::size_t leaf_head = 0;
    std::vector<std::int32_t> merged;
    merged.reserve(freq.size());
    std::size_t merged_head = 0;
    std::uint32_t internal_tiebreak = 0;
    auto pop_min = [&]() -> std::int32_t {
      const bool have_leaf = leaf_head < leaf_order.size();
      const bool have_merged = merged_head < merged.size();
      if (have_leaf && have_merged) {
        const TreeNode& a = nodes[leaf_order[leaf_head]];
        const TreeNode& b = nodes[merged[merged_head]];
        const bool leaf_first = a.weight != b.weight
                                    ? a.weight < b.weight
                                    : a.tiebreak < b.tiebreak;
        return leaf_first ? leaf_order[leaf_head++] : merged[merged_head++];
      }
      return have_leaf ? leaf_order[leaf_head++] : merged[merged_head++];
    };
    std::int32_t root = leaf_order.front();
    while ((leaf_order.size() - leaf_head) + (merged.size() - merged_head) > 1) {
      const std::int32_t a = pop_min();
      const std::int32_t b = pop_min();
      nodes.push_back({nodes[a].weight + nodes[b].weight, internal_tiebreak++,
                       -1, a, b});
      merged.push_back(static_cast<std::int32_t>(nodes.size() - 1));
      root = merged.back();
    }

    std::vector<std::pair<std::uint32_t, std::uint8_t>> lengths;
    lengths.reserve(freq.size());
    unsigned max_depth = 0;
    // Iterative DFS to assign depths.
    std::vector<std::pair<std::int32_t, unsigned>> stack{{root, 0}};
    while (!stack.empty()) {
      const auto [index, depth] = stack.back();
      stack.pop_back();
      const TreeNode& node = nodes[index];
      if (node.symbol >= 0) {
        lengths.emplace_back(static_cast<std::uint32_t>(node.symbol),
                             static_cast<std::uint8_t>(std::max(1u, depth)));
        max_depth = std::max(max_depth, std::max(1u, depth));
      } else {
        stack.push_back({node.left, depth + 1});
        stack.push_back({node.right, depth + 1});
      }
    }
    if (max_depth <= kMaxCodeLength) return lengths;
    for (auto& [symbol, count] : freq) count = std::max<std::uint64_t>(1, count >> 1);
  }
}

// Bit-reverse the low `length` bits of `code`.
std::uint64_t reverse_code(std::uint64_t code, unsigned length) {
  std::uint64_t reversed = 0;
  for (unsigned b = 0; b < length; ++b) {
    reversed |= ((code >> b) & 1u) << (length - 1 - b);
  }
  return reversed;
}

}  // namespace

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint32_t> symbols) {
  const auto lengths = code_lengths(count_frequencies(symbols));

  entries_.reserve(lengths.size());
  for (const auto& [symbol, length] : lengths) {
    entries_.push_back({symbol, length, 0, 0});
  }
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });

  // Assign canonical codes.  The pre-reversed copy lets write_symbol emit
  // the whole MSB-first code as one LSB-first put_bits batch.
  std::uint64_t code = 0;
  std::uint8_t previous_length = entries_.empty() ? 0 : entries_.front().length;
  for (Entry& e : entries_) {
    code <<= (e.length - previous_length);
    e.code = code++;
    e.reversed = reverse_code(e.code, e.length);
    previous_length = e.length;
    max_length_ = std::max<unsigned>(max_length_, e.length);
  }

  // Dense lookup over the symbol range when compact, otherwise a sorted
  // index (a sparse alphabet like {0, 0xffffffff} must not allocate a
  // range-sized table).
  if (!entries_.empty()) {
    std::uint32_t lo = entries_.front().symbol, hi = lo;
    for (const Entry& e : entries_) {
      lo = std::min(lo, e.symbol);
      hi = std::max(hi, e.symbol);
    }
    const std::uint64_t range = std::uint64_t{hi} - lo + 1;
    // The 64 KiB floor keeps every 16-bit-quantizer alphabet on the O(1)
    // dense path; beyond it the table must still be within a small factor
    // of the alphabet so {0, 0xffffffff} stays sparse.
    if (range <= 4 * entries_.size() + 65536) {
      lookup_base_ = lo;
      lookup_.assign(static_cast<std::size_t>(range), -1);
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        lookup_[entries_[i].symbol - lookup_base_] =
            static_cast<std::int32_t>(i);
      }
    } else {
      sparse_lookup_.reserve(entries_.size());
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        sparse_lookup_.emplace_back(entries_[i].symbol,
                                    static_cast<std::int32_t>(i));
      }
      std::sort(sparse_lookup_.begin(), sparse_lookup_.end());
    }
  }
}

const HuffmanEncoder::Entry* HuffmanEncoder::find(std::uint32_t symbol) const {
  if (!lookup_.empty()) {
    if (symbol < lookup_base_ || symbol - lookup_base_ >= lookup_.size()) {
      return nullptr;
    }
    const std::int32_t index = lookup_[symbol - lookup_base_];
    return index < 0 ? nullptr : &entries_[index];
  }
  const auto it = std::lower_bound(
      sparse_lookup_.begin(), sparse_lookup_.end(),
      std::make_pair(symbol, std::int32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == sparse_lookup_.end() || it->first != symbol) return nullptr;
  return &entries_[it->second];
}

void HuffmanEncoder::write_table(BitWriter& writer) const {
  writer.put_bits(entries_.size(), 32);
  for (const Entry& e : entries_) {
    writer.put_bits(e.symbol, 32);
    writer.put_bits(e.length, 6);
  }
}

void HuffmanEncoder::write_symbol(BitWriter& writer, std::uint32_t symbol) const {
  const Entry* e = find(symbol);
  if (e == nullptr) {
    throw std::out_of_range("HuffmanEncoder: symbol not in code table");
  }
  // Codes are canonical MSB-first; the stored bit-reversed copy emitted
  // LSB-first reproduces exactly the bits the historical per-bit loop
  // wrote, in one batched call.
  writer.put_bits(e->reversed, e->length);
}

HuffmanDecoder::HuffmanDecoder(BitReader& reader) {
  if (reader.exhausted(32)) {
    throw CodecError(CodecErrc::kTruncated, "huffman: table size truncated");
  }
  const std::uint64_t count64 = reader.get_bits(32);
  // Size cap before allocation: every serialized entry costs 38 bits, so
  // a count the remaining input cannot hold is hostile.  Reject with a
  // typed error instead of letting vector(count) die with bad_alloc.
  if (count64 > reader.remaining_bits() / kTableEntryBits) {
    throw CodecError(CodecErrc::kCountOverflow,
                     "huffman: table entry count exceeds input budget");
  }
  const auto count = static_cast<std::size_t>(count64);
  struct Pair {
    std::uint32_t symbol;
    std::uint8_t length;
  };
  std::vector<Pair> pairs(count);
  std::uint64_t kraft = 0;
  for (auto& p : pairs) {
    p.symbol = static_cast<std::uint32_t>(reader.get_bits(32));
    p.length = static_cast<std::uint8_t>(reader.get_bits(6));
    if (p.length == 0 || p.length > kMaxCodeLength) {
      throw CodecError(CodecErrc::kMalformedTable,
                       "huffman: code length outside [1, 58]");
    }
    // Kraft sum in units of 2^-kMaxCodeLength: an overfull table would
    // corrupt the canonical-code reconstruction below.
    kraft += std::uint64_t{1} << (kMaxCodeLength - p.length);
    if (kraft > (std::uint64_t{1} << kMaxCodeLength)) {
      throw CodecError(CodecErrc::kMalformedTable,
                       "huffman: code lengths violate the Kraft inequality");
    }
    max_length_ = std::max<unsigned>(max_length_, p.length);
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });

  if (count == 1) {
    if (pairs.front().length != 1) {
      throw CodecError(CodecErrc::kMalformedTable,
                       "huffman: single-symbol table must use length 1");
    }
    single_symbol_ = true;
    only_symbol_ = pairs.front().symbol;
  }

  first_code_.assign(max_length_ + 1, 0);
  first_index_.assign(max_length_ + 1, 0);
  std::vector<std::uint64_t> counts(max_length_ + 1, 0);
  for (const auto& p : pairs) ++counts[p.length];

  std::uint64_t code = 0, index = 0;
  for (unsigned len = 1; len <= max_length_; ++len) {
    code <<= 1;
    first_code_[len] = code;
    first_index_[len] = index;
    code += counts[len];
    index += counts[len];
  }
  symbols_.reserve(count);
  for (const auto& p : pairs) symbols_.push_back(p.symbol);

  // Build the fast table: every code of length <= kFastBits fills all
  // entries sharing its (bit-reversed, LSB-first) prefix.
  if (!single_symbol_ && count > 0) {
    fast_table_.assign(std::size_t{1} << kFastBits, FastEntry{});
    std::uint64_t canonical = 0;
    std::uint8_t previous_length = pairs.front().length;
    for (const auto& p : pairs) {
      canonical <<= (p.length - previous_length);
      previous_length = p.length;
      const std::uint64_t code_value = canonical++;
      if (p.length > kFastBits) continue;
      // LSB-first index prefix = bit-reverse of the MSB-first code.
      const std::uint64_t reversed = reverse_code(code_value, p.length);
      const std::size_t suffixes = std::size_t{1}
                                   << (kFastBits - p.length);
      for (std::size_t s = 0; s < suffixes; ++s) {
        FastEntry& entry = fast_table_[reversed | (s << p.length)];
        entry.symbol0 = p.symbol;
        entry.length0 = p.length;
        entry.total_bits = p.length;
        entry.count = 1;
      }
    }
    // Second pass: chain a second symbol into every window with room.
    // fast_table_[w >> length0] describes the window that starts after
    // the first code; its own first code is trustworthy only when it
    // fits inside the remaining real bits (the shifted-in high zeros are
    // not stream bits).
    for (std::size_t w = 0; w < fast_table_.size(); ++w) {
      FastEntry& entry = fast_table_[w];
      if (entry.count != 1 || entry.length0 >= kFastBits) continue;
      const FastEntry& next = fast_table_[w >> entry.length0];
      if (next.count >= 1 && next.length0 <= kFastBits - entry.length0) {
        entry.symbol1 = next.symbol0;
        entry.total_bits = static_cast<std::uint8_t>(entry.length0 + next.length0);
        entry.count = 2;
      }
    }
  }
}

std::uint32_t HuffmanDecoder::read_symbol(BitReader& reader) const {
  if (single_symbol_) {
    if (reader.exhausted(1)) {
      throw CodecError(CodecErrc::kTruncated, "huffman: stream ends mid-code");
    }
    reader.skip_bits(1);  // the 1-bit placeholder code
    return only_symbol_;
  }
  if (!fast_table_.empty()) {
    const auto prefix =
        static_cast<std::size_t>(reader.peek_bits(kFastBits));
    const FastEntry& entry = fast_table_[prefix];
    if (entry.count != 0) {
      // peek_bits zero-fills past the end, so a truncated stream could
      // otherwise match a zero-prefixed code and fabricate symbols.
      if (reader.exhausted(entry.length0)) {
        throw CodecError(CodecErrc::kTruncated, "huffman: stream ends mid-code");
      }
      reader.skip_bits(entry.length0);
      return entry.symbol0;
    }
  }
  return read_symbol_slow(reader);
}

unsigned HuffmanDecoder::read_symbol_pair(BitReader& reader,
                                          std::uint32_t out[2]) const {
  if (single_symbol_) {
    if (!reader.exhausted(2)) {
      reader.skip_bits(2);
      out[0] = only_symbol_;
      out[1] = only_symbol_;
      return 2;
    }
    out[0] = read_symbol(reader);  // typed-checks the final placeholder bit
    return 1;
  }
  if (!fast_table_.empty()) {
    const auto prefix =
        static_cast<std::size_t>(reader.peek_bits(kFastBits));
    const FastEntry& entry = fast_table_[prefix];
    if (entry.count == 2 && !reader.exhausted(entry.total_bits)) {
      reader.skip_bits(entry.total_bits);
      out[0] = entry.symbol0;
      out[1] = entry.symbol1;
      return 2;
    }
    if (entry.count != 0) {
      if (reader.exhausted(entry.length0)) {
        throw CodecError(CodecErrc::kTruncated, "huffman: stream ends mid-code");
      }
      reader.skip_bits(entry.length0);
      out[0] = entry.symbol0;
      return 1;
    }
  }
  out[0] = read_symbol_slow(reader);
  return 1;
}

std::uint32_t HuffmanDecoder::read_symbol_slow(BitReader& reader) const {
  // One zero-filled peek replaces the historical per-bit reads; the reader
  // position still advances exactly as the bit-by-bit walk did on every
  // outcome, including the throwing ones.
  const std::size_t remaining = reader.remaining_bits();
  const std::uint64_t window = reader.peek_bits(static_cast<unsigned>(
      std::min<std::size_t>(kMaxCodeLength, remaining)));
  std::uint64_t code = 0;
  for (unsigned len = 1; len <= max_length_; ++len) {
    if (len > remaining) {
      reader.skip_bits(static_cast<unsigned>(len - 1));
      throw CodecError(CodecErrc::kTruncated, "huffman: stream ends mid-code");
    }
    code = (code << 1) | ((window >> (len - 1)) & 1u);
    // A code of length `len` is valid when it falls inside this length's
    // canonical range.
    const std::uint64_t offset = code - first_code_[len];
    const std::uint64_t available =
        (len < max_length_ ? first_index_[len + 1] : symbols_.size()) -
        first_index_[len];
    if (code >= first_code_[len] && offset < available) {
      reader.skip_bits(len);
      return symbols_[first_index_[len] + offset];
    }
  }
  reader.skip_bits(max_length_);
  throw CodecError(CodecErrc::kInvalidCode, "huffman: invalid code in stream");
}

std::vector<std::uint8_t> huffman_encode(std::span<const std::uint32_t> symbols) {
  BitWriter writer;
  writer.put_bits(symbols.size(), 64);
  if (!symbols.empty()) {
    HuffmanEncoder encoder(symbols);
    encoder.write_table(writer);
    for (std::uint32_t s : symbols) encoder.write_symbol(writer, s);
  }
  return writer.take();
}

std::vector<std::uint32_t> huffman_decode(std::span<const std::uint8_t> bytes) {
  BitReader reader(bytes);
  if (reader.exhausted(64)) {
    throw CodecError(CodecErrc::kTruncated, "huffman: symbol count truncated");
  }
  const std::uint64_t count64 = reader.get_bits(64);
  // Size cap before allocation: every coded symbol costs at least one
  // bit, so a count beyond the remaining bit budget is hostile.
  if (count64 > reader.remaining_bits()) {
    throw CodecError(CodecErrc::kCountOverflow,
                     "huffman: symbol count exceeds input budget");
  }
  const auto count = static_cast<std::size_t>(count64);
  std::vector<std::uint32_t> symbols;
  if (count > 0) {
    HuffmanDecoder decoder(reader);
    symbols.resize(count);
    std::uint32_t* out = symbols.data();
    std::size_t i = 0;
    std::uint32_t pair[2];
    while (i + 2 <= count) {
      const unsigned got = decoder.read_symbol_pair(reader, pair);
      out[i] = pair[0];
      if (got == 2) out[i + 1] = pair[1];
      i += got;
    }
    for (; i < count; ++i) out[i] = decoder.read_symbol(reader);
  }
  return symbols;
}

}  // namespace rmp::compress
