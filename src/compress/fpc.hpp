// FPC-like lossless double-precision compressor (Burtscher &
// Ratanaworabhan, IEEE ToC 2009) -- the lossless comparator in the paper's
// Fig. 3 evaluation.
//
// Each value is predicted by two hash-table predictors, FCM and DFCM; the
// better prediction (more leading zero bytes after XOR) is selected with a
// 1-bit flag, a 3-bit leading-zero-byte count follows, and only the
// non-zero residual bytes are stored.
#pragma once

#include "compress/compressor.hpp"

namespace rmp::compress {

struct FpcOptions {
  /// Hash tables hold 2^table_bits entries each (paper runs "level 20").
  unsigned table_bits = 20;
};

class FpcCompressor final : public Compressor {
 public:
  explicit FpcCompressor(FpcOptions options = {});

  std::string name() const override { return "fpc"; }
  bool lossless() const override { return true; }

  std::vector<std::uint8_t> compress(std::span<const double> data,
                                     const Dims& dims) const override;
  std::vector<double> decompress(
      std::span<const std::uint8_t> stream) const override;

 private:
  FpcOptions options_;
};

}  // namespace rmp::compress
