#include "compress/lossless.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "compress/bitstream.hpp"
#include "compress/codec_error.hpp"
#include "compress/huffman.hpp"

namespace rmp::compress {
namespace {

constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeLz = 1;

// Token alphabet: 0..255 literal bytes; 256 + b encodes a match whose
// length bucket is b.  Length/distance extra bits follow the token inline.
constexpr std::uint32_t kMatchBase = 256;
constexpr std::uint32_t kLenBuckets = 16;   // bucket b covers lengths with b extra bits
constexpr std::uint32_t kEndOfStream = kMatchBase + kLenBuckets;

struct Token {
  std::uint32_t symbol;
  std::uint32_t extra;        // value of the extra bits
  unsigned extra_bits;
  std::uint32_t distance;     // 0 for literals
};

unsigned bit_width(std::uint32_t v) {
  unsigned w = 0;
  while (v > 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of 3 bytes; 16-bit table index.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> 16;
}

// Length of the common prefix of a[0..limit) and b[0..limit): the same
// first-mismatch the historical byte loop found, located eight bytes per
// probe on little-endian hosts.
std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t limit) {
  std::size_t len = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (len + 8 <= limit) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, a + len, 8);
    std::memcpy(&wb, b + len, 8);
    const std::uint64_t diff = wa ^ wb;
    if (diff != 0) {
      return len + (static_cast<std::size_t>(std::countr_zero(diff)) >> 3);
    }
    len += 8;
  }
#endif
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

// Index is int32 for inputs that fit (halves the hash-table footprint and
// the per-call zero-fill) and int64 beyond that.
template <typename Index>
std::vector<Token> parse_tokens_impl(std::span<const std::uint8_t> input,
                                     const LosslessOptions& opts) {
  std::vector<Token> tokens;
  const std::size_t n = input.size();
  // Hash-head + chain tables for match search.
  std::vector<Index> head(1 << 16, Index{-1});
  std::vector<Index> prev(n, Index{-1});

  std::size_t i = 0;
  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + 3 <= n) {
      const std::uint32_t h = hash3(input.data() + i);
      Index candidate = head[h];
      std::uint32_t probes = 0;
      const std::size_t limit = n - i;
      const std::uint8_t* here = input.data() + i;
      while (candidate >= 0 && probes < opts.max_chain &&
             i - static_cast<std::size_t>(candidate) <= opts.window) {
        const std::size_t pos = static_cast<std::size_t>(candidate);
        // A candidate can only beat best_len if it also matches at index
        // best_len; one byte-compare rejects most losers without a scan.
        // Selection is unchanged: ties keep the earlier (nearer) match.
        if (best_len >= limit) break;
        const std::uint8_t* there = input.data() + pos;
        if (there[best_len] == here[best_len]) {
          const std::size_t len = match_length(there, here, limit);
          if (len > best_len) {
            best_len = len;
            best_dist = i - pos;
          }
        }
        candidate = prev[pos];
        ++probes;
      }
    }

    if (best_len >= opts.min_match) {
      const std::uint32_t len_code =
          static_cast<std::uint32_t>(best_len - opts.min_match);
      const unsigned bucket = bit_width(len_code + 1) - 1;  // Elias-gamma bucket
      const std::uint32_t extra =
          len_code + 1 - (std::uint32_t{1} << bucket);      // offset in bucket
      tokens.push_back({kMatchBase + bucket, extra, bucket,
                        static_cast<std::uint32_t>(best_dist)});
      // Insert hash entries for every covered position so later matches can
      // reference them.
      const std::size_t end = i + best_len;
      while (i < end) {
        if (i + 3 <= n) {
          const std::uint32_t h = hash3(input.data() + i);
          prev[i] = head[h];
          head[h] = static_cast<Index>(i);
        }
        ++i;
      }
    } else {
      tokens.push_back({input[i], 0, 0, 0});
      if (i + 3 <= n) {
        const std::uint32_t h = hash3(input.data() + i);
        prev[i] = head[h];
        head[h] = static_cast<Index>(i);
      }
      ++i;
    }
  }
  tokens.push_back({kEndOfStream, 0, 0, 0});
  return tokens;
}

std::vector<Token> parse_tokens(std::span<const std::uint8_t> input,
                                const LosslessOptions& opts) {
  if (input.size() < static_cast<std::size_t>(
                         std::numeric_limits<std::int32_t>::max())) {
    return parse_tokens_impl<std::int32_t>(input, opts);
  }
  return parse_tokens_impl<std::int64_t>(input, opts);
}

}  // namespace

std::vector<std::uint8_t> lossless_compress(std::span<const std::uint8_t> input,
                                            const LosslessOptions& opts) {
  std::vector<std::uint8_t> lz;
  if (!input.empty()) {
    const auto tokens = parse_tokens(input, opts);

    std::vector<std::uint32_t> symbols;
    symbols.reserve(tokens.size());
    for (const Token& t : tokens) symbols.push_back(t.symbol);

    BitWriter writer;
    writer.put_bits(input.size(), 64);
    writer.put_bits(opts.min_match, 8);
    HuffmanEncoder encoder(symbols);
    encoder.write_table(writer);
    for (const Token& t : tokens) {
      encoder.write_symbol(writer, t.symbol);
      if (t.symbol >= kMatchBase && t.symbol < kEndOfStream) {
        writer.put_bits(t.extra, t.extra_bits);
        // Distances are coded as a 5-bit width followed by that many bits.
        const unsigned dist_bits = bit_width(t.distance);
        writer.put_bits(dist_bits, 5);
        writer.put_bits(t.distance, dist_bits);
      }
    }
    lz = writer.take();
  } else {
    BitWriter writer;
    writer.put_bits(0, 64);
    lz = writer.take();
  }

  std::vector<std::uint8_t> out;
  if (lz.size() + 1 < input.size() + 1 && !input.empty()) {
    out.reserve(lz.size() + 1);
    out.push_back(kModeLz);
    out.insert(out.end(), lz.begin(), lz.end());
  } else {
    out.reserve(input.size() + 9);
    out.push_back(kModeRaw);
    std::uint64_t size = input.size();
    const auto* sz = reinterpret_cast<const std::uint8_t*>(&size);
    out.insert(out.end(), sz, sz + 8);
    out.insert(out.end(), input.begin(), input.end());
  }
  return out;
}

std::vector<std::uint8_t> lossless_decompress(std::span<const std::uint8_t> input) {
  if (input.empty()) {
    throw CodecError(CodecErrc::kTruncated, "lossless_decompress: empty input");
  }
  const std::uint8_t mode = input[0];
  const auto payload = input.subspan(1);

  if (mode == kModeRaw) {
    if (payload.size() < 8) {
      throw CodecError(CodecErrc::kTruncated,
                       "lossless_decompress: truncated raw header");
    }
    std::uint64_t size = 0;
    std::memcpy(&size, payload.data(), 8);
    if (payload.size() - 8 < size) {
      throw CodecError(CodecErrc::kTruncated,
                       "lossless_decompress: truncated raw payload");
    }
    return {payload.begin() + 8, payload.begin() + 8 + size};
  }
  if (mode != kModeLz) {
    throw CodecError(CodecErrc::kMalformedStream,
                     "lossless_decompress: unknown mode byte");
  }

  BitReader reader(payload);
  if (reader.exhausted(64 + 8)) {
    throw CodecError(CodecErrc::kTruncated,
                     "lossless_decompress: truncated LZ header");
  }
  const auto original_size = static_cast<std::size_t>(reader.get_bits(64));
  std::vector<std::uint8_t> out;
  // The declared size is stream-controlled: cap the upfront reservation so
  // a hostile header cannot force a huge allocation before any token is
  // validated.  LZ can legitimately expand far beyond the input, so the
  // decode itself still honors original_size -- the vector just grows.
  out.reserve(std::min<std::size_t>(original_size, payload.size() * 64 + 4096));
  if (original_size == 0) return out;
  const auto min_match = static_cast<std::uint32_t>(reader.get_bits(8));

  HuffmanDecoder decoder(reader);
  for (;;) {
    const std::uint32_t symbol = decoder.read_symbol(reader);
    if (symbol == kEndOfStream) break;
    if (symbol < kMatchBase) {
      out.push_back(static_cast<std::uint8_t>(symbol));
      continue;
    }
    const unsigned bucket = symbol - kMatchBase;
    if (reader.exhausted(bucket + 5)) {
      throw CodecError(CodecErrc::kTruncated,
                       "lossless_decompress: stream ends mid-token");
    }
    const std::uint32_t extra =
        static_cast<std::uint32_t>(reader.get_bits(bucket));
    const std::uint32_t len_code = (std::uint32_t{1} << bucket) + extra - 1;
    const unsigned dist_bits = static_cast<unsigned>(reader.get_bits(5));
    if (reader.exhausted(dist_bits)) {
      throw CodecError(CodecErrc::kTruncated,
                       "lossless_decompress: stream ends mid-token");
    }
    const std::uint32_t distance =
        static_cast<std::uint32_t>(reader.get_bits(dist_bits));
    const std::size_t length = len_code + min_match;
    if (distance == 0 || distance > out.size()) {
      throw CodecError(CodecErrc::kMalformedStream,
                       "lossless_decompress: invalid match distance");
    }
    if (out.size() + length > original_size) {
      throw CodecError(CodecErrc::kMalformedStream,
                       "lossless_decompress: output exceeds declared size");
    }
    const std::size_t start = out.size() - distance;
    out.resize(out.size() + length);
    std::uint8_t* dst = out.data() + start + distance;
    const std::uint8_t* src = out.data() + start;
    if (distance >= length) {
      std::memcpy(dst, src, length);
    } else {
      // Overlapping run (e.g. distance 1 = byte fill): byte-serial copy
      // reproduces the historical push_back semantics exactly.
      for (std::size_t k = 0; k < length; ++k) dst[k] = src[k];
    }
  }
  if (out.size() != original_size) {
    throw CodecError(CodecErrc::kMalformedStream,
                     "lossless_decompress: size mismatch");
  }
  return out;
}

}  // namespace rmp::compress
