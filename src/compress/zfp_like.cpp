#include "compress/zfp_like.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "compress/bitstream.hpp"
#include "obs/obs.hpp"

namespace rmp::compress {
namespace {

constexpr std::uint32_t kMagic = 0x3150465A;  // "ZFP1"
constexpr unsigned kIntPrec = 64;             // bit planes per coefficient
constexpr int kExponentBias = 2048;           // 12-bit biased block exponent
constexpr std::uint64_t kNbMask = 0xaaaaaaaaaaaaaaaaULL;

struct Header {
  std::uint32_t magic;
  std::uint8_t mode;
  std::uint8_t precision;
  std::uint16_t reserved;
  double tolerance;
  std::uint64_t nx, ny, nz;
};

// ---------------------------------------------------------------------------
// Fixed-point conversion

int value_exponent(double v) {
  if (v == 0.0) return -kExponentBias;
  int e;
  std::frexp(std::fabs(v), &e);
  return e;
}

std::int64_t to_fixed(double v, int emax) {
  // |v| < 2^emax implies |result| <= 2^61, leaving headroom for the
  // transform's range expansion.
  return static_cast<std::int64_t>(std::ldexp(v, 61 - emax));
}

double from_fixed(std::int64_t q, int emax) {
  return std::ldexp(static_cast<double>(q), emax - 61);
}

// ---------------------------------------------------------------------------
// ZFP lifting transform on 4-vectors (strided access into the block)

void forward_lift(std::int64_t* p, std::size_t stride) {
  std::int64_t x = p[0 * stride];
  std::int64_t y = p[1 * stride];
  std::int64_t z = p[2 * stride];
  std::int64_t w = p[3 * stride];

  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;

  p[0 * stride] = x;
  p[1 * stride] = y;
  p[2 * stride] = z;
  p[3 * stride] = w;
}

void inverse_lift(std::int64_t* p, std::size_t stride) {
  std::int64_t x = p[0 * stride];
  std::int64_t y = p[1 * stride];
  std::int64_t z = p[2 * stride];
  std::int64_t w = p[3 * stride];

  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;

  p[0 * stride] = x;
  p[1 * stride] = y;
  p[2 * stride] = z;
  p[3 * stride] = w;
}

// Apply the lift along every axis of a 4^rank block (rank in 1..3).
void forward_transform(std::int64_t* block, unsigned rank) {
  if (rank == 1) {
    forward_lift(block, 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t row = 0; row < 4; ++row) forward_lift(block + 4 * row, 1);
    for (std::size_t col = 0; col < 4; ++col) forward_lift(block + col, 4);
    return;
  }
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      forward_lift(block + 16 * z + 4 * y, 1);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x)
      forward_lift(block + 16 * z + x, 4);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x)
      forward_lift(block + 4 * y + x, 16);
}

void inverse_transform(std::int64_t* block, unsigned rank) {
  if (rank == 1) {
    inverse_lift(block, 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t col = 0; col < 4; ++col) inverse_lift(block + col, 4);
    for (std::size_t row = 0; row < 4; ++row) inverse_lift(block + 4 * row, 1);
    return;
  }
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x)
      inverse_lift(block + 4 * y + x, 16);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x)
      inverse_lift(block + 16 * z + x, 4);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      inverse_lift(block + 16 * z + 4 * y, 1);
}

// Coefficient visiting order: ascending total sequency (i+j+k), matching
// ZFP's idea that low-frequency coefficients carry the energy.  Ties are
// broken by flat index so encoder and decoder agree.
std::vector<std::size_t> sequency_permutation(unsigned rank) {
  const std::size_t size = std::size_t{1} << (2 * rank);
  std::vector<std::size_t> perm(size);
  std::iota(perm.begin(), perm.end(), 0);
  auto sequency = [rank](std::size_t flat) {
    unsigned s = 0;
    for (unsigned d = 0; d < rank; ++d) {
      s += static_cast<unsigned>(flat & 3);
      flat >>= 2;
    }
    return s;
  };
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sequency(a) < sequency(b);
                   });
  return perm;
}

std::uint64_t to_negabinary(std::int64_t x) {
  return (static_cast<std::uint64_t>(x) + kNbMask) ^ kNbMask;
}

std::int64_t from_negabinary(std::uint64_t u) {
  return static_cast<std::int64_t>((u ^ kNbMask) - kNbMask);
}

// ---------------------------------------------------------------------------
// Embedded bit-plane coding with group-testing significance passes.

// Bit budget for fixed-rate blocks.  kUnlimited disables the cap (fixed
// precision / accuracy modes).  Encoder and decoder run the identical
// arithmetic, so exhausting the budget truncates both at the same point.
constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);

// Group-testing significance coding, transcribed from ZFP's encode loop.
// `n` (the watermark of coefficients encoded verbatim) persists across
// planes: once the scan has walked past a position, later planes carry its
// bit verbatim.  Returns bits actually written.
std::size_t encode_planes(BitWriter& writer, const std::uint64_t* coeffs,
                          std::size_t size, unsigned planes,
                          std::size_t budget = kUnlimited) {
  std::size_t used = 0;
  auto can = [&](std::size_t bits) { return used + bits <= budget; };
  std::size_t n = 0;
  for (unsigned k = kIntPrec; planes-- > 0 && k-- > 0 && used < budget;) {
    // Gather bit plane k in visiting order (bit i of x = coefficient i).
    std::uint64_t x = 0;
    for (std::size_t i = 0; i < size; ++i) {
      x |= ((coeffs[i] >> k) & 1u) << i;
    }
    // Verbatim bits for coefficients below the watermark (clipped to the
    // budget, as in ZFP's "m = MIN(n, bits)").
    const auto verbatim = static_cast<unsigned>(
        std::min<std::size_t>(n, budget - used));
    writer.put_bits(x, verbatim);
    used += verbatim;
    // n can reach 64 once every coefficient is significant; shifting a
    // 64-bit value by 64 is undefined, so clamp to "all bits consumed".
    x = n < 64 ? x >> n : 0;
    // Remaining coefficients: group test ("any 1 left?"), then a unary
    // scan to the next 1.  When only one coefficient remains after a
    // positive group test, its 1 is implied and not emitted.
    std::size_t i = n;
    while (i < size && can(1)) {
      const bool any = (x != 0);
      writer.put_bit(any);
      ++used;
      if (!any) break;
      while (i + 1 < size && can(1)) {
        const bool bit = (x & 1) != 0;
        writer.put_bit(bit);
        ++used;
        if (bit) break;
        x >>= 1;
        ++i;
      }
      // Consume the significant coefficient (explicit 1 or implied last).
      x >>= 1;
      ++i;
    }
    n = std::max(n, i);
  }
  return used;
}

std::size_t decode_planes(BitReader& reader, std::uint64_t* coeffs,
                          std::size_t size, unsigned planes,
                          std::size_t budget = kUnlimited) {
  std::fill(coeffs, coeffs + size, 0);
  std::size_t used = 0;
  auto can = [&](std::size_t bits) { return used + bits <= budget; };
  std::size_t n = 0;
  for (unsigned k = kIntPrec; planes-- > 0 && k-- > 0 && used < budget;) {
    const auto verbatim = static_cast<unsigned>(
        std::min<std::size_t>(n, budget - used));
    std::uint64_t x = reader.get_bits(verbatim);
    used += verbatim;
    std::size_t i = n;
    while (i < size && can(1)) {
      const bool any = reader.get_bit();
      ++used;
      if (!any) break;  // group test: no 1 remains
      while (i + 1 < size && can(1)) {
        const bool bit = reader.get_bit();
        ++used;
        if (bit) break;
        ++i;
      }
      // Explicit 1, implied last coefficient, or budget truncation --
      // in every case the watermark advances exactly as in the encoder.
      x |= std::uint64_t{1} << i;
      ++i;
    }
    n = std::max(n, i);
    for (std::size_t j = 0; j < size; ++j, x >>= 1) {
      if (x & 1) coeffs[j] |= std::uint64_t{1} << k;
    }
  }
  return used;
}

// ---------------------------------------------------------------------------
// Block gather/scatter with edge replication for partial blocks.

struct BlockIndexer {
  Dims dims;
  unsigned rank;

  std::size_t blocks_x() const { return (dims.nx + 3) / 4; }
  std::size_t blocks_y() const { return rank >= 2 ? (dims.ny + 3) / 4 : 1; }
  std::size_t blocks_z() const { return rank >= 3 ? (dims.nz + 3) / 4 : 1; }
  std::size_t block_count() const {
    return blocks_x() * blocks_y() * blocks_z();
  }
  std::size_t block_size() const { return std::size_t{1} << (2 * rank); }
};

void gather_block(std::span<const double> data, const BlockIndexer& bi,
                  std::size_t bx, std::size_t by, std::size_t bz,
                  double* block) {
  const Dims& d = bi.dims;
  const std::size_t ix0 = bx * 4, iy0 = by * 4, iz0 = bz * 4;
  std::size_t out = 0;
  const std::size_t zext = bi.rank >= 3 ? 4 : 1;
  const std::size_t yext = bi.rank >= 2 ? 4 : 1;
  for (std::size_t z = 0; z < zext; ++z) {
    const std::size_t iz = std::min(iz0 + z, d.nz - 1);
    for (std::size_t y = 0; y < yext; ++y) {
      const std::size_t iy = std::min(iy0 + y, d.ny - 1);
      for (std::size_t x = 0; x < 4; ++x) {
        const std::size_t ix = std::min(ix0 + x, d.nx - 1);
        block[out++] = data[(ix * d.ny + iy) * d.nz + iz];
      }
    }
  }
}

void scatter_block(std::span<double> data, const BlockIndexer& bi,
                   std::size_t bx, std::size_t by, std::size_t bz,
                   const double* block) {
  const Dims& d = bi.dims;
  const std::size_t ix0 = bx * 4, iy0 = by * 4, iz0 = bz * 4;
  std::size_t in = 0;
  const std::size_t zext = bi.rank >= 3 ? 4 : 1;
  const std::size_t yext = bi.rank >= 2 ? 4 : 1;
  for (std::size_t z = 0; z < zext; ++z) {
    for (std::size_t y = 0; y < yext; ++y) {
      for (std::size_t x = 0; x < 4; ++x, ++in) {
        const std::size_t ix = ix0 + x, iy = iy0 + y, iz = iz0 + z;
        if (ix < d.nx && iy < d.ny && iz < d.nz) {
          data[(ix * d.ny + iy) * d.nz + iz] = block[in];
        }
      }
    }
  }
}

unsigned planes_for_block(const ZfpOptions& opts, int emax) {
  if (opts.mode == ZfpMode::kFixedPrecision) {
    return std::min(opts.precision, kIntPrec);
  }
  if (opts.mode == ZfpMode::kFixedRate) {
    return kIntPrec;  // the bit budget, not a plane count, truncates
  }
  // FixedAccuracy: the LSB of the fixed-point representation is worth
  // 2^(emax - 61); keep planes down to the one whose weight is still above
  // tolerance / 16 (4 bits of slack for negabinary truncation and the
  // inverse transform's range expansion).
  const double tol = std::max(opts.tolerance, 0.0);
  if (tol <= 0.0) return kIntPrec;
  const int tol_exp = value_exponent(tol);
  const int lsb_exp = emax - 61;
  const int keep = 64 - (tol_exp - 4 - lsb_exp);
  return static_cast<unsigned>(std::clamp(keep, 1, static_cast<int>(kIntPrec)));
}

}  // namespace

ZfpCompressor::ZfpCompressor(ZfpOptions options) : options_(options) {
  if (options_.mode == ZfpMode::kFixedPrecision &&
      (options_.precision == 0 || options_.precision > 62)) {
    throw std::invalid_argument("ZfpCompressor: precision must be in 1..62");
  }
  if (options_.mode == ZfpMode::kFixedAccuracy && options_.tolerance <= 0.0) {
    throw std::invalid_argument("ZfpCompressor: tolerance must be positive");
  }
  if (options_.mode == ZfpMode::kFixedRate &&
      (options_.rate == 0 || options_.rate > 64)) {
    throw std::invalid_argument("ZfpCompressor: rate must be in 1..64");
  }
}

std::string ZfpCompressor::name() const {
  switch (options_.mode) {
    case ZfpMode::kFixedPrecision: return "zfp-prec";
    case ZfpMode::kFixedAccuracy: return "zfp-acc";
    case ZfpMode::kFixedRate: return "zfp-rate";
  }
  return "zfp";
}

std::vector<std::uint8_t> ZfpCompressor::compress(std::span<const double> data,
                                                  const Dims& dims) const {
  const obs::ScopedSpan span("codec/zfp");
  obs::count("codec.zfp.bytes_in", data.size() * sizeof(double));
  if (data.size() != dims.count()) {
    throw std::invalid_argument("ZfpCompressor: data size does not match dims");
  }
  const unsigned rank = dims.rank();
  const BlockIndexer bi{dims, rank};
  const std::size_t bsize = bi.block_size();
  const auto perm = sequency_permutation(rank);

  BitWriter writer;
  // The one-byte field carries the precision (fixed precision) or the
  // rate (fixed rate); fixed accuracy uses the tolerance double instead.
  std::uint8_t precision_or_rate = 0;
  if (options_.mode == ZfpMode::kFixedPrecision) {
    precision_or_rate = static_cast<std::uint8_t>(options_.precision);
  } else if (options_.mode == ZfpMode::kFixedRate) {
    precision_or_rate = static_cast<std::uint8_t>(options_.rate);
  }
  Header header{kMagic,
                static_cast<std::uint8_t>(options_.mode),
                precision_or_rate,
                0,
                options_.tolerance,
                dims.nx,
                dims.ny,
                dims.nz};
  const auto* hb = reinterpret_cast<const std::uint8_t*>(&header);
  for (std::size_t i = 0; i < sizeof(header); ++i) writer.put_bits(hb[i], 8);

  std::vector<double> block(bsize);
  std::vector<std::int64_t> fixed(bsize);
  std::vector<std::uint64_t> coeffs(bsize);

  const bool fixed_rate = options_.mode == ZfpMode::kFixedRate;
  const std::size_t block_budget =
      fixed_rate ? static_cast<std::size_t>(options_.rate) * bsize : kUnlimited;
  if (fixed_rate && block_budget < 14) {
    throw std::invalid_argument(
        "ZfpCompressor: rate too low for this rank (need >= 14 bits/block)");
  }

  for (std::size_t bz = 0; bz < bi.blocks_z(); ++bz) {
    for (std::size_t by = 0; by < bi.blocks_y(); ++by) {
      for (std::size_t bx = 0; bx < bi.blocks_x(); ++bx) {
        gather_block(data, bi, bx, by, bz, block.data());

        int emax = -kExponentBias;
        bool finite = true;
        for (double v : block) {
          if (!std::isfinite(v)) finite = false;
          emax = std::max(emax, value_exponent(v));
        }
        std::size_t used = 0;
        if (!finite || emax == -kExponentBias) {
          // All-zero (or non-finite, stored as zero) block: 1-bit flag.
          writer.put_bit(false);
          used = 1;
        } else {
          writer.put_bit(true);
          writer.put_bits(static_cast<std::uint64_t>(emax + kExponentBias),
                          12);
          used = 13;

          for (std::size_t i = 0; i < bsize; ++i) {
            fixed[i] = to_fixed(block[i], emax);
          }
          forward_transform(fixed.data(), rank);
          for (std::size_t i = 0; i < bsize; ++i) {
            coeffs[i] = to_negabinary(fixed[perm[i]]);
          }
          used += encode_planes(
              writer, coeffs.data(), bsize, planes_for_block(options_, emax),
              fixed_rate ? block_budget - used : kUnlimited);
        }
        // Fixed rate: pad every block to exactly its budget.
        for (; fixed_rate && used < block_budget; ++used) {
          writer.put_bit(false);
        }
      }
    }
  }
  auto out = writer.take();
  obs::count("codec.zfp.bytes_out", out.size());
  return out;
}

std::vector<double> ZfpCompressor::decompress(
    std::span<const std::uint8_t> stream) const {
  const obs::ScopedSpan span("codec/zfp");
  BitReader reader(stream);
  Header header;
  auto* hb = reinterpret_cast<std::uint8_t*>(&header);
  for (std::size_t i = 0; i < sizeof(header); ++i) {
    hb[i] = static_cast<std::uint8_t>(reader.get_bits(8));
  }
  if (header.magic != kMagic) {
    throw std::runtime_error("ZFP decode: bad magic");
  }
  const Dims dims{header.nx, header.ny, header.nz};
  ZfpOptions opts;
  opts.mode = static_cast<ZfpMode>(header.mode);
  opts.precision = header.precision;
  opts.rate = header.precision;  // shared one-byte field, see compress()
  opts.tolerance = header.tolerance;

  const unsigned rank = dims.rank();
  const BlockIndexer bi{dims, rank};
  const std::size_t bsize = bi.block_size();
  const auto perm = sequency_permutation(rank);

  std::vector<double> out(dims.count(), 0.0);
  std::vector<double> block(bsize);
  std::vector<std::int64_t> fixed(bsize);
  std::vector<std::uint64_t> coeffs(bsize);

  const bool fixed_rate = opts.mode == ZfpMode::kFixedRate;
  const std::size_t block_budget =
      fixed_rate ? static_cast<std::size_t>(opts.rate) * bsize : kUnlimited;

  for (std::size_t bz = 0; bz < bi.blocks_z(); ++bz) {
    for (std::size_t by = 0; by < bi.blocks_y(); ++by) {
      for (std::size_t bx = 0; bx < bi.blocks_x(); ++bx) {
        std::size_t used = 0;
        if (!reader.get_bit()) {
          used = 1;
          std::fill(block.begin(), block.end(), 0.0);
        } else {
          const int emax =
              static_cast<int>(reader.get_bits(12)) - kExponentBias;
          used = 13;
          used += decode_planes(reader, coeffs.data(), bsize,
                                planes_for_block(opts, emax),
                                fixed_rate ? block_budget - used : kUnlimited);
          for (std::size_t i = 0; i < bsize; ++i) {
            fixed[perm[i]] = from_negabinary(coeffs[i]);
          }
          inverse_transform(fixed.data(), rank);
          for (std::size_t i = 0; i < bsize; ++i) {
            block[i] = from_fixed(fixed[i], emax);
          }
        }
        // Fixed rate: skip the padding up to the block budget.
        while (fixed_rate && used < block_budget) {
          const auto chunk = static_cast<unsigned>(
              std::min<std::size_t>(64, block_budget - used));
          reader.get_bits(chunk);
          used += chunk;
        }
        scatter_block(out, bi, bx, by, bz, block.data());
      }
    }
  }
  return out;
}

}  // namespace rmp::compress
