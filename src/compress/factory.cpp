#include "compress/factory.hpp"

#include <stdexcept>

namespace rmp::compress {

std::unique_ptr<Compressor> make_sz_original() {
  return std::make_unique<SzCompressor>(
      SzOptions{SzMode::kBlockRelative, 1e-5, 16});
}

std::unique_ptr<Compressor> make_sz_delta() {
  return std::make_unique<SzCompressor>(
      SzOptions{SzMode::kBlockRelative, 1e-3, 16});
}

std::unique_ptr<Compressor> make_zfp_original() {
  return std::make_unique<ZfpCompressor>(
      ZfpOptions{ZfpMode::kFixedPrecision, 16, 0.0});
}

std::unique_ptr<Compressor> make_zfp_delta() {
  return std::make_unique<ZfpCompressor>(
      ZfpOptions{ZfpMode::kFixedPrecision, 8, 0.0});
}

std::unique_ptr<Compressor> make_fpc() {
  return std::make_unique<FpcCompressor>(FpcOptions{20});
}

std::unique_ptr<Compressor> make_by_name(const std::string& name) {
  if (name == "sz") return make_sz_original();
  if (name == "zfp") return make_zfp_original();
  if (name == "fpc") return make_fpc();
  throw std::invalid_argument("make_by_name: unknown compressor " + name);
}

}  // namespace rmp::compress
