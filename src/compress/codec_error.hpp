// Typed error taxonomy for the entropy-coding layer (Huffman + LZ
// backend + SZ payload parsing).  Mirrors io::ContainerError: hostile or
// corrupt streams must fail with a dispatchable code -- never bad_alloc
// from a stream-controlled allocation, never fabricated symbols from a
// truncated stream, never an untyped std::out_of_range from deep inside
// a bit loop.  Derives from std::runtime_error so pre-existing catch
// sites keep working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rmp::compress {

enum class CodecErrc : std::uint8_t {
  kTruncated = 1,   ///< stream ends before the format says it should
  kCountOverflow,   ///< stream-declared count exceeds the input byte budget
  kMalformedTable,  ///< code table fails validation (lengths / Kraft sum)
  kInvalidCode,     ///< bit pattern matches no canonical code
  kMalformedStream, ///< anything else that does not parse
};

inline const char* to_string(CodecErrc code) {
  switch (code) {
    case CodecErrc::kTruncated: return "truncated";
    case CodecErrc::kCountOverflow: return "count-overflow";
    case CodecErrc::kMalformedTable: return "malformed-table";
    case CodecErrc::kInvalidCode: return "invalid-code";
    case CodecErrc::kMalformedStream: return "malformed-stream";
  }
  return "unknown";
}

class CodecError : public std::runtime_error {
 public:
  CodecError(CodecErrc code, const std::string& detail)
      : std::runtime_error(std::string("codec[") + to_string(code) +
                           "]: " + detail),
        code_(code) {}

  CodecErrc code() const noexcept { return code_; }

 private:
  CodecErrc code_;
};

}  // namespace rmp::compress
