// Bounded MPMC queue with explicit admission control -- the backpressure
// primitive between rmpd's session threads and its worker pool.
//
// The crucial property is that try_push never blocks and never buffers
// past the capacity: when the queue is full the caller gets kBusy
// *immediately* and turns it into a typed BUSY response, so a saturated
// server sheds load instead of accumulating unbounded memory (DESIGN.md
// §11).  pop() blocks; close() switches the queue into drain mode, where
// producers are refused (kClosed) but consumers keep draining until the
// queue is empty, after which pop() returns nullopt to every waiter.
//
// Accounting is conservative by construction: every try_push increments
// exactly one of accepted / rejected_busy / rejected_closed under the
// same lock that decided the outcome, so even a close() racing a storm of
// concurrent producers satisfies
//
//   attempts == accepted + rejected_busy + rejected_closed
//
// at every observable instant -- a rejection can never be lost or
// double-counted across the open->closed transition.  A push that finds
// the queue both closed *and* full is a kClosed rejection (drain wins):
// during a drain the caller must answer SHUTTING_DOWN, not BUSY, or a
// well-behaved client would retry against a server that will never
// accept.
//
// The admission / rejection / drain state machine is unit-tested under
// saturation (including a close-while-full hammer) in
// tests/test_net_queue.cpp.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rmp::net {

template <typename T>
class BoundedQueue {
 public:
  enum class Push : std::uint8_t {
    kAccepted,  ///< item enqueued
    kBusy,      ///< queue at capacity -- caller must shed the item
    kClosed,    ///< queue draining/closed -- no new work accepted
  };

  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: full -> kBusy, closed -> kClosed (closed
  /// takes precedence over full -- see the conservation note above).
  Push try_push(T item) {
    std::unique_lock lock(mutex_);
    ++attempts_;
    if (closed_) {
      ++rejected_closed_;
      return Push::kClosed;
    }
    if (items_.size() >= capacity_) {
      ++rejected_busy_;
      return Push::kBusy;
    }
    items_.push_back(std::move(item));
    ++accepted_;
    if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    lock.unlock();
    ready_.notify_one();
    return Push::kAccepted;
  }

  /// Blocking consume.  Returns nullopt only once the queue is closed
  /// *and* empty -- every accepted item is handed to exactly one consumer
  /// even during a drain.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    return item;
  }

  /// Enter drain mode: refuse new producers, wake every consumer.
  /// Idempotent.  Returns the backlog depth at the instant of closing --
  /// the number of already-accepted items consumers will still drain.
  std::size_t close() {
    std::size_t backlog = 0;
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
      backlog = items_.size();
    }
    ready_.notify_all();
    return backlog;
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }
  std::size_t depth() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const noexcept { return capacity_; }

  struct Stats {
    std::uint64_t attempts = 0;  ///< every try_push, whatever its verdict
    std::uint64_t accepted = 0;
    std::uint64_t popped = 0;
    std::uint64_t rejected_busy = 0;
    std::uint64_t rejected_closed = 0;
    std::size_t peak_depth = 0;
  };
  /// One consistent snapshot: taken under the admission lock, so the
  /// conservation law attempts == accepted + rejected_busy +
  /// rejected_closed holds in every snapshot, mid-race included.
  Stats stats() const {
    std::lock_guard lock(mutex_);
    return {attempts_, accepted_,        popped_,
            rejected_busy_, rejected_closed_, peak_depth_};
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t attempts_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t rejected_busy_ = 0;
  std::uint64_t rejected_closed_ = 0;
  std::size_t peak_depth_ = 0;
};

}  // namespace rmp::net
