// Typed error taxonomy for the network layer (rmpd daemon, rmpc client,
// wire protocol).  Mirrors io::ContainerError's shape: every failure mode
// of the framing, the session or the transport maps to a NetErrc so
// callers (server sessions, the CLI exit-code table, tests, fuzzers) can
// dispatch on *what* went wrong instead of string-matching.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rmp::net {

enum class NetErrc : std::uint8_t {
  kBadMagic = 1,       ///< frame does not start with the protocol magic
  kBadVersion,         ///< protocol version this peer does not speak
  kBadType,            ///< message type outside the known range
  kFrameTooLarge,      ///< declared payload exceeds the decoder's cap
  kHeaderCorrupt,      ///< header CRC mismatch or reserved bits set
  kPayloadCorrupt,     ///< payload CRC mismatch
  kMalformedPayload,   ///< payload does not parse as its message type
  kConnectionClosed,   ///< peer hung up (possibly mid-frame)
  kIoError,            ///< socket syscall failed
  kDeadlineExceeded,   ///< request deadline elapsed before a response
  kBusy,               ///< server rejected admission (queue full)
  kShuttingDown,       ///< server is draining and takes no new work
  kRemoteError,        ///< server answered with a non-retryable error status
};

inline const char* to_string(NetErrc code) {
  switch (code) {
    case NetErrc::kBadMagic: return "bad-magic";
    case NetErrc::kBadVersion: return "bad-version";
    case NetErrc::kBadType: return "bad-type";
    case NetErrc::kFrameTooLarge: return "frame-too-large";
    case NetErrc::kHeaderCorrupt: return "header-corrupt";
    case NetErrc::kPayloadCorrupt: return "payload-corrupt";
    case NetErrc::kMalformedPayload: return "malformed-payload";
    case NetErrc::kConnectionClosed: return "connection-closed";
    case NetErrc::kIoError: return "io-error";
    case NetErrc::kDeadlineExceeded: return "deadline-exceeded";
    case NetErrc::kBusy: return "busy";
    case NetErrc::kShuttingDown: return "shutting-down";
    case NetErrc::kRemoteError: return "remote-error";
  }
  return "unknown";
}

class NetError : public std::runtime_error {
 public:
  NetError(NetErrc code, const std::string& detail)
      : std::runtime_error(std::string("net[") + to_string(code) +
                           "]: " + detail),
        code_(code) {}

  NetErrc code() const noexcept { return code_; }

 private:
  NetErrc code_;
};

}  // namespace rmp::net
