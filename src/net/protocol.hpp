// Wire protocol for rmpd: length-prefixed binary frames carrying
// encode/decode/verify/stats requests and their responses.
//
// Frame layout (little-endian, 36-byte header + payload):
//
//   offset size field
//        0    4 magic "RMPN"
//        4    2 version (kProtocolVersion)
//        6    2 type (MsgType)
//        8    2 status (Status; kOk in requests)
//       10    2 reserved, must be zero
//       12    8 request id (echoed verbatim in the response)
//       20    4 deadline_ms: remaining wall-clock budget granted by the
//               client (0 = none).  The server stamps an absolute
//               deadline on receipt and enforces it end-to-end, including
//               inside disk-retry loops (io::RetryPolicy::deadline).
//       24    4 payload size (bounded by the decoder's max_payload)
//       28    4 payload CRC-32 (zero when the payload is empty)
//       32    4 header CRC-32 over bytes [0, 32)
//
// Integrity is layered: the header CRC rejects torn or bit-flipped
// headers before the length field is trusted, the declared size is
// capped before any allocation, and the payload CRC rejects corrupted
// bodies.  Every malformed input maps to a typed NetError -- the
// deserializer (FrameDecoder) is the fuzz_proto libFuzzer target and
// must never crash, hang, or over-allocate on garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/net_error.hpp"

namespace rmp::net {

inline constexpr std::uint8_t kMagic[4] = {'R', 'M', 'P', 'N'};
/// v2: DecodeRequest grew store_name/step (server-side store reads).
/// v3: self-healing service surface -- EncodeRequest carries an
/// idempotency token, BUSY error frames carry a retry_after_ms hint,
/// kScrub triggers an on-demand integrity pass, and StatsResponse grew
/// the recovery/scrub/dedup/admission counter block.
/// Mismatched peers are rejected at the frame layer, so v1/v2 clients get
/// a typed version error rather than a payload misparse.
inline constexpr std::uint16_t kProtocolVersion = 3;
inline constexpr std::size_t kFrameHeaderBytes = 36;
/// Default payload cap: a 256^3 float64 field plus headroom.
inline constexpr std::size_t kDefaultMaxPayload = 160u << 20;

enum class MsgType : std::uint16_t {
  kPing = 1,
  kPong = 2,
  kEncode = 3,
  kDecode = 4,
  kVerify = 5,
  kStats = 6,
  kEncodeResult = 7,
  kDecodeResult = 8,
  kVerifyResult = 9,
  kStatsResult = 10,
  kError = 11,
  kScrub = 12,  ///< trigger one integrity-scrub pass over the store dir
  kScrubResult = 13,
};

bool is_known_type(std::uint16_t type) noexcept;
bool is_request_type(MsgType type) noexcept;
const char* to_string(MsgType type) noexcept;

/// Response verdicts.  kOk travels in result frames; everything else in
/// kError frames whose payload is a human-readable message.
enum class Status : std::uint16_t {
  kOk = 0,
  kBusy = 1,              ///< admission rejected: request queue full
  kShuttingDown = 2,      ///< server draining, no new work accepted
  kDeadlineExceeded = 3,  ///< the request's wall-clock budget ran out
  kBadRequest = 4,        ///< request payload malformed or semantically bad
  kIntegrityError = 5,    ///< archive bytes damaged (io::ContainerError)
  kPreconditionError = 6, ///< model/numeric failure (core::PreconditionError)
  kIoError = 7,           ///< server-side disk failure
  kInternalError = 8,     ///< anything else; never carries partial results
};

const char* to_string(Status status) noexcept;

struct FrameHeader {
  std::uint16_t version = kProtocolVersion;
  MsgType type = MsgType::kPing;
  Status status = Status::kOk;
  std::uint64_t request_id = 0;
  std::uint32_t deadline_ms = 0;
  std::uint32_t payload_size = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Serialize one frame (header CRC and payload CRC filled in).
std::vector<std::uint8_t> encode_frame(MsgType type, std::uint64_t request_id,
                                       std::uint32_t deadline_ms,
                                       std::span<const std::uint8_t> payload,
                                       Status status = Status::kOk);

/// Incremental wire-frame deserializer: feed() arbitrary chunks, next()
/// yields complete validated frames.  Throws NetError (typed: bad magic /
/// version / type, oversized, header or payload CRC mismatch) on the
/// first malformed byte sequence; after a throw the decoder is poisoned
/// and the session must be torn down -- resynchronizing inside a corrupt
/// TCP stream would risk misparsing payload bytes as frames.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const std::uint8_t> bytes);
  /// Next complete frame, or std::nullopt when more bytes are needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed as frames (torn-frame probe).
  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }
  bool poisoned() const noexcept { return poisoned_; }

 private:
  FrameHeader parse_header();

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::optional<FrameHeader> pending_;  ///< header parsed, payload awaited
  std::uint32_t pending_payload_crc_ = 0;
  bool poisoned_ = false;
};

// ---------------------------------------------------------------------------
// Payload codecs.  Bounds-checked on read: any overrun, oversized string,
// count/shape mismatch or trailing garbage throws
// NetError{kMalformedPayload}.

/// Where an encode request's container should land.
enum class StoreMode : std::uint8_t {
  kReturn = 0,    ///< container bytes come back in the response
  kFile = 1,      ///< durably published under the server's output dir
  kSequence = 2,  ///< appended to a named journaled sequence (fsync'd
                  ///< commit marker; published when the server drains)
};

struct EncodeRequest {
  std::string method = "pca";
  std::string codec = "sz";
  bool guard = false;
  std::optional<double> error_bound;  ///< implies guard when set
  StoreMode store = StoreMode::kReturn;
  std::string store_name;  ///< archive/sequence name for kFile/kSequence
  std::uint64_t nx = 0, ny = 1, nz = 1;
  /// Idempotency token (0 = none).  A retried encode resends the same
  /// token; the server's dedup window replays the cached result instead
  /// of re-executing, so a retry never double-appends to a sequence.
  /// Sequence appends additionally journal the token in a fsync'd
  /// request log, making the guarantee hold across a daemon crash.
  std::uint64_t request_token = 0;
  std::vector<double> data;

  std::vector<std::uint8_t> encode() const;
  static EncodeRequest decode(std::span<const std::uint8_t> payload);
};

struct EncodeResponse {
  std::string method;  ///< model that actually ran (after guard demotion)
  std::uint64_t original_bytes = 0;
  std::uint64_t stored_bytes = 0;
  bool stored = false;       ///< true for kFile/kSequence requests
  std::string stored_path;   ///< where the server put it (stored == true)
  std::vector<std::uint8_t> container;  ///< inline archive (stored == false)

  std::vector<std::uint8_t> encode() const;
  static EncodeResponse decode(std::span<const std::uint8_t> payload);
};

struct DecodeRequest {
  std::string codec = "sz";
  std::vector<std::uint8_t> container;  ///< inline archive bytes
  bool best_effort = false;
  /// Server-side store read: when non-empty, the archive named here under
  /// the server's --output-dir is decoded instead of inline bytes (which
  /// must then be absent).  Works for single containers and for sequence
  /// archives; the server shares one seekable reader + chunk fetcher per
  /// store name, so N clients decoding disjoint steps read concurrently.
  std::string store_name;
  /// Step to decode when the named store is a sequence archive; ignored
  /// for single containers and inline bytes.
  std::uint64_t step = 0;

  std::vector<std::uint8_t> encode() const;
  static DecodeRequest decode(std::span<const std::uint8_t> payload);
};

struct DecodeResponse {
  std::uint64_t nx = 0, ny = 1, nz = 1;
  std::string detail;  ///< non-empty for best-effort reconstructions
  std::vector<double> data;

  std::vector<std::uint8_t> encode() const;
  static DecodeResponse decode(std::span<const std::uint8_t> payload);
};

struct VerifyRequest {
  std::vector<std::uint8_t> container;

  std::vector<std::uint8_t> encode() const;
  static VerifyRequest decode(std::span<const std::uint8_t> payload);
};

struct VerifyResponse {
  bool complete = false;  ///< every section intact or repaired
  bool repaired = false;
  std::uint32_t version = 0;
  std::string detail;  ///< per-section report, human-readable

  std::vector<std::uint8_t> encode() const;
  static VerifyResponse decode(std::span<const std::uint8_t> payload);
};

/// One integrity-scrub pass over the server's store directory (manual
/// trigger via kScrub, or the background scrubber's cumulative totals in
/// StatsResponse).
struct ScrubResponse {
  std::uint64_t files_checked = 0;
  std::uint64_t sections_checked = 0;
  std::uint64_t sections_repaired = 0;
  std::uint64_t files_repaired = 0;     ///< rewritten via parity repair
  std::uint64_t files_quarantined = 0;  ///< moved to quarantine/ + manifest
  std::string detail;  ///< per-file findings, human-readable

  std::vector<std::uint8_t> encode() const;
  static ScrubResponse decode(std::span<const std::uint8_t> payload);
};

/// Server-side counters a client can poll without parsing obs JSON.
struct StatsResponse {
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t sessions_active = 0;
  std::uint64_t sessions_total = 0;
  std::uint64_t protocol_errors = 0;
  // Self-healing surface (v3): startup recovery, background scrub, the
  // idempotent-retry dedup window, and byte-budget admission control.
  std::uint64_t recovery_journals_resumed = 0;
  std::uint64_t recovery_steps_recovered = 0;
  std::uint64_t recovery_files_repaired = 0;
  std::uint64_t recovery_files_quarantined = 0;
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_sections_checked = 0;
  std::uint64_t scrub_sections_repaired = 0;
  std::uint64_t scrub_quarantined = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t dedup_evictions = 0;
  std::uint64_t dedup_entries = 0;
  std::uint64_t inflight_bytes = 0;
  std::uint64_t max_inflight_bytes = 0;  ///< 0 = unlimited
  std::uint64_t admission_bytes_rejected = 0;
  std::uint64_t stalled_sessions = 0;
  std::string obs_json;  ///< full rmp-obs-v1 registry dump

  std::vector<std::uint8_t> encode() const;
  static StatsResponse decode(std::span<const std::uint8_t> payload);
};

struct ErrorResponse {
  std::string message;
  /// For kBusy rejections: how long the client should back off before
  /// retrying (0 = no hint).  Derived from queue pressure server-side.
  std::uint32_t retry_after_ms = 0;

  std::vector<std::uint8_t> encode() const;
  static ErrorResponse decode(std::span<const std::uint8_t> payload);
};

}  // namespace rmp::net
