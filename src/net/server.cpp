#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "compress/factory.hpp"
#include "core/chunk_fetch.hpp"
#include "core/guard.hpp"
#include "core/pipeline.hpp"
#include "core/precond_error.hpp"
#include "core/staging.hpp"
#include "io/container.hpp"
#include "io/container_error.hpp"
#include "io/sequence_file.hpp"
#include "io/store_health.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Store names become file names under the server's output directory;
/// anything that could escape it (separators, dot-prefixed names) is a
/// malformed request, not an I/O error.
void validate_store_name(const std::string& name) {
  if (name.empty())
    throw NetError(NetErrc::kMalformedPayload, "store request without a name");
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos || name.front() == '.')
    throw NetError(NetErrc::kMalformedPayload,
                   "store name '" + name +
                       "' must be a plain file name (no separators, no "
                       "leading dot)");
  // Names the self-healing machinery owns inside the store directory:
  // "quarantine" is the damaged-file vault, ".part"/".reqs" suffixes are
  // journal and request-log sidecars, ".tmp." marks staging temps.
  if (name == "quarantine" || name.ends_with(".part") ||
      name.ends_with(".reqs") || name.find(".tmp.") != std::string::npos)
    throw NetError(NetErrc::kMalformedPayload,
                   "store name '" + name +
                       "' is reserved for store maintenance "
                       "(quarantine/, *.part, *.reqs, *.tmp.*)");
}

struct CodecSet {
  std::unique_ptr<compress::Compressor> reduced;
  std::unique_ptr<compress::Compressor> delta;
  core::CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

CodecSet make_codecs(const std::string& name) {
  if (name == "sz")
    return {compress::make_sz_original(), compress::make_sz_delta()};
  if (name == "zfp")
    return {compress::make_zfp_original(), compress::make_zfp_delta()};
  throw NetError(NetErrc::kMalformedPayload,
                 "unknown codec '" + name + "' (expected sz or zfp)");
}

const char* section_state_name(io::SectionState state) {
  switch (state) {
    case io::SectionState::kOk: return "ok";
    case io::SectionState::kRepaired: return "repaired";
    case io::SectionState::kDamaged: return "damaged";
  }
  return "unknown";
}

}  // namespace

/// Shared read-side state for one published store: a seekable sequence
/// reader plus a chunk fetcher whose cache is shared by every decode
/// request naming this store.  Member order matters -- the fetcher is
/// destroyed first, draining its background prefetch tasks while the
/// reader they capture is still alive.
struct StoreReadCache {
  std::uint64_t file_size = 0;
  io::SequenceReader reader;
  core::ChunkFetcher fetcher;

  StoreReadCache(std::uint64_t size, const std::filesystem::path& path)
      : file_size(size),
        reader(path,
               io::SequenceReadOptions{.allow_index_rebuild = false}),
        fetcher(core::make_sequence_fetcher(reader)) {}
};

/// Per-connection state.  The session thread is the only reader of the
/// socket; writes (responses, possibly from worker threads or staging
/// callbacks) serialize through write_mutex.  The fd is closed by the
/// destructor, i.e. only after every in-flight job's response attempt has
/// released its shared_ptr -- a mid-request disconnect never yields a
/// write to a recycled descriptor.
struct Server::Session {
  int fd = -1;
  std::uint64_t id = 0;
  std::thread thread;
  std::mutex write_mutex;
  std::atomic<bool> alive{true};
  std::atomic<bool> done{false};

  ~Session() {
    if (fd >= 0) ::close(fd);
  }
};

/// One live journaled sequence: the writer plus its request log.  The
/// log is opened lazily on the first tokened append -- untokened flows
/// never grow a sidecar.  `fresh_journal` records whether this
/// generation created the journal (a fresh log must not inherit a
/// predecessor's intents) or adopted it from startup recovery.
struct Server::SequenceState {
  std::unique_ptr<io::SequenceWriter> writer;
  std::unique_ptr<io::RequestLog> log;
  bool fresh_journal = true;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      dedup_(options_.dedup_window) {}

Server::~Server() {
  if (running_.load(std::memory_order_acquire)) {
    request_drain();
    drain();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  if (running_.exchange(true))
    throw std::logic_error("Server::start called twice");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw NetError(NetErrc::kIoError, errno_text("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError(NetErrc::kIoError,
                   "bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string text = errno_text("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError(NetErrc::kIoError, text);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string text = errno_text("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError(NetErrc::kIoError, text);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);

  if (options_.output_dir) {
    std::filesystem::create_directories(*options_.output_dir);
    if (options_.recover_on_start) recover_store_on_start();
    staging_reduced_ = compress::make_sz_original();
    staging_delta_ = compress::make_sz_delta();
    core::StagingOptions staging_options;
    staging_options.output_dir = options_.output_dir;
    staging_options.max_queue = options_.staging_queue;
    staging_options.serialize.with_parity = options_.with_parity;
    staging_ = std::make_unique<core::StagingNode>(
        core::CodecPair{staging_reduced_.get(), staging_delta_.get()},
        staging_options);
    if (options_.scrub_interval.count() > 0)
      scrub_thread_ = std::thread([this] { scrub_loop(); });
  }

  std::size_t workers = options_.workers != 0
                            ? options_.workers
                            : std::min<std::size_t>(
                                  4, parallel::default_thread_count());
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_drain() noexcept {
  // Called from signal handlers: a lock-free atomic store only.  The
  // accept and session loops run on short poll ticks and observe it.
  draining_.store(true, std::memory_order_release);
}

void Server::wait_until_drained() {
  while (!draining_.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  drain();
}

void Server::drain() {
  std::lock_guard call_guard(drain_call_mutex_);
  if (drained_.load(std::memory_order_acquire) ||
      !running_.load(std::memory_order_acquire))
    return;
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting connections, and retire the background scrubber
  //    so no repair pass races the final sequence publishes.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard lock(scrub_mutex_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrub_thread_.joinable()) scrub_thread_.join();

  // 2. Finish every admitted request (queued, executing, or awaiting a
  //    staging callback).  Sessions that race past the draining check are
  //    covered: they bump outstanding_ *before* try_push.
  {
    std::unique_lock lock(drain_mutex_);
    drain_cv_.wait(lock, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }

  // 3. Retire the workers (pop() drains any stragglers, then nullopt).
  queue_.close();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();

  // 4. Flush the write-behind store and publish journaled sequences via
  //    the durable rename path.
  if (staging_) staging_->drain();
  finish_sequences();

  // 5. Tear down sessions.  No jobs remain, so no response can race the
  //    teardown; fds close when the last shared_ptr drops.
  stop_sessions_.store(true, std::memory_order_release);
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions)
    if (session->thread.joinable()) session->thread.join();
  sessions.clear();

  drained_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  obs::count("net.drains");
}

ServerStats Server::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Self-healing: startup recovery + integrity scrubbing

void Server::recover_store_on_start() {
  io::SerializeOptions serialize_options;
  serialize_options.with_parity = options_.with_parity;
  io::RecoveryResult recovery =
      io::recover_store(*options_.output_dir, serialize_options);

  // Adopt the resumed journals as live writers: the next append to the
  // same store name continues byte-identically after the last committed
  // step, and the request log keeps extending the surviving intents.
  {
    std::lock_guard lock(sequences_mutex_);
    for (auto& [name, recovered] : recovery.sequences) {
      auto state = std::make_unique<SequenceState>();
      state->writer = std::move(recovered.writer);
      state->fresh_journal = false;
      sequences_[name] = std::move(state);
    }
  }

  // Seed the dedup window with the durable proofs: a client retrying a
  // tokened append across the crash replays the committed outcome.  The
  // replayed response reports the serialized step size and no method
  // name (the original computed values died with the old process) --
  // the documented contract is "applied exactly once", not "response
  // byte-identical".
  for (const auto& [token, replay] : recovery.replayable) {
    EncodeResponse response;
    response.stored = true;
    response.stored_bytes = replay.stored_bytes;
    response.stored_path = (*options_.output_dir / replay.sequence).string();
    dedup_.insert(token, DedupWindow::CachedResponse{
                             MsgType::kEncodeResult, Status::kOk,
                             response.encode()});
  }

  {
    std::lock_guard lock(stats_mutex_);
    stats_.recovery_journals_resumed = recovery.report.journals_resumed;
    stats_.recovery_steps_recovered = recovery.report.steps_recovered;
    stats_.recovery_files_repaired = recovery.report.scrub.files_repaired;
    stats_.recovery_files_quarantined =
        recovery.report.journals_quarantined +
        recovery.report.scrub.files_quarantined;
    stats_.scrub_sections_checked = recovery.report.scrub.sections_checked;
    stats_.scrub_sections_repaired = recovery.report.scrub.sections_repaired;
    stats_.scrub_quarantined = recovery.report.scrub.files_quarantined;
  }
  for (const auto& note : recovery.report.notes)
    std::fprintf(stderr, "rmpd: recovery: %s\n", note.c_str());
  for (const auto& note : recovery.report.scrub.notes)
    std::fprintf(stderr, "rmpd: recovery: %s\n", note.c_str());
}

ScrubResponse Server::run_scrub_pass() {
  ScrubResponse response;
  if (!options_.output_dir) {
    response.detail = "server has no --output-dir; nothing to scrub";
    return response;
  }
  io::ScrubOptions scrub_options;
  {
    // Live sequences are the writer's territory: their journal is the
    // authoritative copy and the destination (if present) is the
    // previous complete archive -- skip both.
    std::lock_guard lock(sequences_mutex_);
    for (const auto& [name, state] : sequences_)
      scrub_options.skip.push_back(name);
  }
  const io::ScrubReport report =
      io::scrub_store(*options_.output_dir, scrub_options);

  response.files_checked = report.files_checked;
  response.sections_checked = report.sections_checked;
  response.sections_repaired = report.sections_repaired;
  response.files_repaired = report.files_repaired;
  response.files_quarantined = report.files_quarantined;
  // Cap the detail well under the wire limit (protocol.cpp caps decode
  // at 1 MiB); a huge store's notes are summarized, not truncated
  // mid-line.
  constexpr std::size_t kDetailCap = 256 * 1024;
  std::string detail;
  for (const auto& note : report.notes) {
    if (detail.size() + note.size() > kDetailCap) {
      detail += "... (more notes elided)\n";
      break;
    }
    detail += note;
    detail += '\n';
  }
  response.detail = std::move(detail);

  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.scrub_passes;
    stats_.scrub_sections_checked += report.sections_checked;
    stats_.scrub_sections_repaired += report.sections_repaired;
    stats_.scrub_quarantined += report.files_quarantined;
  }
  obs::count("scrub.passes");
  return response;
}

void Server::scrub_loop() {
  obs::ScopedSpan span("rmpd/scrubber");
  std::unique_lock lock(scrub_mutex_);
  while (!scrub_stop_) {
    if (scrub_cv_.wait_for(lock, options_.scrub_interval,
                           [this] { return scrub_stop_; }))
      return;
    lock.unlock();
    try {
      run_scrub_pass();
    } catch (const std::exception& e) {
      // A failing pass must never take the scrubber (or server) down;
      // the next interval retries.
      obs::count("scrub.pass_failures");
      std::fprintf(stderr, "rmpd: scrub pass failed: %s\n", e.what());
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Accept / session plumbing

void Server::accept_loop() {
  while (!draining()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN)
        continue;
      break;
    }
    if (draining()) {
      ::close(fd);
      continue;
    }

    std::lock_guard lock(sessions_mutex_);
    // Reap sessions whose loop has exited, so a long-lived server does
    // not accumulate joinable threads.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    if (sessions_.size() >= options_.max_sessions) {
      // Typed rejection, then close: the client learns *why*.
      const auto bytes = encode_frame(MsgType::kError, 0, 0,
                                      ErrorResponse{"session limit reached"}
                                          .encode(),
                                      Status::kBusy);
      (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ::close(fd);
      {
        std::lock_guard stats_lock(stats_mutex_);
        ++stats_.rejected_busy;
      }
      obs::count("net.sessions_rejected");
      continue;
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->id = ++session_counter_;
    {
      std::lock_guard stats_lock(stats_mutex_);
      ++stats_.sessions_total;
      ++stats_.sessions_active;
    }
    obs::count("net.sessions");
    sessions_.push_back(session);
    session->thread =
        std::thread([this, session] { session_loop(session); });
  }
}

void Server::session_loop(const std::shared_ptr<Session>& session) {
  obs::ScopedSpan span("rmpd/session");
  FrameDecoder decoder;
  std::vector<std::uint8_t> buffer(64 * 1024);
  bool torn = false;
  bool failed = false;
  bool stalled = false;
  auto last_progress = std::chrono::steady_clock::now();
  while (!stop_sessions_.load(std::memory_order_acquire) &&
         session->alive.load(std::memory_order_acquire)) {
    pollfd pfd{session->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      failed = true;
      break;
    }
    if (rc == 0) {
      // Slowloris defense: an idle connection is fine, but a connection
      // holding a HALF-READ frame hostage pins decoder memory and (at
      // the session cap) an admission slot.  No progress on a partial
      // frame within the deadline tears the session down.
      if (options_.read_stall_timeout.count() > 0 && decoder.buffered() > 0 &&
          std::chrono::steady_clock::now() - last_progress >=
              options_.read_stall_timeout) {
        stalled = true;
        break;
      }
      continue;
    }
    const auto n =
        ::recv(session->fd, buffer.data(), buffer.size(), 0);
    if (n == 0) {
      // Clean EOF: the client is done sending.  A partial frame left in
      // the decoder is a torn frame (mid-request disconnect); responses
      // for already-admitted requests still go out below.
      torn = decoder.buffered() > 0;
      break;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      failed = true;
      break;
    }
    last_progress = std::chrono::steady_clock::now();
    try {
      decoder.feed({buffer.data(), static_cast<std::size_t>(n)});
      while (auto frame = decoder.next())
        handle_frame(session, std::move(*frame));
    } catch (const NetError& e) {
      // Malformed bytes poison the decoder; answer with a typed error
      // (best effort) and tear the session down -- resynchronizing
      // inside a corrupt stream risks misparsing payloads as frames.
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      obs::count("net.protocol_errors");
      send_error(session, 0, Status::kBadRequest, e.what());
      failed = true;
      break;
    }
  }
  if (torn) {
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.protocol_errors;
    }
    obs::count("net.torn_frames");
  }
  if (stalled) {
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.stalled_sessions;
      ++stats_.protocol_errors;
    }
    obs::count("net.stalled_sessions");
    // Best effort: the half-frame has no request id, so the teardown
    // notice goes out unaddressed before the close.
    send_error(session, 0, Status::kBadRequest,
               "read stalled mid-frame; closing session");
  }
  if (failed || torn || stalled) {
    session->alive.store(false, std::memory_order_release);
    ::shutdown(session->fd, SHUT_RDWR);
  }
  {
    std::lock_guard lock(stats_mutex_);
    --stats_.sessions_active;
  }
  session->done.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Admission

void Server::handle_frame(const std::shared_ptr<Session>& session,
                          Frame frame) {
  const FrameHeader header = frame.header;
  switch (header.type) {
    case MsgType::kPing:
      send_frame(session, MsgType::kPong, header.request_id, {});
      return;
    case MsgType::kStats:
      send_stats(session, header.request_id);
      return;
    case MsgType::kEncode:
    case MsgType::kDecode:
    case MsgType::kVerify:
    case MsgType::kScrub:
      break;
    default: {
      std::lock_guard lock(stats_mutex_);
      ++stats_.protocol_errors;
    }
      send_error(session, header.request_id, Status::kBadRequest,
                 std::string("unexpected ") + to_string(header.type) +
                     " frame on the server side");
      return;
  }

  if (draining()) {
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.rejected_shutdown;
    }
    obs::count("net.rejected_shutdown");
    send_error(session, header.request_id, Status::kShuttingDown,
               "server is draining and accepts no new work");
    return;
  }

  // Byte-budget admission: the second shedding axis.  queue_capacity
  // bounds request *count*; this bounds the *payload bytes* buffered in
  // queued and executing jobs, so a burst of huge encodes is shed with a
  // typed BUSY (plus a backoff hint) instead of ballooning memory.
  const std::uint64_t payload_bytes = frame.payload.size();
  if (options_.max_inflight_bytes > 0 && payload_bytes > 0) {
    const std::uint64_t inflight =
        inflight_bytes_.fetch_add(payload_bytes, std::memory_order_acq_rel) +
        payload_bytes;
    if (inflight > options_.max_inflight_bytes) {
      inflight_bytes_.fetch_sub(payload_bytes, std::memory_order_acq_rel);
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.rejected_busy;
        stats_.admission_bytes_rejected += payload_bytes;
      }
      obs::count("net.rejected_busy");
      obs::count("admission.bytes_rejected", payload_bytes);
      send_error(session, header.request_id, Status::kBusy,
                 std::to_string(payload_bytes) +
                     " payload bytes would exceed the in-flight budget (" +
                     std::to_string(options_.max_inflight_bytes) +
                     "); retry",
                 retry_after_hint());
      return;
    }
    obs::gauge_max("net.inflight_bytes_peak", inflight);
  }

  Job job;
  job.session = session;
  if (header.deadline_ms > 0)
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(header.deadline_ms);
  job.frame = std::move(frame);
  job.bytes = options_.max_inflight_bytes > 0 ? payload_bytes : 0;
  const std::uint64_t charged = job.bytes;

  // outstanding_ rises before admission so drain()'s wait covers a job
  // even in the instant between push and pop.
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  switch (queue_.try_push(std::move(job))) {
    case BoundedQueue<Job>::Push::kAccepted: {
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.accepted;
      }
      obs::count("net.accepted");
      obs::gauge_max("net.queue_peak", queue_.depth());
      return;
    }
    case BoundedQueue<Job>::Push::kBusy: {
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.rejected_busy;
      }
      obs::count("net.rejected_busy");
      send_error(session, header.request_id, Status::kBusy,
                 "request queue full (" +
                     std::to_string(queue_.capacity()) + " deep); retry",
                 retry_after_hint());
      if (charged > 0)
        inflight_bytes_.fetch_sub(charged, std::memory_order_acq_rel);
      release_outstanding();
      return;
    }
    case BoundedQueue<Job>::Push::kClosed: {
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.rejected_shutdown;
      }
      obs::count("net.rejected_shutdown");
      send_error(session, header.request_id, Status::kShuttingDown,
                 "server is draining and accepts no new work");
      if (charged > 0)
        inflight_bytes_.fetch_sub(charged, std::memory_order_acq_rel);
      release_outstanding();
      return;
    }
  }
}

std::uint32_t Server::retry_after_hint() const noexcept {
  // Scale the hint with load so a fleet of rejected clients spreads its
  // retries instead of stampeding back in lockstep.
  const std::uint64_t backlog =
      outstanding_.load(std::memory_order_acquire) + 1;
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(25 * backlog,
                                                            5'000));
}

// ---------------------------------------------------------------------------
// Workers

void Server::worker_loop() {
  while (auto job = queue_.pop()) {
    if (options_.debug_stall.count() > 0)
      std::this_thread::sleep_for(options_.debug_stall);
    process_job(*job);
  }
}

void Server::process_job(Job& job) {
  const FrameHeader& header = job.frame.header;
  obs::ScopedSpan span(std::string("rmpd/request/") + to_string(header.type));

  if (job.deadline && std::chrono::steady_clock::now() >= *job.deadline) {
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.deadline_missed;
    }
    obs::count("net.deadline_missed");
    send_error(job.session, header.request_id, Status::kDeadlineExceeded,
               "deadline expired before the request started");
    job_finished(false, job.bytes);
    return;
  }

  try {
    switch (header.type) {
      case MsgType::kEncode:
        handle_encode(job);  // owns its completion (async store path)
        return;
      case MsgType::kDecode:
        handle_decode(job);
        break;
      case MsgType::kVerify:
        handle_verify(job);
        break;
      case MsgType::kScrub:
        handle_scrub(job);
        break;
      default:
        send_error(job.session, header.request_id, Status::kBadRequest,
                   "unhandled request type");
        job_finished(false, job.bytes);
        return;
    }
    job_finished(true, job.bytes);
  } catch (const NetError& e) {
    send_error(job.session, header.request_id, Status::kBadRequest, e.what());
    job_finished(false, job.bytes);
  } catch (const io::ContainerError& e) {
    Status status = Status::kIntegrityError;
    if (e.code() == io::ContainerErrc::kDeadlineExceeded) {
      status = Status::kDeadlineExceeded;
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.deadline_missed;
      }
      obs::count("net.deadline_missed");
    } else if (e.code() == io::ContainerErrc::kIoError) {
      status = Status::kIoError;
    }
    send_error(job.session, header.request_id, status, e.what());
    job_finished(false, job.bytes);
  } catch (const core::PreconditionError& e) {
    send_error(job.session, header.request_id, Status::kPreconditionError,
               e.what());
    job_finished(false, job.bytes);
  } catch (const std::invalid_argument& e) {
    send_error(job.session, header.request_id, Status::kBadRequest, e.what());
    job_finished(false, job.bytes);
  } catch (const std::exception& e) {
    send_error(job.session, header.request_id, Status::kInternalError,
               e.what());
    job_finished(false, job.bytes);
  }
}

void Server::handle_scrub(Job& job) {
  const ScrubResponse response = run_scrub_pass();
  send_frame(job.session, MsgType::kScrubResult, job.frame.header.request_id,
             response.encode());
}

void Server::handle_encode(Job& job) {
  const std::uint64_t request_id = job.frame.header.request_id;
  EncodeRequest request = EncodeRequest::decode(job.frame.payload);

  // Idempotent retry: a token we already completed replays the cached
  // outcome -- the side effect (most importantly a sequence append)
  // happened exactly once.  For sequence stores the authoritative
  // re-check runs under sequences_mutex_ below; this early check spares
  // the whole encode pipeline for the common retry.
  if (request.request_token != 0) {
    if (auto cached = dedup_.lookup(request.request_token)) {
      send_frame(job.session, cached->type, request_id, cached->payload,
                 cached->status);
      job_finished(true, job.bytes);
      return;
    }
  }

  const CodecSet codecs = make_codecs(request.codec);
  const std::uint64_t original_bytes = request.data.size() * sizeof(double);
  sim::Field field = sim::Field::from_data(request.nx, request.ny, request.nz,
                                           std::move(request.data));

  io::Container container;
  std::string method_ran = request.method;
  if (request.guard || request.error_bound) {
    core::GuardOptions guard_options;
    guard_options.method = request.method;
    guard_options.error_bound = request.error_bound;
    auto result = core::guarded_encode(field, codecs.pair(), guard_options);
    container = std::move(result.container);
    method_ran = result.provenance.actual;
  } else {
    const auto preconditioner = core::make_preconditioner(request.method);
    container = preconditioner->encode(field, codecs.pair());
  }

  io::RetryPolicy retry;
  retry.deadline = job.deadline;

  EncodeResponse response;
  response.method = method_ran;
  response.original_bytes = original_bytes;

  switch (request.store) {
    case StoreMode::kReturn: {
      io::SerializeOptions serialize_options;
      serialize_options.with_parity = options_.with_parity;
      auto bytes = io::serialize(container, serialize_options);
      response.stored_bytes = bytes.size();
      response.container = std::move(bytes);
      const auto payload = response.encode();
      // In-memory-only dedup for stateless responses: re-execution after
      // a restart is harmless (no server-side state), so these entries
      // need no durable intent log (DESIGN.md §14 non-guarantees).
      if (request.request_token != 0)
        dedup_.insert(request.request_token,
                      DedupWindow::CachedResponse{MsgType::kEncodeResult,
                                                  Status::kOk, payload});
      send_frame(job.session, MsgType::kEncodeResult, request_id, payload);
      job_finished(true, job.bytes);
      return;
    }
    case StoreMode::kFile: {
      if (!staging_)
        throw NetError(NetErrc::kMalformedPayload,
                       "store requested but the server has no --output-dir");
      validate_store_name(request.store_name);
      response.stored = true;
      core::StagingJob staging_job;
      staging_job.container = std::move(container);
      staging_job.name = request.store_name;
      staging_job.retry = retry;
      auto session = job.session;
      const std::uint64_t job_bytes = job.bytes;
      const std::uint64_t token = request.request_token;
      staging_job.on_complete =
          [this, session, request_id, job_bytes, token,
           response = std::move(response)](
              const core::StagingJobResult& result) mutable {
            if (result.ok) {
              response.stored_bytes = result.bytes_out;
              response.stored_path = result.path.string();
              const auto payload = response.encode();
              // kFile stores are atomic re-publishes of a whole file --
              // a re-executed retry overwrites with identical content,
              // so the in-memory window is a fast path, not a
              // correctness requirement (unlike sequence appends).
              if (token != 0)
                dedup_.insert(token, DedupWindow::CachedResponse{
                                         MsgType::kEncodeResult, Status::kOk,
                                         payload});
              send_frame(session, MsgType::kEncodeResult, request_id,
                         payload);
              job_finished(true, job_bytes);
              return;
            }
            Status status = Status::kInternalError;
            switch (result.error_kind) {
              case core::StagingErrorKind::kDeadlineExceeded:
                status = Status::kDeadlineExceeded;
                {
                  std::lock_guard lock(stats_mutex_);
                  ++stats_.deadline_missed;
                }
                obs::count("net.deadline_missed");
                break;
              case core::StagingErrorKind::kIoError:
                status = Status::kIoError;
                break;
              case core::StagingErrorKind::kPrecondition:
                status = Status::kPreconditionError;
                break;
              default:
                break;
            }
            send_error(session, request_id, status, result.error);
            job_finished(false, job_bytes);
          };
      // Blocking submit is safe here: only worker threads reach this, and
      // the staging queue bound is the write-behind backpressure.
      staging_->submit(std::move(staging_job));
      return;  // completion rides the callback
    }
    case StoreMode::kSequence: {
      if (!options_.output_dir)
        throw NetError(NetErrc::kMalformedPayload,
                       "store requested but the server has no --output-dir");
      validate_store_name(request.store_name);
      const std::uint64_t token = request.request_token;
      std::size_t step = 0;
      const std::filesystem::path destination =
          *options_.output_dir / request.store_name;
      std::vector<std::uint8_t> payload;
      {
        // Everything that makes a tokened append exactly-once runs under
        // this lock: the window re-check (coalesces a concurrent
        // duplicate), the fsync'd intent, the append, and the window
        // insert.
        std::lock_guard lock(sequences_mutex_);
        if (token != 0) {
          if (auto cached = dedup_.lookup(token)) {
            send_frame(job.session, cached->type, request_id,
                       cached->payload, cached->status);
            job_finished(true, job.bytes);
            return;
          }
        }
        SequenceState& state = sequence_state(request.store_name);
        state.writer->set_retry(retry);
        if (token != 0) {
          if (!state.log) {
            state.log = std::make_unique<io::RequestLog>(io::RequestLog::open(
                destination, state.fresh_journal, retry));
            state.fresh_journal = false;
          } else {
            state.log->set_retry(retry);
          }
          // Intent BEFORE append: if we die between the two, recovery
          // sees step == committed count and drops the intent (the retry
          // re-executes); if we die after the append's commit fsync, it
          // sees step < committed and replays.  Either way: exactly
          // once.
          state.log->record(token, state.writer->steps_written());
        }
        try {
          step = state.writer->append(container);
        } catch (...) {
          // The append did not commit; withdraw the intent so the step
          // index cannot be aliased by a later request's append.
          if (token != 0 && state.log) state.log->rollback_last();
          throw;
        }
        response.stored = true;
        response.stored_bytes = container.payload_bytes();
        response.stored_path = destination.string();
        payload = response.encode();
        if (token != 0)
          dedup_.insert(token, DedupWindow::CachedResponse{
                                   MsgType::kEncodeResult, Status::kOk,
                                   payload});
      }
      send_frame(job.session, MsgType::kEncodeResult, request_id, payload);
      obs::gauge_max("net.sequence_steps", step + 1);
      job_finished(true, job.bytes);
      return;
    }
  }
  throw NetError(NetErrc::kMalformedPayload, "unknown store mode");
}

std::shared_ptr<StoreReadCache> Server::store_read_cache(
    const std::string& name, const std::filesystem::path& path) {
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec)
    throw NetError(NetErrc::kIoError,
                   "store '" + name + "': " + ec.message());
  std::lock_guard lock(store_readers_mutex_);
  auto it = store_readers_.find(name);
  if (it != store_readers_.end() && it->second->file_size == size)
    return it->second;
  // New store, or a writer re-published it (size changed): (re)open.  A
  // file without a sequence trailer is a plain container store, not an
  // error -- signalled by nullptr so the caller takes the whole-file
  // decode path.
  try {
    auto cache = std::make_shared<StoreReadCache>(size, path);
    store_readers_[name] = cache;
    return cache;
  } catch (const io::ContainerError& error) {
    if (error.code() == io::ContainerErrc::kIndexCorrupt) {
      store_readers_.erase(name);
      return nullptr;
    }
    throw;
  }
}

void Server::handle_decode(Job& job) {
  DecodeRequest request = DecodeRequest::decode(job.frame.payload);
  const CodecSet codecs = make_codecs(request.codec);
  DecodeResponse response;

  // Resolve the archive bytes: inline in the request, or a server-side
  // store read (seekable, chunk-cached for sequence archives).
  if (!request.store_name.empty()) {
    if (!options_.output_dir)
      throw NetError(NetErrc::kMalformedPayload,
                     "store read requested but the server has no "
                     "--output-dir");
    validate_store_name(request.store_name);
    const std::filesystem::path path =
        *options_.output_dir / request.store_name;
    const auto cache = store_read_cache(request.store_name, path);
    if (cache) {
      if (request.step >= cache->reader.step_count())
        throw NetError(NetErrc::kMalformedPayload,
                       "store '" + request.store_name + "' has " +
                           std::to_string(cache->reader.step_count()) +
                           " steps; step " + std::to_string(request.step) +
                           " requested");
      if (request.best_effort) {
        const auto bytes =
            cache->reader.read_step_bytes(
                static_cast<std::size_t>(request.step));
        auto result = core::reconstruct_best_effort(
            std::span<const std::uint8_t>(bytes), codecs.pair());
        response.nx = result.field.nx();
        response.ny = result.field.ny();
        response.nz = result.field.nz();
        if (!result.exact) response.detail = result.detail;
        response.data = std::move(result.field.storage());
      } else {
        const core::ChunkPtr chunk =
            cache->fetcher.get(static_cast<std::size_t>(request.step));
        sim::Field field = core::reconstruct(*chunk, codecs.pair());
        response.nx = field.nx();
        response.ny = field.ny();
        response.nz = field.nz();
        response.data = std::move(field.storage());
      }
      send_frame(job.session, MsgType::kDecodeResult,
                 job.frame.header.request_id, response.encode());
      return;
    }
    // Plain container store: read the whole file and fall through to the
    // inline-bytes decode below.
    std::ifstream in(path, std::ios::binary);
    if (!in)
      throw NetError(NetErrc::kIoError,
                     "store '" + request.store_name + "': cannot open " +
                         path.string());
    request.container.assign(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  if (request.best_effort) {
    auto result = core::reconstruct_best_effort(
        std::span<const std::uint8_t>(request.container), codecs.pair());
    response.nx = result.field.nx();
    response.ny = result.field.ny();
    response.nz = result.field.nz();
    if (!result.exact) response.detail = result.detail;
    response.data = std::move(result.field.storage());
  } else {
    const io::Container container = io::deserialize(request.container);
    sim::Field field = core::reconstruct(container, codecs.pair());
    response.nx = field.nx();
    response.ny = field.ny();
    response.nz = field.nz();
    response.data = std::move(field.storage());
  }
  send_frame(job.session, MsgType::kDecodeResult, job.frame.header.request_id,
             response.encode());
}

void Server::handle_verify(Job& job) {
  const VerifyRequest request = VerifyRequest::decode(job.frame.payload);
  io::ReadReport report;
  io::deserialize_salvage(request.container, &report);
  VerifyResponse response;
  response.complete = report.complete();
  response.repaired = report.repaired();
  response.version = report.version;
  std::string detail;
  for (const auto& section : report.sections) {
    detail += section.name;
    detail += ' ';
    detail += std::to_string(section.bytes);
    detail += ' ';
    detail += section_state_name(section.state);
    detail += '\n';
  }
  response.detail = std::move(detail);
  send_frame(job.session, MsgType::kVerifyResult, job.frame.header.request_id,
             response.encode());
}

// ---------------------------------------------------------------------------
// Responses

void Server::send_stats(const std::shared_ptr<Session>& session,
                        std::uint64_t request_id) {
  StatsResponse response;
  {
    std::lock_guard lock(stats_mutex_);
    response.accepted = stats_.accepted;
    response.rejected_busy = stats_.rejected_busy;
    response.rejected_shutdown = stats_.rejected_shutdown;
    response.deadline_missed = stats_.deadline_missed;
    response.completed = stats_.completed;
    response.failed = stats_.failed;
    response.sessions_active = stats_.sessions_active;
    response.sessions_total = stats_.sessions_total;
    response.protocol_errors = stats_.protocol_errors;
  }
  response.queue_depth = queue_.depth();
  response.queue_capacity = queue_.capacity();
  {
    std::lock_guard lock(stats_mutex_);
    response.recovery_journals_resumed = stats_.recovery_journals_resumed;
    response.recovery_steps_recovered = stats_.recovery_steps_recovered;
    response.recovery_files_repaired = stats_.recovery_files_repaired;
    response.recovery_files_quarantined = stats_.recovery_files_quarantined;
    response.scrub_passes = stats_.scrub_passes;
    response.scrub_sections_checked = stats_.scrub_sections_checked;
    response.scrub_sections_repaired = stats_.scrub_sections_repaired;
    response.scrub_quarantined = stats_.scrub_quarantined;
    response.admission_bytes_rejected = stats_.admission_bytes_rejected;
    response.stalled_sessions = stats_.stalled_sessions;
  }
  const DedupWindow::Stats dedup = dedup_.stats();
  response.dedup_hits = dedup.hits;
  response.dedup_evictions = dedup.evictions;
  response.dedup_entries = dedup.entries;
  response.inflight_bytes = inflight_bytes_.load(std::memory_order_acquire);
  response.max_inflight_bytes = options_.max_inflight_bytes;
  response.obs_json = obs::Registry::global().to_json();
  send_frame(session, MsgType::kStatsResult, request_id, response.encode());
}

void Server::send_error(const std::shared_ptr<Session>& session,
                        std::uint64_t request_id, Status status,
                        const std::string& message,
                        std::uint32_t retry_after_ms) {
  ErrorResponse error{message};
  error.retry_after_ms = retry_after_ms;
  send_frame(session, MsgType::kError, request_id, error.encode(), status);
}

void Server::send_frame(const std::shared_ptr<Session>& session, MsgType type,
                        std::uint64_t request_id,
                        std::span<const std::uint8_t> payload, Status status) {
  if (!session) return;
  const auto bytes = encode_frame(type, request_id, 0, payload, status);
  std::lock_guard lock(session->write_mutex);
  if (!session->alive.load(std::memory_order_acquire)) return;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const auto n = ::send(session->fd, bytes.data() + offset,
                          bytes.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Mid-response disconnect: mark the session dead so later
      // responses stop trying, and account for it.  Never throws -- a
      // gone client must not take a worker down.
      session->alive.store(false, std::memory_order_release);
      {
        std::lock_guard stats_lock(stats_mutex_);
        ++stats_.send_failures;
      }
      obs::count("net.send_failures");
      return;
    }
    offset += static_cast<std::size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// Durable sequences + bookkeeping

Server::SequenceState& Server::sequence_state(const std::string& name) {
  auto it = sequences_.find(name);
  if (it == sequences_.end()) {
    io::SerializeOptions serialize_options;
    serialize_options.with_parity = options_.with_parity;
    auto state = std::make_unique<SequenceState>();
    state->writer = std::make_unique<io::SequenceWriter>(
        *options_.output_dir / name, serialize_options);
    state->fresh_journal = true;
    it = sequences_.emplace(name, std::move(state)).first;
  }
  return *it->second;
}

void Server::finish_sequences() {
  std::lock_guard lock(sequences_mutex_);
  for (auto& [name, state] : sequences_) {
    try {
      // Clear any stale per-request deadline: the final publish runs on
      // the drain's budget, not a long-finished request's.
      state->writer->set_retry(io::RetryPolicy{});
      state->writer->finish();
      // The archive is published: its request log's intents are all
      // provable from the archive itself, and a clean shutdown ends the
      // retry window -- retire the sidecar.
      if (state->log) {
        state->log.reset();
        std::error_code ec;
        std::filesystem::remove(
            io::request_log_path(*options_.output_dir / name), ec);
      }
    } catch (const std::exception& e) {
      obs::count("net.sequence_finish_failures");
      std::fprintf(stderr, "rmpd: publishing sequence '%s' failed: %s\n",
                   name.c_str(), e.what());
    }
  }
  sequences_.clear();
}

void Server::job_finished(bool ok, std::uint64_t bytes) {
  {
    std::lock_guard lock(stats_mutex_);
    if (ok)
      ++stats_.completed;
    else
      ++stats_.failed;
  }
  obs::count(ok ? "net.completed" : "net.failed");
  if (bytes > 0) inflight_bytes_.fetch_sub(bytes, std::memory_order_acq_rel);
  release_outstanding();
}

void Server::release_outstanding() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard lock(drain_mutex_);
    }
    drain_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Daemon front end

namespace {

std::atomic<Server*> g_drain_target{nullptr};

void drain_signal_handler(int) {
  // Async-signal-safe: request_drain is a lock-free atomic store.
  if (Server* server = g_drain_target.load()) server->request_drain();
}

}  // namespace

int run_daemon(const ServerOptions& options,
               const std::optional<std::filesystem::path>& port_file) {
  std::signal(SIGPIPE, SIG_IGN);

  Server server(options);
  server.start();
  std::printf("rmpd: listening on %s:%u\n", options.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (port_file) {
    // Written atomically so a harness polling the file never reads an
    // empty or partial port number.
    std::filesystem::path tmp = *port_file;
    tmp += ".tmp";
    {
      std::ofstream out(tmp);
      out << server.port() << "\n";
    }
    std::filesystem::rename(tmp, *port_file);
  }

  g_drain_target.store(&server);
  struct sigaction action {};
  action.sa_handler = drain_signal_handler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  server.wait_until_drained();

  g_drain_target.store(nullptr);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  std::printf("rmpd: drained cleanly\n");
  std::fflush(stdout);
  return 0;
}

std::optional<std::string> parse_server_flags(
    const std::vector<std::string>& args, ServerOptions& options,
    std::optional<std::filesystem::path>& port_file,
    std::vector<std::string>* unparsed) {
  auto parse_u64 = [](const std::string& text,
                      std::uint64_t& out) -> bool {
    try {
      std::size_t used = 0;
      out = std::stoull(text, &used);
      return used == text.size();
    } catch (const std::exception&) {
      return false;
    }
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    // Accepts both "--flag=value" and "--flag value".
    const auto match = [&](const char* name) -> int {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        value = arg.substr(prefix.size());
        return 1;
      }
      if (arg == name) {
        if (i + 1 >= args.size()) return -1;
        value = args[++i];
        return 1;
      }
      return 0;
    };
    const auto numeric = [&](const char* name,
                             std::uint64_t max_value,
                             std::uint64_t& out) -> std::optional<int> {
      const int m = match(name);
      if (m == 0) return std::nullopt;
      if (m < 0) return -1;
      std::uint64_t parsed = 0;
      if (!parse_u64(value, parsed) || parsed > max_value) return -1;
      out = parsed;
      return 1;
    };

    std::uint64_t number = 0;
    if (auto m = numeric("--port", 65535, number)) {
      if (*m < 0) return "--port expects a number in [0, 65535]";
      options.port = static_cast<std::uint16_t>(number);
    } else if (match("--bind") == 1) {
      options.bind_address = value;
    } else if (match("--bind") == -1) {
      return "--bind expects an address";
    } else if (auto m2 = numeric("--queue", 1u << 20, number)) {
      if (*m2 < 0) return "--queue expects a positive number";
      options.queue_capacity = static_cast<std::size_t>(number);
    } else if (auto m3 = numeric("--workers", 1024, number)) {
      if (*m3 < 0) return "--workers expects a number in [0, 1024]";
      options.workers = static_cast<std::size_t>(number);
    } else if (auto m4 = numeric("--max-sessions", 1u << 20, number)) {
      if (*m4 < 0) return "--max-sessions expects a positive number";
      options.max_sessions = static_cast<std::size_t>(number);
    } else if (match("--output-dir") == 1) {
      options.output_dir = std::filesystem::path(value);
    } else if (match("--output-dir") == -1) {
      return "--output-dir expects a directory";
    } else if (arg == "--no-parity") {
      options.with_parity = false;
    } else if (auto m5 = numeric("--staging-queue", 1u << 20, number)) {
      if (*m5 < 0) return "--staging-queue expects a positive number";
      options.staging_queue = static_cast<std::size_t>(number);
    } else if (match("--port-file") == 1) {
      port_file = std::filesystem::path(value);
    } else if (match("--port-file") == -1) {
      return "--port-file expects a path";
    } else if (auto m6 = numeric("--debug-stall-ms", 600'000, number)) {
      if (*m6 < 0) return "--debug-stall-ms expects milliseconds";
      options.debug_stall = std::chrono::milliseconds(number);
    } else if (auto m7 = numeric("--max-bytes",
                                 std::uint64_t{1} << 40, number)) {
      if (*m7 < 0) return "--max-bytes expects a byte count (0 = unlimited)";
      options.max_inflight_bytes = number;
    } else if (auto m8 = numeric("--read-timeout-ms", 86'400'000, number)) {
      if (*m8 < 0) return "--read-timeout-ms expects milliseconds (0 = off)";
      options.read_stall_timeout = std::chrono::milliseconds(number);
    } else if (auto m9 = numeric("--dedup-window", 1u << 24, number)) {
      if (*m9 < 0) return "--dedup-window expects an entry count";
      options.dedup_window = static_cast<std::size_t>(number);
    } else if (auto m10 = numeric("--scrub-interval-ms", 86'400'000, number)) {
      if (*m10 < 0) return "--scrub-interval-ms expects milliseconds (0 = "
                           "manual only)";
      options.scrub_interval = std::chrono::milliseconds(number);
    } else if (arg == "--no-recover") {
      options.recover_on_start = false;
    } else if (unparsed != nullptr) {
      unparsed->push_back(arg);
    } else {
      return "unknown flag '" + arg + "'";
    }
  }
  return std::nullopt;
}

}  // namespace rmp::net
